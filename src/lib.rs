//! # xability — X-Ability: A Theory of Replication
//!
//! A complete Rust reproduction of Frølund & Guerraoui, *"X-Ability: A
//! Theory of Replication"* (PODC 2000): the formal theory of
//! exactly-once-able histories, the general asynchronous replication
//! protocol built on it, every substrate the paper assumes (deterministic
//! asynchronous simulation, failure detectors, consensus objects, external
//! services with idempotent/undoable side-effects), the baselines it argues
//! against, and an experiment harness regenerating every figure.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names and hosts the runnable examples and the cross-crate
//! integration tests.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `xability-core` | events, histories, patterns, reduction, the x-able predicate, R1–R4 |
//! | [`store`] | `xability-store` | interned segmented trace store, zero-copy history views, binary trace record/replay |
//! | [`sim`] | `xability-sim` | deterministic discrete-event simulator with ◇P failure detection |
//! | [`consensus`] | `xability-consensus` | Chandra–Toueg consensus objects (`propose`/`read`) |
//! | [`services`] | `xability-services` | external services, side-effect ledger, fault injection |
//! | [`protocol`] | `xability-protocol` | the §5 replication algorithm + primary-backup / active baselines |
//! | [`harness`] | `xability-harness` | scenario runner, R1–R4 validation, experiments |
//! | [`obs`] | `xability-obs` | deterministic metrics registry, causal span tracing, mergeable snapshots |
//!
//! ## Quick start
//!
//! Run the examples:
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example bank_transfer
//! cargo run --example three_tier
//! cargo run --example protocol_spectrum
//! cargo run --example history_checker
//! ```
//!
//! Check a history for x-ability directly — [`core::xable::TieredChecker`]
//! asks the polynomial fast tier first and escalates undecided small
//! histories to the exhaustive search:
//!
//! ```
//! use xability::core::xable::{Checker, TieredChecker};
//! use xability::core::{ActionId, ActionName, Event, History, Value};
//!
//! let ping = ActionId::base(ActionName::idempotent("ping"));
//! let history: History = [
//!     Event::start(ping.clone(), Value::Nil),             // failed attempt
//!     Event::start(ping.clone(), Value::Nil),             // retry
//!     Event::complete(ping.clone(), Value::from("pong")), // success
//! ]
//! .into_iter()
//! .collect();
//! let verdict = TieredChecker::default().check(&history, &[(ping, Value::Nil)], &[]);
//! assert!(verdict.is_xable());
//! ```
//!
//! Or verify *online*, while the history is being produced:
//!
//! ```
//! use xability::core::xable::IncrementalChecker;
//! use xability::core::{ActionId, ActionName, Event, Value};
//!
//! let ping = ActionId::base(ActionName::idempotent("ping"));
//! let mut checker = IncrementalChecker::new();
//! checker.declare(ping.clone(), Value::Nil);
//! checker.push(Event::start(ping.clone(), Value::Nil));
//! checker.push(Event::complete(ping, Value::from("pong")));
//! assert!(checker.verdict().is_xable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xability_consensus as consensus;
pub use xability_core as core;
pub use xability_harness as harness;
pub use xability_obs as obs;
pub use xability_protocol as protocol;
pub use xability_services as services;
pub use xability_sim as sim;
pub use xability_store as store;
