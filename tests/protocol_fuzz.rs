//! Schedule fuzzing: the x-able protocol must stay exactly-once and produce
//! x-able histories under randomized seeds, crash schedules, fault rates
//! and network asynchrony.

use proptest::prelude::*;

use xability::harness::{Scenario, Scheme, Workload};
use xability::services::FailurePlan;
use xability::sim::{LatencyModel, SimTime};

proptest! {
    // Each case runs a full simulation; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single replica crash at any time, any seed: correct.
    #[test]
    fn crash_anywhere_is_exactly_once(
        seed in 0u64..1_000,
        crash_replica in 0usize..3,
        crash_ms in 0u64..60,
    ) {
        let report = Scenario::new(
            Scheme::XAble,
            Workload::BankTransfers { count: 2, amount: 10 },
        )
        .seed(seed)
        .crash(crash_replica, SimTime::from_millis(crash_ms))
        .run();
        prop_assert!(report.finished, "client starved (seed {seed})");
        prop_assert!(
            report.exactly_once_violations.is_empty(),
            "seed {seed}: {:?}",
            report.exactly_once_violations
        );
        prop_assert!(
            report.r3_violation.is_none(),
            "seed {seed}: {:?}",
            report.r3_violation
        );
        prop_assert!(report.r4_ok);
    }

    /// Service fault rates up to 40% with a crash on top: correct.
    #[test]
    fn faults_plus_crash_is_exactly_once(
        seed in 0u64..1_000,
        fail_centi in 0u32..40,
    ) {
        let report = Scenario::new(
            Scheme::XAble,
            Workload::BankTransfers { count: 2, amount: 10 },
        )
        .seed(seed)
        .crash(0, SimTime::from_millis(8))
        .service_failures(FailurePlan::probabilistic(f64::from(fail_centi) / 100.0))
        .run();
        prop_assert!(report.finished, "client starved (seed {seed})");
        prop_assert!(report.exactly_once_violations.is_empty());
        prop_assert!(report.r3_violation.is_none(), "{:?}", report.r3_violation);
    }

    /// Partial synchrony with arbitrary spike pressure: correct.
    #[test]
    fn asynchrony_is_exactly_once(
        seed in 0u64..1_000,
        spike_centi in 0u32..45,
    ) {
        let report = Scenario::new(
            Scheme::XAble,
            Workload::TokenIssues { count: 2 },
        )
        .seed(seed)
        .latency(LatencyModel::partially_synchronous(
            f64::from(spike_centi) / 100.0,
            SimTime::from_millis(600),
        ))
        .run();
        prop_assert!(report.finished, "client starved (seed {seed})");
        prop_assert!(report.exactly_once_violations.is_empty());
        prop_assert!(report.r3_violation.is_none(), "{:?}", report.r3_violation);
    }
}
