//! The pipelined-monitor CI gate (DESIGN.md §12): a pinned
//! byte-identity check at 4 workers — the acceptance bar of the
//! pipelined merge — plus a release-profile throughput floor on the
//! end-to-end record+verdict path, so a regression in the window
//! hand-off fails fast.
//!
//! The floor is conservative on purpose: wall-clock throughput is
//! machine-dependent, so the gate asserts the pipelined ledger stays at
//! or above the *pre-pipeline* single-thread number (the ~450 k events/s
//! this repo's BENCH trajectory recorded before batch-amortized dirty
//! sets landed), not the multiple the bench artifact reports. Like
//! `tests/obs_overhead.rs`, the timing test is `#[ignore]`d by default
//! and CI runs it explicitly in the release profile.

use std::time::Instant;

use xability::core::xable::{IncrementalState, SearchBudget};
use xability::core::{Event, Value};
use xability::services::pipeline::PipelinedMonitor;
use xability::services::Ledger;
use xability::sim::SimTime;
use xability::store::TraceStore;
use xability_bench::{n_requests_with_cancelled_rounds, n_retried_requests};

/// A mixed protocol-shaped workload: retried idempotent requests,
/// undoable requests with a cancelled and a committed round, and one
/// trailing in-flight (started, not completed) request.
fn mixed_workload() -> (Vec<Event>, Vec<(xability::core::ActionId, Value)>) {
    let (idem_h, idem_ops) = n_retried_requests(120);
    let (undo_h, undo_ops) = n_requests_with_cancelled_rounds(40);
    let mut events: Vec<Event> = idem_h.iter().cloned().collect();
    events.extend(undo_h.iter().cloned());
    let mut ops = idem_ops;
    ops.extend(undo_ops);
    // One more declared request whose execution is still in flight.
    let (a, _) = &ops[0];
    let tail_key = Value::from("in-flight");
    events.push(Event::start(a.clone(), tail_key.clone()));
    ops.push((a.clone(), tail_key));
    (events, ops)
}

/// Pinned acceptance check: pipelined verdicts at 4 workers are
/// byte-identical — verdict variant *and* reason strings — to the
/// sequential monitor at every checkpoint, for a window that closes
/// mid-request (7) and a window larger than most batches (64).
#[test]
fn pipelined_verdicts_byte_identical_at_4_workers() {
    let (events, ops) = mixed_workload();
    for window in [7usize, 64] {
        let mut seq_store = TraceStore::new();
        let mut seq = IncrementalState::new();
        let mut pipe_store = TraceStore::new();
        let mut pipe = PipelinedMonitor::with_config(4, window, SearchBudget::small());
        for (a, iv) in &ops {
            seq.declare(a.clone(), iv.clone());
            pipe.declare(a.clone(), iv.clone());
        }
        for (k, batch) in events.chunks(23).enumerate() {
            seq.observe_batch(batch);
            seq_store.push_batch(batch);
            pipe.observe_batch(batch);
            pipe_store.push_batch(batch);
            pipe.publish(&pipe_store);
            let sequential = seq.verdict_over(&seq_store.view());
            let pipelined = pipe.verdict_over(&pipe_store);
            assert_eq!(
                pipelined, sequential,
                "window={window}, checkpoint {k}: pipelined and sequential verdicts diverged"
            );
        }
        // The final prefix ends on an in-flight request: R3's
        // abandoned-last-request fallback applies, and a lone start does
        // not erase — the pinned final verdict is NotXable, identically
        // worded on both sides.
        let last = seq.verdict_over(&seq_store.view());
        assert!(
            !last.is_xable(),
            "expected the in-flight tail to block x-ability, got {last}"
        );
    }
}

/// The same byte-identity through the ledger's opt-in monitor mode.
#[test]
fn ledger_pipelined_mode_matches_sequential_ledger() {
    let (events, ops) = mixed_workload();
    let mut seq = Ledger::new();
    let mut pipe = Ledger::without_monitor();
    pipe.attach_pipelined_monitor(4)
        .expect("fresh ledger has no monitor");
    let requests: Vec<xability::core::Request> = ops
        .iter()
        .map(|(a, iv)| xability::core::Request::new(a.clone(), iv.clone()))
        .collect();
    seq.declare_requests(&requests);
    pipe.declare_requests(&requests);
    for batch in events.chunks(64) {
        seq.record_batch(batch, SimTime::ZERO, "svc");
        pipe.record_batch(batch, SimTime::ZERO, "svc");
    }
    let sequential = seq.monitor_verdict().expect("sequential monitor");
    let pipelined = pipe.monitor_verdict().expect("pipelined monitor");
    assert_eq!(pipelined, sequential);
}

/// End-to-end record+verdict through one ledger: batched records, an
/// online verdict every `VERDICT_EVERY` batches, a final verdict.
/// Returns events/s.
fn ledger_events_per_sec(mut ledger: Ledger, events: &[Event]) -> f64 {
    const BATCH: usize = 1024;
    const VERDICT_EVERY: usize = 32;
    let start = Instant::now();
    for (k, batch) in events.chunks(BATCH).enumerate() {
        ledger.record_batch(batch, SimTime::ZERO, "svc");
        if k % VERDICT_EVERY == VERDICT_EVERY - 1 {
            // Online verdicts while ingesting — the end-to-end posture.
            // Mid-stream prefixes may end inside a request, so only the
            // final verdict's value is asserted; this one is just forced
            // to be materialized.
            let verdict = ledger.monitor_verdict().expect("monitor attached");
            let _ = std::hint::black_box(verdict);
        }
    }
    let final_verdict = ledger.monitor_verdict().expect("monitor attached");
    let elapsed = start.elapsed();
    assert!(
        final_verdict.is_xable(),
        "workload is x-able by construction, got {final_verdict}"
    );
    events.len() as f64 / elapsed.as_secs_f64()
}

/// Release-profile throughput gate. Two floors, both conservative
/// multiples below the measured numbers so scheduler noise cannot flake
/// them:
///
/// * The **sequential** ledger (record + online verdict, one thread)
///   must hold the pre-batch-amortization number, ~450 k events/s —
///   the regression tripwire for the ingest fast path.
/// * The **pipelined** ledger at 4 workers must hold the same floor
///   *when the box actually has parallelism*. On a single-core runner
///   the four decide workers time-slice one CPU and each re-ingests the
///   stream, so wall-clock there measures scheduling, not the pipeline;
///   the number is reported instead of gated (the byte-identity gates
///   above run everywhere regardless).
#[test]
#[ignore = "release-profile CI smoke (pipeline throughput); run with --ignored"]
fn pipelined_ledger_sustains_the_single_thread_floor() {
    const FLOOR_EVENTS_PER_SEC: f64 = 450_000.0;
    const REQUESTS: usize = 100_000; // × 3 events per request

    let (h, ops) = n_retried_requests(REQUESTS);
    let events: Vec<Event> = h.iter().cloned().collect();
    let requests: Vec<xability::core::Request> = ops
        .iter()
        .map(|(a, iv)| xability::core::Request::new(a.clone(), iv.clone()))
        .collect();

    let mut sequential = Ledger::new();
    sequential.declare_requests(&requests);
    let seq_rate = ledger_events_per_sec(sequential, &events);

    let mut pipelined = Ledger::without_monitor();
    pipelined
        .attach_pipelined_monitor(4)
        .expect("fresh ledger has no monitor");
    pipelined.declare_requests(&requests);
    let pipe_rate = ledger_events_per_sec(pipelined, &events);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "pipeline smoke: sequential {seq_rate:.0} events/s, pipelined(4) {pipe_rate:.0} events/s \
         ({cores} cores, floor {FLOOR_EVENTS_PER_SEC:.0})"
    );
    assert!(
        seq_rate >= FLOOR_EVENTS_PER_SEC,
        "sequential end-to-end throughput {seq_rate:.0} events/s fell below \
         the floor {FLOOR_EVENTS_PER_SEC:.0}"
    );
    if cores >= 2 {
        assert!(
            pipe_rate >= FLOOR_EVENTS_PER_SEC,
            "pipelined end-to-end throughput {pipe_rate:.0} events/s fell below \
             the floor {FLOOR_EVENTS_PER_SEC:.0} on a {cores}-core box"
        );
    }
}
