//! Property tests for the online checker: feeding a random
//! protocol-shaped history event by event into [`IncrementalChecker`] must
//! agree with the batch [`FastChecker`] at *every* prefix, and with the
//! exhaustive [`SearchChecker`] oracle on the final verdict of small
//! histories.

use proptest::prelude::*;

use xability::core::xable::{Checker, FastChecker, IncrementalChecker, SearchChecker, Verdict};
use xability::core::{ActionId, ActionName, Event, History, Request, Value};

fn idem() -> ActionId {
    ActionId::base(ActionName::idempotent("i"))
}

fn undo() -> ActionId {
    ActionId::base(ActionName::undoable("u"))
}

/// Event alphabet shared with `checker_agreement.rs`: one idempotent and
/// one undoable action (with cancel/commit), one input, two outputs.
fn arb_event() -> impl Strategy<Value = Event> {
    let i = idem();
    let u = undo();
    let cancel = u.cancel().expect("undoable");
    let commit = u.commit().expect("undoable");
    prop_oneof![
        Just(Event::start(i.clone(), Value::from(1))),
        Just(Event::complete(i.clone(), Value::from(7))),
        Just(Event::complete(i, Value::from(8))),
        Just(Event::start(u.clone(), Value::from(1))),
        Just(Event::complete(u, Value::from(7))),
        Just(Event::start(cancel.clone(), Value::from(1))),
        Just(Event::complete(cancel, Value::Nil)),
        Just(Event::start(commit.clone(), Value::from(1))),
        Just(Event::complete(commit, Value::Nil)),
    ]
}

/// A declared request sequence: none, the idempotent request, the
/// undoable request, or both (in either order).
fn arb_requests() -> impl Strategy<Value = Vec<Request>> {
    let i = Request::new(idem(), Value::from(1));
    let u = Request::new(undo(), Value::from(1));
    prop_oneof![
        Just(vec![]),
        Just(vec![i.clone()]),
        Just(vec![u.clone()]),
        Just(vec![i.clone(), u.clone()]),
        Just(vec![u, i]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// THE contract of the incremental checker: at every prefix, its
    /// verdict equals the batch fast checker's `check_requests` on that
    /// prefix — exactly, including reasons.
    #[test]
    fn incremental_equals_batch_at_every_prefix(
        events in prop::collection::vec(arb_event(), 0..10),
        requests in arb_requests(),
    ) {
        let batch = FastChecker::default();
        let mut inc = IncrementalChecker::new();
        for r in &requests {
            inc.declare_request(r);
        }
        // Prefix 0 (empty history) first, then after every push.
        let mut prefix = History::empty();
        prop_assert_eq!(inc.verdict(), batch.check_requests(&prefix, &requests));
        for ev in events {
            inc.push(ev.clone());
            prefix.push(ev);
            let online = inc.verdict();
            let offline = batch.check_requests(&prefix, &requests);
            prop_assert_eq!(
                &online, &offline,
                "prefix of {} events diverged: online={} offline={}",
                prefix.len(), &online, &offline
            );
        }
    }

    /// Requests may also be declared *interleaved* with pushes (the
    /// client submits Rᵢ₊₁ only after Rᵢ succeeded); the final verdict
    /// still equals the batch answer for the final (history, requests).
    #[test]
    fn late_declaration_matches_batch(
        events in prop::collection::vec(arb_event(), 0..10),
        split in 0usize..11,
    ) {
        let requests = vec![
            Request::new(idem(), Value::from(1)),
            Request::new(undo(), Value::from(1)),
        ];
        let mut inc = IncrementalChecker::new();
        inc.declare_request(&requests[0]);
        for (k, ev) in events.iter().enumerate() {
            if k == split {
                inc.declare_request(&requests[1]);
            }
            inc.push(ev.clone());
        }
        if split >= events.len() {
            inc.declare_request(&requests[1]);
        }
        let offline = FastChecker::default()
            .check_requests(&History::from_events(events), &requests);
        prop_assert_eq!(inc.verdict(), offline);
    }

    /// Final-verdict agreement with the exhaustive oracle on small
    /// single-request histories (where the fast tier's effect-ordered
    /// reading coincides with the strict reading): wherever both are
    /// definite, they agree.
    #[test]
    fn final_verdict_agrees_with_search_oracle(
        events in prop::collection::vec(arb_event(), 0..8),
        undoable in prop_oneof![Just(false), Just(true)],
    ) {
        let request = if undoable {
            Request::new(undo(), Value::from(1))
        } else {
            Request::new(idem(), Value::from(1))
        };
        let requests = vec![request];
        let mut inc = IncrementalChecker::new();
        inc.declare_request(&requests[0]);
        inc.push_all(events.clone());
        let online = inc.verdict();
        let oracle = SearchChecker::default()
            .check_requests(&History::from_events(events), &requests);
        match (&oracle, &online) {
            (Verdict::Xable { .. }, Verdict::NotXable { reason }) => {
                prop_assert!(
                    false,
                    "incremental says NotXable ({}) but the oracle reduced: {}",
                    reason, inc.history()
                );
            }
            (Verdict::NotXable { .. }, Verdict::Xable { .. }) => {
                prop_assert!(
                    false,
                    "incremental says Xable but the oracle exhausted: {}",
                    inc.history()
                );
            }
            _ => {}
        }
    }
}
