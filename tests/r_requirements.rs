//! Direct tests of the four service obligations of §4, exercised through
//! hand-assembled worlds (not the scenario runner), so each requirement is
//! validated at its own level.

use xability::core::{ActionName, Value};
use xability::protocol::{
    Client, LogicalRequest, ProtoMsg, ServiceActor, XReplica, XReplicaConfig,
};
use xability::services::catalog::TokenIssuer;
use xability::services::{shared_ledger, ServiceConfig, ServiceCore};
use xability::sim::{ProcessId, SimConfig, SimTime, World};

fn build_world(
    seed: u64,
) -> (
    World<ProtoMsg>,
    Vec<ProcessId>,
    ProcessId,
    xability::services::SharedLedger,
) {
    let ledger = shared_ledger();
    let mut world: World<ProtoMsg> = World::new(SimConfig::with_seed(seed));
    let replicas: Vec<ProcessId> = (0..3).map(ProcessId).collect();
    for &id in &replicas {
        world.add_process(
            format!("r{}", id.0),
            Box::new(XReplica::new(
                id,
                replicas.clone(),
                XReplicaConfig::default(),
            )),
        );
    }
    let service = world.add_process(
        "tokens",
        Box::new(ServiceActor::new(ServiceCore::new(
            Box::new(TokenIssuer::new()),
            ServiceConfig::default(),
            ledger.clone(),
        ))),
    );
    (world, replicas, service, ledger)
}

fn issue_request(service: ProcessId) -> LogicalRequest {
    LogicalRequest::new(
        "tok-1",
        ActionName::idempotent("issue"),
        Value::Nil,
        service,
    )
}

/// R1 — `submit` is idempotent: submitting the same request twice (two
/// client incarnations) yields the same result and one minted token.
#[test]
fn r1_submit_is_idempotent() {
    let (mut world, replicas, service, ledger) = build_world(1);
    let req = issue_request(service);
    // Two clients submit the *same* logical request — the second models a
    // client retrying after a timeout/failure of its first submit.
    let c1 = world.add_process(
        "c1",
        Box::new(Client::new(replicas.clone(), vec![req.clone()])),
    );
    // The second client starts at a different replica (models Fig. 5's
    // i := i + 1 after a failed submit).
    let rotated: Vec<ProcessId> = replicas.iter().rev().copied().collect();
    let c2 = world.add_process("c2", Box::new(Client::new(rotated, vec![req.clone()])));

    world.run_until(SimTime::from_secs(5));
    let r1 = world
        .actor_as::<Client>(c1)
        .unwrap()
        .result_of("tok-1")
        .cloned()
        .expect("c1 got a result");
    let r2 = world
        .actor_as::<Client>(c2)
        .unwrap()
        .result_of("tok-1")
        .cloned()
        .expect("c2 got a result");
    assert_eq!(r1, r2, "duplicate submits must observe the same result");
    // Exactly one token effect.
    assert_eq!(
        ledger
            .borrow()
            .applied_count(&ActionName::idempotent("issue"), &Value::from("tok-1")),
        1
    );
}

/// R2 — `submit` eventually succeeds even when the first contacted replica
/// is crashed from the start.
#[test]
fn r2_submit_eventually_succeeds() {
    let (mut world, replicas, service, _ledger) = build_world(2);
    world.schedule_crash(replicas[0], SimTime::from_micros(1));
    let client = world.add_process(
        "client",
        Box::new(Client::new(replicas.clone(), vec![issue_request(service)])),
    );
    let done = world.run_while(
        |w| !w.actor_as::<Client>(client).unwrap().is_done(),
        SimTime::from_secs(10),
    );
    assert!(done, "submit never succeeded");
    let metrics = *world.actor_as::<Client>(client).unwrap().metrics();
    assert!(
        metrics.failures >= 1,
        "the crashed first contact must cost at least one failed submit"
    );
}

/// R3 — the server-side history is x-able with respect to the submitted
/// sequence, validated twice: *online* by the ledger's default incremental
/// monitor (fed event by event as the simulation emits them), and *batch*
/// by the tiered checker over the final history.
#[test]
fn r3_history_is_xable() {
    use xability::core::spec::{check_r3, IdentitySequencer};
    let (mut world, replicas, service, ledger) = build_world(3);
    let reqs = vec![issue_request(service)];
    let client = world.add_process(
        "client",
        Box::new(Client::new(replicas.clone(), reqs.clone())),
    );
    world.schedule_crash(replicas[0], SimTime::from_millis(4));
    world.run_while(
        |w| !w.actor_as::<Client>(client).unwrap().is_done(),
        SimTime::from_secs(10),
    );
    world.run_until(world.now() + xability::sim::SimDuration::from_millis(300));
    let submitted: Vec<xability::core::Request> = reqs
        .iter()
        .map(|r| {
            xability::core::Request::new(xability::core::ActionId::base(r.action.clone()), r.key())
        })
        .collect();
    // Online: the monitor digested the run's events as they happened,
    // reading the prefix back through the ledger's shared trace store.
    let online = {
        let mut guard = ledger.borrow_mut();
        guard.declare_requests(&submitted);
        guard
            .monitor_verdict()
            .expect("monitor attached before the run")
    };
    assert!(online.is_xable(), "online R3 verdict: {online}");
    // Batch: the tiered checker over the final history (a zero-copy view
    // of the same store) agrees.
    let verdict = check_r3(&IdentitySequencer, &submitted, &ledger.borrow().history());
    assert!(verdict.is_none(), "{verdict:?}");
}

/// R4 — the reply delivered to the client is a possible reply of the
/// service (token issuer replies always look like "tok-…").
#[test]
fn r4_replies_are_possible() {
    let (mut world, replicas, service, _ledger) = build_world(4);
    let client = world.add_process(
        "client",
        Box::new(Client::new(replicas.clone(), vec![issue_request(service)])),
    );
    world.run_while(
        |w| !w.actor_as::<Client>(client).unwrap().is_done(),
        SimTime::from_secs(5),
    );
    let result = world
        .actor_as::<Client>(client)
        .unwrap()
        .result_of("tok-1")
        .cloned()
        .expect("result");
    let token = result.as_str().expect("token reply is a string");
    assert!(token.starts_with("tok-"), "unexpected reply {token}");
}
