//! Property tests: the polynomial fast checker agrees with the exhaustive
//! search checker (the reference semantics) wherever it gives a definite
//! answer, and the tiered checker never contradicts either tier.

use proptest::prelude::*;

use xability::core::xable::{
    search_reduction, Checker, FastChecker, IncrementalChecker, SearchBudget, SearchChecker,
    SearchResult, TieredChecker, Verdict,
};
use xability::core::{ActionId, ActionName, Event, History, Value};

/// Event alphabet: one idempotent action and one undoable action (with its
/// cancel/commit), one input, two possible outputs — small enough for the
/// exhaustive checker, expressive enough to hit every reduction rule.
fn arb_event() -> impl Strategy<Value = Event> {
    let idem = ActionId::base(ActionName::idempotent("i"));
    let undo = ActionId::base(ActionName::undoable("u"));
    let cancel = undo.cancel().expect("undoable");
    let commit = undo.commit().expect("undoable");
    prop_oneof![
        Just(Event::start(idem.clone(), Value::from(1))),
        Just(Event::complete(idem.clone(), Value::from(7))),
        Just(Event::complete(idem, Value::from(8))),
        Just(Event::start(undo.clone(), Value::from(1))),
        Just(Event::complete(undo, Value::from(7))),
        Just(Event::start(cancel.clone(), Value::from(1))),
        Just(Event::complete(cancel, Value::Nil)),
        Just(Event::start(commit.clone(), Value::from(1))),
        Just(Event::complete(commit, Value::Nil)),
    ]
}

fn arb_history(max_len: usize) -> impl Strategy<Value = History> {
    prop::collection::vec(arb_event(), 0..max_len).prop_map(History::from_events)
}

/// Fails the property if the fast tier's definite verdict contradicts the
/// search tier's definite verdict on the same single-request question.
fn assert_no_contradiction(
    h: &History,
    search: &Verdict,
    fast: &Verdict,
) -> Result<(), TestCaseError> {
    match (search, fast) {
        (Verdict::Xable { .. }, Verdict::NotXable { reason }) => {
            prop_assert!(
                false,
                "fast says NotXable ({reason}) but search reduced: {h}"
            );
        }
        (Verdict::NotXable { .. }, Verdict::Xable { .. }) => {
            prop_assert!(false, "fast says Xable but search exhausted: {h}");
        }
        _ => {}
    }
    Ok(())
}

/// Protocol-plausible histories: a concatenation of complete event pairs
/// (executions, cancellations, commits). Compared to uniformly random
/// event soup, this hits the multi-request effect-ordering shapes —
/// cancel-then-retry, help commits, trailing duplicates — with meaningful
/// probability.
fn arb_paired_history(max_pairs: usize) -> impl Strategy<Value = History> {
    let idem = ActionId::base(ActionName::idempotent("i"));
    let undo = ActionId::base(ActionName::undoable("u"));
    let cancel = undo.cancel().expect("undoable");
    let commit = undo.commit().expect("undoable");
    let pair = prop_oneof![
        Just(vec![
            Event::start(idem.clone(), Value::from(1)),
            Event::complete(idem, Value::from(7)),
        ]),
        Just(vec![
            Event::start(undo.clone(), Value::from(1)),
            Event::complete(undo, Value::from(7)),
        ]),
        Just(vec![
            Event::start(cancel.clone(), Value::from(1)),
            Event::complete(cancel, Value::Nil),
        ]),
        Just(vec![
            Event::start(commit.clone(), Value::from(1)),
            Event::complete(commit, Value::Nil),
        ]),
    ];
    prop::collection::vec(pair, 0..max_pairs + 1)
        .prop_map(|pairs| History::from_events(pairs.into_iter().flatten().collect()))
}

/// The indices of `op`'s base-action completions in `h`.
fn base_completions(h: &History, op: &ActionId) -> Vec<usize> {
    (0..h.len())
        .filter(|&i| h[i].is_complete() && h[i].action() == op)
        .collect()
}

/// `op`'s *surviving-effect anchor*, derived independently of the fast
/// checker's internals. Rule 19 only ever erases the group's first
/// remaining attempt, so an undoable request's surviving execution is its
/// *last* attempt: the anchor is the first base completion at or after the
/// last base start. An idempotent request's completions are all the same
/// effect, observable from the first one. Exact over this file's
/// one-input-per-action alphabet, where the action identifies a group.
fn surviving_anchor(h: &History, op: &ActionId) -> Option<usize> {
    let from = if op.is_undoable_base() {
        (0..h.len())
            .rfind(|&i| h[i].is_start() && h[i].action() == op)
            .unwrap_or(0)
    } else {
        0
    };
    base_completions(h, op).into_iter().find(|&i| i >= from)
}

/// Two-request agreement: the fast tier's effect-ordered reading may
/// diverge from the strict search reading only in the documented
/// duplicate classes (DESIGN.md §4.3), and in each divergence the fast
/// verdict must match the *surviving-effect order* derived independently
/// here: a fast accept against a search reject is benign only when the
/// surviving effects really are in submission order (trailing duplicates
/// made the strict target unreachable), and a fast reject against a
/// search accept is benign only when they really are out of order (the
/// strict reading erased an early effect copy against a later duplicate).
/// Anything else is a checker bug.
fn assert_two_request_agreement(h: &History, undoable_first: bool) -> Result<(), TestCaseError> {
    let i = ActionId::base(ActionName::idempotent("i"));
    let u = ActionId::base(ActionName::undoable("u"));
    let (a1, a2) = if undoable_first { (u, i) } else { (i, u) };
    let ops = [(a1.clone(), Value::from(1)), (a2.clone(), Value::from(1))];
    let search = SearchChecker::default().check(h, &ops, &[]);
    let fast = FastChecker::default().check(h, &ops, &[]);
    let anchors = (surviving_anchor(h, &a1), surviving_anchor(h, &a2));
    match (&search, &fast) {
        (Verdict::Xable { .. }, Verdict::NotXable { reason }) => {
            let out_of_order = matches!(anchors, (Some(x1), Some(x2)) if x1 >= x2);
            prop_assert!(
                reason.contains("out of submission order") && out_of_order,
                "fast says NotXable ({reason}) but search reduced and the \
                 surviving effects {anchors:?} are in order: {h}"
            );
        }
        (Verdict::NotXable { .. }, Verdict::Xable { .. }) => {
            let in_order = matches!(anchors, (Some(x1), Some(x2)) if x1 < x2);
            prop_assert!(
                in_order,
                "fast says Xable but search exhausted and the surviving \
                 effects {anchors:?} are not in order: {h}"
            );
        }
        _ => {}
    }
    Ok(())
}

/// Regression for the cancel-then-retry unsoundness: a request that
/// completed, was cancelled, and was only retried (and committed) after a
/// later request's effect has its *surviving* effect out of submission
/// order. The fast tier must not anchor the effect at the cancelled first
/// completion — every tier, including the online checker, rejects.
#[test]
fn cancel_then_retry_after_later_request_rejected_by_every_tier() {
    let u = ActionId::base(ActionName::undoable("u"));
    let b = ActionId::base(ActionName::idempotent("i"));
    let cancel = u.cancel().expect("undoable");
    let commit = u.commit().expect("undoable");
    let h: History = [
        Event::start(u.clone(), Value::from(1)),
        Event::complete(u.clone(), Value::from(7)),
        Event::start(cancel.clone(), Value::from(1)),
        Event::complete(cancel, Value::Nil),
        Event::start(b.clone(), Value::from(1)),
        Event::complete(b.clone(), Value::from(8)),
        Event::start(u.clone(), Value::from(1)),
        Event::complete(u.clone(), Value::from(7)),
        Event::start(commit.clone(), Value::from(1)),
        Event::complete(commit, Value::Nil),
    ]
    .into_iter()
    .collect();
    let ops = [(u.clone(), Value::from(1)), (b.clone(), Value::from(1))];

    let search = SearchChecker::default().check(&h, &ops, &[]);
    assert!(search.is_not_xable(), "search reference: {search}");
    for checker in [
        &FastChecker::default() as &dyn Checker,
        &TieredChecker::default(),
    ] {
        let v = checker.check(&h, &ops, &[]);
        assert!(v.is_not_xable(), "{}: {v}", checker.name());
    }
    let mut online = IncrementalChecker::default();
    online.declare(u, Value::from(1));
    online.declare(b, Value::from(1));
    online.push_all(h.iter().cloned());
    let v = online.verdict();
    assert!(v.is_not_xable(), "incremental: {v}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fast checker verdicts agree with the exhaustive search on single
    /// idempotent requests.
    #[test]
    fn fast_agrees_with_search_idempotent(h in arb_history(8)) {
        let a = ActionId::base(ActionName::idempotent("i"));
        let ops = [(a, Value::from(1))];
        let search = SearchChecker::default().check(&h, &ops, &[]);
        let fast = FastChecker::default().check(&h, &ops, &[]);
        assert_no_contradiction(&h, &search, &fast)?;
    }

    /// Same agreement for single undoable requests.
    #[test]
    fn fast_agrees_with_search_undoable(h in arb_history(8)) {
        let u = ActionId::base(ActionName::undoable("u"));
        let ops = [(u, Value::from(1))];
        let search = SearchChecker::default().check(&h, &ops, &[]);
        let fast = FastChecker::default().check(&h, &ops, &[]);
        assert_no_contradiction(&h, &search, &fast)?;
    }

    /// Two-request agreement: the fast tier's effect-ordered reading may
    /// diverge from the strict search reading only in the documented
    /// duplicate classes (DESIGN.md §4.3), and in each divergence the fast
    /// verdict must match the *surviving-effect order* derived
    /// independently here: a fast accept against a search reject is benign
    /// only when the surviving effects really are in submission order
    /// (trailing duplicates made the strict target unreachable), and a
    /// fast reject against a search accept is benign only when they really
    /// are out of order (the strict reading erased an early effect copy
    /// against a later duplicate). Anything else is a checker bug.
    #[test]
    fn fast_agrees_with_search_on_two_requests(
        h in arb_history(10),
        undoable_first in prop_oneof![Just(true), Just(false)],
    ) {
        assert_two_request_agreement(&h, undoable_first)?;
    }

    /// The erasable path agrees with reducibility-to-empty.
    #[test]
    fn fast_erasable_agrees_with_search(h in arb_history(6)) {
        let u = ActionId::base(ActionName::undoable("u"));
        let i = ActionId::base(ActionName::idempotent("i"));
        let erasable = [(u, Value::from(1)), (i, Value::from(1))];
        let fast = FastChecker::default().check(&h, &[], &erasable);
        let search = search_reduction(&h, History::is_empty, 0, SearchBudget::default());
        match (&search, &fast) {
            (SearchResult::Reached(_), Verdict::NotXable { reason }) => {
                prop_assert!(false, "fast says NotXable ({reason}) but history erases: {h}");
            }
            (SearchResult::Exhausted, Verdict::Xable { .. }) => {
                prop_assert!(false, "fast says erasable but search exhausted: {h}");
            }
            _ => {}
        }
    }

    /// The tiered checker preserves definite fast-tier answers verbatim
    /// and only ever *adds* information: a tiered `Unknown` implies the
    /// fast tier was undecided too.
    #[test]
    fn tiered_refines_fast(h in arb_history(8)) {
        let a = ActionId::base(ActionName::idempotent("i"));
        let ops = [(a, Value::from(1))];
        let fast = FastChecker::default().check(&h, &ops, &[]);
        let tiered = TieredChecker::default().check(&h, &ops, &[]);
        if !fast.is_unknown() {
            prop_assert_eq!(&tiered, &fast, "tiered must pass definite fast answers through");
        }
        if tiered.is_unknown() {
            prop_assert!(fast.is_unknown(), "tiered Unknown without fast Unknown: {}", h);
        }
    }

    /// On the single-request questions (where the fast tier's
    /// effect-ordered reading coincides with the strict reading), the
    /// tiered checker agrees with the search reference wherever both are
    /// definite.
    #[test]
    fn tiered_agrees_with_search_reference(h in arb_history(8)) {
        let a = ActionId::base(ActionName::idempotent("i"));
        let ops = [(a, Value::from(1))];
        let search = SearchChecker::default().check(&h, &ops, &[]);
        let tiered = TieredChecker::default().check(&h, &ops, &[]);
        assert_no_contradiction(&h, &search, &tiered)?;
    }
}

proptest! {
    // Pair sequences are short (≤ 14 events) and highly structured, so a
    // much larger case count stays cheap — large enough that the
    // five-pair cancel-then-retry shapes (execution, cancel, other
    // request, retry, commit) occur in the deterministic case stream.
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// Same two-request agreement over protocol-plausible histories of
    /// complete pairs, which exercise the cancel-then-retry and
    /// help-commit orderings much more densely than random event soup.
    #[test]
    fn fast_agrees_with_search_on_two_requests_paired(
        h in arb_paired_history(6),
        undoable_first in prop_oneof![Just(true), Just(false)],
    ) {
        assert_two_request_agreement(&h, undoable_first)?;
    }
}

// ---------------------------------------------------------------------------
// Fault-matrix agreement on recorded protocol histories: for every fault
// dimension the simulator can schedule (quiet baseline, message loss,
// duplication, reordering, a replica crash, a partition window, transient
// service failures) × {plain workload, round-stamped workload}, every
// decision procedure that speaks the recorded history's language must
// agree on the verdict.
// ---------------------------------------------------------------------------

use xability::harness::explore::{tier_disagreement, FaultPlan, PartitionSpec};
use xability::harness::{Scenario, Scheme, Workload};
use xability::sim::SimTime;

/// One plan per fault dimension, all derived from the same quiet plan so
/// each row isolates a single fault type.
fn fault_matrix() -> Vec<(&'static str, FaultPlan)> {
    let quiet = FaultPlan::quiet(11);
    let mut loss = quiet.clone();
    loss.drop_bp = 900;
    let mut dup = quiet.clone();
    dup.dup_bp = 900;
    let mut reorder = quiet.clone();
    reorder.reorder_bp = 1_500;
    reorder.reorder_extra_us = 20_000;
    let mut crash = quiet.clone();
    crash.crashes = vec![(0, 600_000)];
    let mut partition = quiet.clone();
    partition.partitions = vec![PartitionSpec {
        members: vec![1],
        from_us: 300_000,
        until_us: 1_500_000,
    }];
    let mut transient = quiet.clone();
    transient.fail_bp = 2_000;
    vec![
        ("quiet", quiet),
        ("loss", loss),
        ("dup", dup),
        ("reorder", reorder),
        ("crash", crash),
        ("partition", partition),
        ("transient", transient),
    ]
}

#[test]
fn fault_matrix_checkers_agree_on_recorded_histories() {
    let bases = [
        (
            "kv",
            false, // plain histories: idempotent puts are never round-stamped
            Scenario::new(Scheme::XAble, Workload::KvPuts { count: 3 })
                .horizon(SimTime::from_secs(5)),
        ),
        (
            "reservations",
            true, // undoable reserves run as §5.4 round-stamped transactions
            Scenario::new(Scheme::XAble, Workload::Reservations { count: 2, seats: 1 })
                .horizon(SimTime::from_secs(5)),
        ),
    ];
    for (fault, plan) in fault_matrix() {
        for (workload, stamped, base) in &bases {
            let report = plan.apply(base).run();
            let history = report.ledger.borrow().history().to_history();
            let requests = report.submitted.clone();
            let cell = format!("[{fault}/{workload}]");

            let fast = FastChecker::default().check_requests(&history, &requests);
            let tiered = TieredChecker::default().check_requests(&history, &requests);

            // The online checker replaying the same event stream answers
            // byte-identically to the batch fast tier.
            let mut inc = IncrementalChecker::new();
            for r in &requests {
                inc.declare_request(r);
            }
            for e in history.iter() {
                inc.push(e.clone());
            }
            assert_eq!(
                fast,
                inc.verdict(),
                "{cell} online checker diverged from batch fast tier"
            );

            // Tiered refines fast: definite fast answers pass through
            // unchanged, and on round-stamped histories an undecided fast
            // answer must never escalate into a definite search verdict.
            if !fast.is_unknown() {
                assert_eq!(fast, tiered, "{cell} tiered rewrote a definite verdict");
            } else if *stamped {
                assert!(
                    tiered.is_unknown(),
                    "{cell} tiered escalated a round-stamped history: {tiered}"
                );
            }

            // No undocumented definite fast-vs-search conflict (the oracle
            // skips stamped histories and the two divergences DESIGN.md
            // §4.3 documents as deliberate).
            assert_eq!(
                tier_disagreement(&requests, &history),
                None,
                "{cell} undocumented fast-vs-search disagreement"
            );

            // The quiet row is the control: no faults, so the run finishes
            // and every checker accepts it outright.
            if fault == "quiet" {
                assert!(report.finished, "{cell} quiet run must finish");
                assert!(fast.is_xable(), "{cell} quiet run must be x-able: {fast}");
            }
        }
    }
}
