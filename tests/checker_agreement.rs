//! Property tests: the polynomial fast checker agrees with the exhaustive
//! search checker (the reference semantics) wherever it gives a definite
//! answer.

use proptest::prelude::*;

use xability::core::xable::{fast, is_xable_search, SearchBudget, SearchResult};
use xability::core::{ActionId, ActionName, Event, History, Value};

/// Event alphabet: one idempotent action and one undoable action (with its
/// cancel/commit), one input, two possible outputs — small enough for the
/// exhaustive checker, expressive enough to hit every reduction rule.
fn arb_event() -> impl Strategy<Value = Event> {
    let idem = ActionId::base(ActionName::idempotent("i"));
    let undo = ActionId::base(ActionName::undoable("u"));
    let cancel = undo.cancel().expect("undoable");
    let commit = undo.commit().expect("undoable");
    prop_oneof![
        Just(Event::start(idem.clone(), Value::from(1))),
        Just(Event::complete(idem.clone(), Value::from(7))),
        Just(Event::complete(idem, Value::from(8))),
        Just(Event::start(undo.clone(), Value::from(1))),
        Just(Event::complete(undo, Value::from(7))),
        Just(Event::start(cancel.clone(), Value::from(1))),
        Just(Event::complete(cancel, Value::Nil)),
        Just(Event::start(commit.clone(), Value::from(1))),
        Just(Event::complete(commit, Value::Nil)),
    ]
}

fn arb_history(max_len: usize) -> impl Strategy<Value = History> {
    prop::collection::vec(arb_event(), 0..max_len).prop_map(History::from_events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fast checker verdicts agree with the exhaustive search on single
    /// idempotent requests.
    #[test]
    fn fast_agrees_with_search_idempotent(h in arb_history(8)) {
        let a = ActionId::base(ActionName::idempotent("i"));
        let ops = [(a, Value::from(1))];
        let search = is_xable_search(&h, &ops, SearchBudget::default());
        let fastv = fast::check(&h, &ops, &[]);
        match (&search, &fastv) {
            (SearchResult::Reached(_), fast::Verdict::NotXAble { reason }) => {
                prop_assert!(false, "fast says NotXAble ({reason}) but search reduced: {h}");
            }
            (SearchResult::Exhausted, fast::Verdict::XAble { .. }) => {
                prop_assert!(false, "fast says XAble but search exhausted: {h}");
            }
            _ => {}
        }
    }

    /// Same agreement for single undoable requests.
    #[test]
    fn fast_agrees_with_search_undoable(h in arb_history(8)) {
        let u = ActionId::base(ActionName::undoable("u"));
        let ops = [(u, Value::from(1))];
        let search = is_xable_search(&h, &ops, SearchBudget::default());
        let fastv = fast::check(&h, &ops, &[]);
        match (&search, &fastv) {
            (SearchResult::Reached(_), fast::Verdict::NotXAble { reason }) => {
                prop_assert!(false, "fast says NotXAble ({reason}) but search reduced: {h}");
            }
            (SearchResult::Exhausted, fast::Verdict::XAble { .. }) => {
                prop_assert!(false, "fast says XAble but search exhausted: {h}");
            }
            _ => {}
        }
    }

    /// The erasable path agrees with reducibility-to-empty.
    #[test]
    fn fast_erasable_agrees_with_search(h in arb_history(6)) {
        use xability::core::xable::search_reduction;
        let u = ActionId::base(ActionName::undoable("u"));
        let i = ActionId::base(ActionName::idempotent("i"));
        let erasable = [(u, Value::from(1)), (i, Value::from(1))];
        let fastv = fast::check(&h, &[], &erasable);
        let search = search_reduction(&h, History::is_empty, 0, SearchBudget::default());
        match (&search, &fastv) {
            (SearchResult::Reached(_), fast::Verdict::NotXAble { reason }) => {
                prop_assert!(false, "fast says NotXAble ({reason}) but history erases: {h}");
            }
            (SearchResult::Exhausted, fast::Verdict::XAble { .. }) => {
                prop_assert!(false, "fast says erasable but search exhausted: {h}");
            }
            _ => {}
        }
    }
}
