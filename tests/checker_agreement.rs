//! Property tests: the polynomial fast checker agrees with the exhaustive
//! search checker (the reference semantics) wherever it gives a definite
//! answer, and the tiered checker never contradicts either tier.

use proptest::prelude::*;

use xability::core::xable::{
    search_reduction, Checker, FastChecker, SearchBudget, SearchChecker, SearchResult,
    TieredChecker, Verdict,
};
use xability::core::{ActionId, ActionName, Event, History, Value};

/// Event alphabet: one idempotent action and one undoable action (with its
/// cancel/commit), one input, two possible outputs — small enough for the
/// exhaustive checker, expressive enough to hit every reduction rule.
fn arb_event() -> impl Strategy<Value = Event> {
    let idem = ActionId::base(ActionName::idempotent("i"));
    let undo = ActionId::base(ActionName::undoable("u"));
    let cancel = undo.cancel().expect("undoable");
    let commit = undo.commit().expect("undoable");
    prop_oneof![
        Just(Event::start(idem.clone(), Value::from(1))),
        Just(Event::complete(idem.clone(), Value::from(7))),
        Just(Event::complete(idem, Value::from(8))),
        Just(Event::start(undo.clone(), Value::from(1))),
        Just(Event::complete(undo, Value::from(7))),
        Just(Event::start(cancel.clone(), Value::from(1))),
        Just(Event::complete(cancel, Value::Nil)),
        Just(Event::start(commit.clone(), Value::from(1))),
        Just(Event::complete(commit, Value::Nil)),
    ]
}

fn arb_history(max_len: usize) -> impl Strategy<Value = History> {
    prop::collection::vec(arb_event(), 0..max_len).prop_map(History::from_events)
}

/// Fails the property if the fast tier's definite verdict contradicts the
/// search tier's definite verdict on the same single-request question.
fn assert_no_contradiction(
    h: &History,
    search: &Verdict,
    fast: &Verdict,
) -> Result<(), TestCaseError> {
    match (search, fast) {
        (Verdict::Xable { .. }, Verdict::NotXable { reason }) => {
            prop_assert!(false, "fast says NotXable ({reason}) but search reduced: {h}");
        }
        (Verdict::NotXable { .. }, Verdict::Xable { .. }) => {
            prop_assert!(false, "fast says Xable but search exhausted: {h}");
        }
        _ => {}
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fast checker verdicts agree with the exhaustive search on single
    /// idempotent requests.
    #[test]
    fn fast_agrees_with_search_idempotent(h in arb_history(8)) {
        let a = ActionId::base(ActionName::idempotent("i"));
        let ops = [(a, Value::from(1))];
        let search = SearchChecker::default().check(&h, &ops, &[]);
        let fast = FastChecker::default().check(&h, &ops, &[]);
        assert_no_contradiction(&h, &search, &fast)?;
    }

    /// Same agreement for single undoable requests.
    #[test]
    fn fast_agrees_with_search_undoable(h in arb_history(8)) {
        let u = ActionId::base(ActionName::undoable("u"));
        let ops = [(u, Value::from(1))];
        let search = SearchChecker::default().check(&h, &ops, &[]);
        let fast = FastChecker::default().check(&h, &ops, &[]);
        assert_no_contradiction(&h, &search, &fast)?;
    }

    /// The erasable path agrees with reducibility-to-empty.
    #[test]
    fn fast_erasable_agrees_with_search(h in arb_history(6)) {
        let u = ActionId::base(ActionName::undoable("u"));
        let i = ActionId::base(ActionName::idempotent("i"));
        let erasable = [(u, Value::from(1)), (i, Value::from(1))];
        let fast = FastChecker::default().check(&h, &[], &erasable);
        let search = search_reduction(&h, History::is_empty, 0, SearchBudget::default());
        match (&search, &fast) {
            (SearchResult::Reached(_), Verdict::NotXable { reason }) => {
                prop_assert!(false, "fast says NotXable ({reason}) but history erases: {h}");
            }
            (SearchResult::Exhausted, Verdict::Xable { .. }) => {
                prop_assert!(false, "fast says erasable but search exhausted: {h}");
            }
            _ => {}
        }
    }

    /// The tiered checker preserves definite fast-tier answers verbatim
    /// and only ever *adds* information: a tiered `Unknown` implies the
    /// fast tier was undecided too.
    #[test]
    fn tiered_refines_fast(h in arb_history(8)) {
        let a = ActionId::base(ActionName::idempotent("i"));
        let ops = [(a, Value::from(1))];
        let fast = FastChecker::default().check(&h, &ops, &[]);
        let tiered = TieredChecker::default().check(&h, &ops, &[]);
        if !fast.is_unknown() {
            prop_assert_eq!(&tiered, &fast, "tiered must pass definite fast answers through");
        }
        if tiered.is_unknown() {
            prop_assert!(fast.is_unknown(), "tiered Unknown without fast Unknown: {}", h);
        }
    }

    /// On the single-request questions (where the fast tier's
    /// effect-ordered reading coincides with the strict reading), the
    /// tiered checker agrees with the search reference wherever both are
    /// definite.
    #[test]
    fn tiered_agrees_with_search_reference(h in arb_history(8)) {
        let a = ActionId::base(ActionName::idempotent("i"));
        let ops = [(a, Value::from(1))];
        let search = SearchChecker::default().check(&h, &ops, &[]);
        let tiered = TieredChecker::default().check(&h, &ops, &[]);
        assert_no_contradiction(&h, &search, &tiered)?;
    }
}
