//! Property tests for the reduction relation ⇒ (Fig. 4): structural laws
//! every step must satisfy.

use proptest::prelude::*;

use xability::core::reduce::{reduction_steps, ReductionRule};
use xability::core::signature::signatures;
use xability::core::xable::{is_xable_search, SearchBudget, SearchResult};
use xability::core::{ActionId, ActionName, Event, History, Value};

fn alphabet() -> Vec<Event> {
    let idem = ActionId::base(ActionName::idempotent("i"));
    let undo = ActionId::base(ActionName::undoable("u"));
    let cancel = undo.cancel().expect("undoable");
    let commit = undo.commit().expect("undoable");
    vec![
        Event::start(idem.clone(), Value::from(1)),
        Event::complete(idem.clone(), Value::from(7)),
        Event::complete(idem, Value::from(8)),
        Event::start(undo.clone(), Value::from(1)),
        Event::complete(undo, Value::from(7)),
        Event::start(cancel.clone(), Value::from(1)),
        Event::complete(cancel, Value::Nil),
        Event::start(commit.clone(), Value::from(1)),
        Event::complete(commit, Value::Nil),
    ]
}

fn arb_history(max_len: usize) -> impl Strategy<Value = History> {
    let alpha = alphabet();
    prop::collection::vec(0..alpha.len(), 0..max_len).prop_map(move |idx| {
        History::from_events(idx.into_iter().map(|i| alpha[i].clone()).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reduction never lengthens a history, and rule 19 strictly shortens.
    #[test]
    fn steps_never_lengthen(h in arb_history(9)) {
        for step in reduction_steps(&h) {
            prop_assert!(step.result.len() <= h.len());
            if step.rule == ReductionRule::CancelErasure {
                prop_assert!(step.result.len() < h.len());
            }
            prop_assert_ne!(&step.result, &h, "identity step leaked");
        }
    }

    /// Steps preserve the event multiset except for erased events and the
    /// re-emitted surviving pair (compaction reorders, never invents).
    #[test]
    fn steps_never_invent_events(h in arb_history(9)) {
        use std::collections::BTreeMap;
        fn count(hist: &History) -> BTreeMap<&Event, isize> {
            let mut m: BTreeMap<&Event, isize> = BTreeMap::new();
            for e in hist.iter() {
                *m.entry(e).or_default() += 1;
            }
            m
        }
        let before = count(&h);
        for step in reduction_steps(&h) {
            for (event, n) in count(&step.result) {
                prop_assert!(
                    before.get(event).copied().unwrap_or(0) >= n,
                    "step invented event {event} in {h} -> {}",
                    step.result
                );
            }
        }
    }

    /// X-ability is preserved along reduction: if a successor reduces to a
    /// failure-free history, so does the original (rule 17, transitivity).
    #[test]
    fn xability_flows_backwards(h in arb_history(7)) {
        let i = ActionId::base(ActionName::idempotent("i"));
        let ops = [(i, Value::from(1))];
        for succ in reduction_steps(&h).into_iter().map(|s| s.result) {
            if matches!(is_xable_search(&succ, &ops, SearchBudget::default()), SearchResult::Reached(_)) {
                prop_assert!(
                    matches!(is_xable_search(&h, &ops, SearchBudget::default()), SearchResult::Reached(_)),
                    "successor x-able but original not: {h}"
                );
            }
        }
    }

    /// Signatures only shrink along reduction steps: any signature of a
    /// successor is a signature of the original.
    #[test]
    fn signatures_shrink(h in arb_history(6)) {
        let sig_h = signatures(&h, SearchBudget::default());
        for succ in reduction_steps(&h).into_iter().map(|s| s.result) {
            for sig in signatures(&succ, SearchBudget::default()) {
                prop_assert!(
                    sig_h.contains(&sig),
                    "successor gained signature ({}, {}, {}): {h}",
                    sig.action, sig.input, sig.output
                );
            }
        }
    }

    /// The empty history is irreducible and has no signatures.
    #[test]
    fn failure_free_histories_are_fixpoints_of_goal(ov in 0i64..3) {
        use xability::core::failure_free::eventsof;
        let i = ActionId::base(ActionName::idempotent("i"));
        let h = eventsof(&i, &Value::from(1), &Value::from(ov));
        // Already failure-free: immediately x-able.
        let ops = [(i, Value::from(1))];
        prop_assert!(matches!(
            is_xable_search(&h, &ops, SearchBudget::default()),
            SearchResult::Reached(_)
        ));
    }
}
