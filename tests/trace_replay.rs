//! Trace-corpus replay regression: the small recorded traces under
//! `tests/corpus/` must keep replaying bit-for-bit and re-checking to the
//! same verdicts on every build — the committed corpus pins the binary
//! trace format (magic, version, encodings) against accidental drift.
//!
//! To regenerate the corpus after a *deliberate* format change (bump
//! `TRACE_FORMAT_VERSION` first):
//!
//! ```text
//! UPDATE_TRACE_CORPUS=1 cargo test --test trace_replay
//! ```

use std::path::Path;

use xability::core::xable::{Checker, FastChecker};
use xability::core::{ActionId, ActionName, Event, History, Request, Value};
use xability::store::{RecordedTrace, TraceStore};
use xability_bench::{n_requests_with_cancelled_rounds, n_retried_requests};

const CORPUS_DIR: &str = "tests/corpus";

/// Expected verdict class of a corpus entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Xable,
    NotXable,
}

/// One corpus entry: its file name, how to (re)build it, the event/request
/// counts it must hold, and the verdict it must re-check to.
struct CorpusEntry {
    file: &'static str,
    build: fn() -> (Vec<Request>, History),
    events: usize,
    requests: usize,
    expect: Expect,
}

fn requests_of(ops: Vec<(ActionId, Value)>) -> Vec<Request> {
    ops.into_iter().map(|(a, iv)| Request::new(a, iv)).collect()
}

/// 40 idempotent requests, each retried once: the bulk heavy-traffic shape.
fn retried_idempotent() -> (Vec<Request>, History) {
    let (h, ops) = n_retried_requests(40);
    (requests_of(ops), h)
}

/// 20 undoable requests, each with a cancelled round before the committed
/// one: what crash/cleaning runs record.
fn cancelled_rounds() -> (Vec<Request>, History) {
    let (h, ops) = n_requests_with_cancelled_rounds(20);
    (requests_of(ops), h)
}

/// A duplicated effect with disagreeing outputs: irreducible, the
/// regression pin for a definite NotXable replay.
fn duplicated_effect() -> (Vec<Request>, History) {
    let a = ActionId::base(ActionName::idempotent("put"));
    let h: History = [
        Event::start(a.clone(), Value::from(1)),
        Event::complete(a.clone(), Value::from(5)),
        Event::start(a.clone(), Value::from(1)),
        Event::complete(a.clone(), Value::from(6)),
    ]
    .into_iter()
    .collect();
    (vec![Request::new(a, Value::from(1))], h)
}

const CORPUS: [CorpusEntry; 3] = [
    CorpusEntry {
        file: "retried_idempotent.xtrace",
        build: retried_idempotent,
        events: 120,
        requests: 40,
        expect: Expect::Xable,
    },
    CorpusEntry {
        file: "cancelled_rounds.xtrace",
        build: cancelled_rounds,
        events: 140,
        requests: 20,
        expect: Expect::Xable,
    },
    CorpusEntry {
        file: "duplicated_effect.xtrace",
        build: duplicated_effect,
        events: 4,
        requests: 1,
        expect: Expect::NotXable,
    },
];

#[test]
fn corpus_replays_and_rechecks() {
    if std::env::var_os("UPDATE_TRACE_CORPUS").is_some() {
        std::fs::create_dir_all(CORPUS_DIR).expect("create corpus dir");
        for entry in &CORPUS {
            let (requests, history) = (entry.build)();
            let recorded = RecordedTrace {
                requests,
                store: TraceStore::from_history(&history),
            };
            recorded
                .write_to_file(Path::new(CORPUS_DIR).join(entry.file))
                .expect("write corpus entry");
        }
        return;
    }

    let checker = FastChecker::default();
    for entry in &CORPUS {
        let path = Path::new(CORPUS_DIR).join(entry.file);
        let replayed = RecordedTrace::read_from_file(&path)
            .unwrap_or_else(|e| panic!("corpus entry {} failed to replay: {e}", entry.file));
        assert_eq!(
            replayed.store.len(),
            entry.events,
            "{}: event count",
            entry.file
        );
        assert_eq!(
            replayed.requests.len(),
            entry.requests,
            "{}: request count",
            entry.file
        );

        // The recorded bytes decode to exactly the generator's history…
        let (expected_requests, expected_history) = (entry.build)();
        assert_eq!(
            replayed.requests, expected_requests,
            "{}: requests",
            entry.file
        );
        assert_eq!(
            replayed.store.view().to_history(),
            expected_history,
            "{}: events",
            entry.file
        );

        // …and re-check to the pinned verdict, zero-copy off the view.
        let verdict = checker.check_requests_source(&replayed.store.view(), &replayed.requests);
        match entry.expect {
            Expect::Xable => assert!(verdict.is_xable(), "{}: {verdict}", entry.file),
            Expect::NotXable => assert!(verdict.is_not_xable(), "{}: {verdict}", entry.file),
        }
    }
}
