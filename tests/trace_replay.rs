//! Trace-corpus replay regression: the small recorded traces under
//! `tests/corpus/` must keep replaying bit-for-bit and re-checking to the
//! same verdicts on every build — the committed corpus pins the binary
//! trace format (magic, version, encodings) against accidental drift.
//!
//! To regenerate the corpus after a *deliberate* format change (bump
//! `TRACE_FORMAT_VERSION` first):
//!
//! ```text
//! UPDATE_TRACE_CORPUS=1 cargo test --test trace_replay
//! ```

use std::path::Path;

use xability::core::xable::{Checker, FastChecker};
use xability::core::{ActionId, ActionName, Event, History, Request, Value};
use xability::harness::{
    dangling_round_violation, Explorer, ExplorerConfig, ReasonClass, Scenario, Scheme, Shrinker,
    ShrunkViolation, ViolationKind, Workload,
};
use xability::sim::SimTime;
use xability::store::{RecordedTrace, TraceStore};
use xability_bench::{n_requests_with_cancelled_rounds, n_retried_requests};

const CORPUS_DIR: &str = "tests/corpus";

/// Expected verdict class of a corpus entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Xable,
    NotXable,
}

/// One corpus entry: its file name, how to (re)build it, the event/request
/// counts it must hold, and the verdict it must re-check to.
struct CorpusEntry {
    file: &'static str,
    build: fn() -> (Vec<Request>, History),
    events: usize,
    requests: usize,
    expect: Expect,
}

fn requests_of(ops: Vec<(ActionId, Value)>) -> Vec<Request> {
    ops.into_iter().map(|(a, iv)| Request::new(a, iv)).collect()
}

/// 40 idempotent requests, each retried once: the bulk heavy-traffic shape.
fn retried_idempotent() -> (Vec<Request>, History) {
    let (h, ops) = n_retried_requests(40);
    (requests_of(ops), h)
}

/// 20 undoable requests, each with a cancelled round before the committed
/// one: what crash/cleaning runs record.
fn cancelled_rounds() -> (Vec<Request>, History) {
    let (h, ops) = n_requests_with_cancelled_rounds(20);
    (requests_of(ops), h)
}

/// A duplicated effect with disagreeing outputs: irreducible, the
/// regression pin for a definite NotXable replay.
fn duplicated_effect() -> (Vec<Request>, History) {
    let a = ActionId::base(ActionName::idempotent("put"));
    let h: History = [
        Event::start(a.clone(), Value::from(1)),
        Event::complete(a.clone(), Value::from(5)),
        Event::start(a.clone(), Value::from(1)),
        Event::complete(a.clone(), Value::from(6)),
    ]
    .into_iter()
    .collect();
    (vec![Request::new(a, Value::from(1))], h)
}

const CORPUS: [CorpusEntry; 3] = [
    CorpusEntry {
        file: "retried_idempotent.xtrace",
        build: retried_idempotent,
        events: 120,
        requests: 40,
        expect: Expect::Xable,
    },
    CorpusEntry {
        file: "cancelled_rounds.xtrace",
        build: cancelled_rounds,
        events: 140,
        requests: 20,
        expect: Expect::Xable,
    },
    CorpusEntry {
        file: "duplicated_effect.xtrace",
        build: duplicated_effect,
        events: 4,
        requests: 1,
        expect: Expect::NotXable,
    },
];

#[test]
fn corpus_replays_and_rechecks() {
    if std::env::var_os("UPDATE_TRACE_CORPUS").is_some() {
        std::fs::create_dir_all(CORPUS_DIR).expect("create corpus dir");
        for entry in &CORPUS {
            let (requests, history) = (entry.build)();
            let recorded = RecordedTrace {
                requests,
                store: TraceStore::from_history(&history),
                meta: vec![(
                    "generator".to_string(),
                    "tests/trace_replay.rs (UPDATE_TRACE_CORPUS=1)".to_string(),
                )],
            };
            recorded
                .write_to_file(Path::new(CORPUS_DIR).join(entry.file))
                .expect("write corpus entry");
        }
        return;
    }

    let checker = FastChecker::default();
    for entry in &CORPUS {
        let path = Path::new(CORPUS_DIR).join(entry.file);
        let replayed = RecordedTrace::read_from_file(&path)
            .unwrap_or_else(|e| panic!("corpus entry {} failed to replay: {e}", entry.file));
        assert_eq!(
            replayed.store.len(),
            entry.events,
            "{}: event count",
            entry.file
        );
        assert_eq!(
            replayed.requests.len(),
            entry.requests,
            "{}: request count",
            entry.file
        );

        // The recorded bytes decode to exactly the generator's history…
        let (expected_requests, expected_history) = (entry.build)();
        assert_eq!(
            replayed.requests, expected_requests,
            "{}: requests",
            entry.file
        );
        assert_eq!(
            replayed.store.view().to_history(),
            expected_history,
            "{}: events",
            entry.file
        );

        // …and re-check to the pinned verdict, zero-copy off the view.
        let verdict = checker.check_requests_source(&replayed.store.view(), &replayed.requests);
        match entry.expect {
            Expect::Xable => assert!(verdict.is_xable(), "{}: {verdict}", entry.file),
            Expect::NotXable => assert!(verdict.is_not_xable(), "{}: {verdict}", entry.file),
        }
    }
}

// ---------------------------------------------------------------------------
// The machine-grown half of the corpus: reproducers discovered by the
// coverage-guided explorer against the deliberately weakened protocol
// (`Scenario::weaken_retry`) and shrunk to 1-minimal traces. Each entry
// pins the explorer configuration that (re)grows it, so
// `UPDATE_TRACE_CORPUS=1` regenerates the exact same bytes.
// ---------------------------------------------------------------------------

/// One machine-grown corpus entry: the file it lives in plus the pinned
/// explorer run that grows it.
struct ExploredEntry {
    file: &'static str,
    master_seed: u64,
    runs: usize,
    base: fn() -> Scenario,
}

fn weakened_reservations() -> Scenario {
    Scenario::new(Scheme::XAble, Workload::Reservations { count: 2, seats: 1 })
        .horizon(SimTime::from_secs(5))
        .weaken_retry()
}

fn weakened_bank() -> Scenario {
    Scenario::new(
        Scheme::XAble,
        Workload::BankTransfers {
            count: 2,
            amount: 5,
        },
    )
    .horizon(SimTime::from_secs(5))
    .weaken_retry()
}

const EXPLORED: [ExploredEntry; 2] = [
    ExploredEntry {
        file: "dangling_round_reservations.xtrace",
        master_seed: 0xC0FFEE,
        runs: 60,
        base: weakened_reservations,
    },
    ExploredEntry {
        file: "dangling_round_bank.xtrace",
        master_seed: 0xC0FFEE,
        runs: 60,
        base: weakened_bank,
    },
];

/// Runs the entry's pinned exploration and shrinks its planted-weakness
/// discovery — the deterministic pipeline that grew the committed file.
fn grow(entry: &ExploredEntry) -> ShrunkViolation {
    let base = (entry.base)();
    let report = Explorer::new(ExplorerConfig::new(
        base.clone(),
        entry.master_seed,
        entry.runs,
    ))
    .run();
    let shrinker = Shrinker::new(base);
    report
        .distinct_violations()
        .into_iter()
        .filter(|v| {
            v.class.kind == ViolationKind::R3 && v.class.reason == ReasonClass::DanglingRound
        })
        .filter_map(|v| shrinker.shrink(v))
        .next()
        .expect("the pinned master seed deterministically discovers the planted weakness")
}

#[test]
fn explored_corpus_replays_and_rechecks() {
    if std::env::var_os("UPDATE_TRACE_CORPUS").is_some() {
        std::fs::create_dir_all(CORPUS_DIR).expect("create corpus dir");
        for entry in &EXPLORED {
            grow(entry)
                .write_trace(Path::new(CORPUS_DIR).join(entry.file))
                .expect("write explored corpus entry");
        }
        return;
    }

    for entry in &EXPLORED {
        let path = Path::new(CORPUS_DIR).join(entry.file);
        let replayed = RecordedTrace::read_from_file(&path)
            .unwrap_or_else(|e| panic!("corpus entry {} failed to replay: {e}", entry.file));

        // Provenance metadata survives the round trip.
        assert_eq!(
            replayed.meta_value("generator"),
            Some("harness::explore"),
            "{}: generator",
            entry.file
        );
        assert_eq!(
            replayed.meta_value("violation_kind"),
            Some("R3"),
            "{}: violation kind",
            entry.file
        );
        assert_eq!(
            replayed.meta_value("reason_class"),
            Some("DanglingRound"),
            "{}: reason class",
            entry.file
        );
        assert_eq!(
            replayed.meta_value("events"),
            Some(replayed.store.len().to_string().as_str()),
            "{}: events meta matches the store",
            entry.file
        );

        // Shrunk means shrunk.
        assert!(
            replayed.store.len() <= 20,
            "{}: minimal reproducer, got {} events",
            entry.file,
            replayed.store.len()
        );

        // The committed reproducer still witnesses the violation class it
        // was grown for: structurally (the attribution-independent
        // dangling-round oracle)…
        let history = replayed.store.view().to_history();
        let class = dangling_round_violation(&replayed.requests, &history)
            .unwrap_or_else(|| panic!("{}: dangling round must persist", entry.file));
        assert_eq!(class.kind, ViolationKind::R3, "{}: kind", entry.file);
        assert_eq!(
            class.reason,
            ReasonClass::DanglingRound,
            "{}: reason",
            entry.file
        );

        // …and under the checker, which must not certify it x-able
        // (the fast tier answers `Unknown` here — the completion
        // attribution on these round-stamped traces is ambiguous, which
        // is exactly why the structural oracle exists).
        let verdict = FastChecker::default()
            .check_requests_source(&replayed.store.view(), &replayed.requests);
        assert!(
            !verdict.is_xable(),
            "{}: a shrunk violation must not re-check x-able: {verdict}",
            entry.file
        );
    }
}

#[test]
fn every_corpus_file_parses_under_the_current_format() {
    if std::env::var_os("UPDATE_TRACE_CORPUS").is_some() {
        return; // regeneration pass: siblings are mid-rewrite
    }
    let mut seen = 0;
    for entry in std::fs::read_dir(CORPUS_DIR).expect("corpus dir exists") {
        let path = entry.expect("read corpus dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("xtrace") {
            continue;
        }
        seen += 1;
        RecordedTrace::read_from_file(&path)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
    }
    assert!(
        seen >= CORPUS.len() + EXPLORED.len(),
        "corpus hygiene: every committed entry is covered, found {seen}"
    );
}
