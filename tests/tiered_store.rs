//! Crash-safety and re-check-equality integration tests for the durable
//! tiered store (`xability::store::tier` / `segfile`).
//!
//! The contract under test: a segment directory is *always* recoverable —
//! any torn write (simulated by truncating a sealed segment at **every**
//! byte boundary) and any single-byte corruption yields either the full
//! chain or a shorter valid prefix with the damage quarantined, never a
//! panic and never silently wrong events — and checker verdicts over
//! file-backed views are identical to in-memory ones, compressed or not.

use std::fs;
use std::path::PathBuf;

use xability::core::xable::{Checker, FastChecker, IncrementalState, TieredChecker};
use xability::core::{ActionId, ActionName, Event, HistoryRead, Request, Value};
use xability::harness::{RunReport, Scenario, Scheme, Workload};
use xability::sim::SimTime;
use xability::store::{
    read_tiered_trace, recover_store, Codec, SegmentLog, TierConfig, TieredStore, TraceStore,
};
use xability_bench::n_retried_requests;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xability-tiertest-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small mixed workload: idempotent retries plus an undoable
/// cancel/commit round, as both requests and events.
fn small_workload() -> (Vec<Request>, Vec<Event>) {
    let (history, ops) = n_retried_requests(6);
    let mut requests: Vec<Request> = ops.into_iter().map(|(a, iv)| Request::new(a, iv)).collect();
    let mut events: Vec<Event> = history.events().to_vec();
    let undo = ActionId::base(ActionName::undoable("reserve"));
    let cancel = undo.cancel().expect("undoable");
    requests.push(Request::new(undo.clone(), Value::from(9)));
    events.extend([
        Event::start(undo.clone(), Value::from(9)),
        Event::start(cancel.clone(), Value::from(9)),
        Event::complete(cancel, Value::Nil),
        Event::start(undo.clone(), Value::from(9)),
        Event::complete(undo.clone(), Value::from(9)),
        Event::start(undo.commit().expect("undoable"), Value::from(9)),
        Event::complete(undo.commit().expect("undoable"), Value::Nil),
    ]);
    (requests, events)
}

fn flat_store(events: &[Event]) -> TraceStore {
    let mut store = TraceStore::new();
    store.push_batch(events);
    store
}

fn ops_of(requests: &[Request]) -> Vec<(ActionId, Value)> {
    requests
        .iter()
        .map(|r| (r.action().clone(), r.input().clone()))
        .collect()
}

/// Builds a two-segment chain and returns the directory plus the flat
/// in-memory mirror.
fn sealed_chain(tag: &str, codec: Codec) -> (PathBuf, TraceStore, Vec<Event>) {
    let (_, events) = small_workload();
    let dir = tmpdir(tag);
    let flat = flat_store(&events);
    let snap = flat.snapshot();
    let mut log = SegmentLog::create(&dir, codec).expect("create chain");
    let half = snap.len() / 2;
    log.seal(snap.interner(), half, &mut (0..half).map(|i| snap.repr(i)))
        .expect("seal first half");
    log.seal(
        snap.interner(),
        snap.len() - half,
        &mut (half..snap.len()).map(|i| snap.repr(i)),
    )
    .expect("seal second half");
    (dir, flat, events)
}

/// Torn-write simulation: truncate the tail segment at every byte
/// boundary. Recovery must never panic, never fabricate events, and must
/// recover exactly the first segment whenever the tail is damaged.
#[test]
fn every_truncation_of_the_tail_segment_recovers_a_valid_prefix() {
    for codec in [Codec::None, Codec::Lz] {
        let (dir, flat, _) = sealed_chain(&format!("torn-{codec}"), codec);
        let tail = dir.join("seg-000001.xtrace");
        let pristine = fs::read(&tail).expect("read tail segment");
        let half = flat.len() / 2;

        for cut in 0..pristine.len() {
            fs::write(&tail, &pristine[..cut]).expect("truncate tail");
            let (store, report) = recover_store(&dir)
                .unwrap_or_else(|e| panic!("codec {codec}, cut {cut}: recovery errored: {e}"));
            assert_eq!(
                report.segments_recovered, 1,
                "codec {codec}, cut {cut}: a truncated tail must not validate"
            );
            assert_eq!(store.len(), half, "codec {codec}, cut {cut}");
            for i in 0..half {
                assert_eq!(store.event(i), flat.event(i), "codec {codec}, cut {cut}");
            }
            // The torn file was quarantined; put it back for the next cut.
            assert_eq!(report.quarantined.len(), 1, "codec {codec}, cut {cut}");
            fs::remove_file(&report.quarantined[0]).expect("drop quarantined tail");
            fs::write(&tail, &pristine).expect("restore tail");
        }
        // Sanity: the pristine chain still recovers in full.
        let (store, report) = recover_store(&dir).expect("pristine recovery");
        assert_eq!(report.segments_recovered, 2);
        assert_eq!(store.len(), flat.len());
        fs::remove_dir_all(&dir).ok();
    }
}

/// Checksum coverage: flipping any single byte of a sealed segment must
/// never panic and never yield different events without quarantining the
/// segment.
#[test]
fn every_single_byte_corruption_is_rejected_or_quarantined() {
    let (dir, flat, _) = sealed_chain("flip", Codec::Lz);
    let tail = dir.join("seg-000001.xtrace");
    let pristine = fs::read(&tail).expect("read tail segment");
    let half = flat.len() / 2;

    for i in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[i] ^= 0xFF;
        fs::write(&tail, &bytes).expect("corrupt tail");
        let (store, report) =
            recover_store(&dir).unwrap_or_else(|e| panic!("flip at {i}: recovery errored: {e}"));
        assert_eq!(
            report.segments_recovered, 1,
            "flip at {i}: a corrupted segment joined the chain"
        );
        assert_eq!(store.len(), half, "flip at {i}");
        for q in &report.quarantined {
            fs::remove_file(q).expect("drop quarantined tail");
        }
        fs::write(&tail, &pristine).expect("restore tail");
    }
    fs::remove_dir_all(&dir).ok();
}

/// The acceptance bar: verdicts over file-backed views are identical to
/// in-memory verdicts — across codecs, across a full reopen, and for
/// fast, tiered, and incremental checkers alike.
#[test]
fn reopened_views_recheck_byte_identically_to_memory() {
    let (requests, events) = small_workload();
    let ops = ops_of(&requests);
    let flat = flat_store(&events);
    let fast = FastChecker::default();
    let tiered_checker = TieredChecker::default();
    let memory_fast = fast.check_source(&flat.view(), &ops, &[]);
    let memory_tiered = tiered_checker.check_source(&flat.view(), &ops, &[]);

    for codec in [Codec::None, Codec::Lz] {
        let dir = tmpdir(&format!("recheck-{codec}"));
        let config = TierConfig {
            spill_threshold: 7, // uneven on purpose: partial final segment
            codec,
            evict_on_seal: true,
        };
        let mut tiered = TieredStore::create(&dir, config).expect("create");
        tiered.push_batch(&events).expect("push");
        tiered.flush().expect("flush");
        drop(tiered);

        let (mut reopened, report) = TieredStore::open(&dir, config).expect("open");
        assert!(report.quarantined.is_empty());
        assert_eq!(report.events_recovered, events.len());
        let view = reopened.view().expect("view");

        assert_eq!(
            fast.check_source(&view, &ops, &[]),
            memory_fast,
            "codec {codec}: FastChecker over the file-backed view"
        );
        assert_eq!(
            tiered_checker.check_source(&view, &ops, &[]),
            memory_tiered,
            "codec {codec}: TieredChecker over the file-backed view"
        );

        // IncrementalState replays the same events from the view.
        let mut monitor = IncrementalState::new();
        for request in &requests {
            monitor.declare_request(request);
        }
        view.scan_events(&mut |_, ev| {
            monitor.observe(ev);
            true
        });
        assert_eq!(
            monitor.verdict_over(&view).is_xable(),
            memory_fast.is_xable(),
            "codec {codec}: incremental monitor over the file-backed view"
        );
        fs::remove_dir_all(&dir).ok();
    }
}

/// End-to-end through the harness: a real run dumps a tiered trace
/// directory, which reads back and re-checks to the run's own verdict.
#[test]
fn run_report_tiered_dump_reads_back_and_rechecks() {
    let report = Scenario::new(Scheme::XAble, Workload::Reservations { count: 3, seats: 2 })
        .horizon(SimTime::from_secs(5))
        .run();
    assert!(report.history_len > 0, "the run must record events");

    for codec in [Codec::None, Codec::Lz] {
        let dir = tmpdir(&format!("report-{codec}"));
        let config = TierConfig {
            spill_threshold: 16,
            codec,
            evict_on_seal: true,
        };
        report.write_tiered_trace(&dir, config).expect("dump");
        let (replayed, recovery) = RunReport::read_tiered_trace(&dir).expect("read back");
        assert!(recovery.quarantined.is_empty());
        assert_eq!(replayed.store.len(), report.history_len);
        assert_eq!(replayed.requests, report.submitted);
        assert_eq!(replayed.meta_value("scheme"), Some("XAble"));
        assert_eq!(
            replayed.store.view().to_history(),
            report.ledger.borrow().history().to_history(),
            "codec {codec}: recovered events"
        );
        let verdict = FastChecker::default()
            .check_requests_source(&replayed.store.view(), &replayed.requests);
        assert_eq!(
            verdict.is_xable(),
            report.r3_violation.is_none(),
            "codec {codec}: replayed verdict vs the run's"
        );
        fs::remove_dir_all(&dir).ok();
    }
}

/// The tiered directory and the corpus format stay mutually readable: a
/// base (epoch-zero) segment is itself a plain `.xtrace` file, so
/// single-file tooling opens the head of any chain.
#[test]
fn read_tiered_trace_round_trips_requests_and_meta() {
    let (requests, events) = small_workload();
    let flat = flat_store(&events);
    let dir = tmpdir("roundtrip");
    let meta = vec![("generator".to_string(), "tests/tiered_store.rs".to_string())];
    xability::store::write_tiered_trace(
        &dir,
        &requests,
        &flat.snapshot(),
        &meta,
        TierConfig {
            spill_threshold: 10,
            codec: Codec::None,
            evict_on_seal: true,
        },
    )
    .expect("write");
    let (replayed, _) = read_tiered_trace(&dir).expect("read");
    assert_eq!(replayed.requests, requests);
    assert_eq!(
        replayed.meta_value("generator"),
        Some("tests/tiered_store.rs")
    );
    assert_eq!(replayed.store.view().to_history(), flat.view().to_history());

    // The head segment doubles as a standalone trace file.
    let head = xability::store::RecordedTrace::read_from_file(dir.join("seg-000000.xtrace"))
        .expect("base segment reads as a plain trace");
    assert_eq!(head.store.len(), 10);
    fs::remove_dir_all(&dir).ok();
}
