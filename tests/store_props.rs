//! Property tests for the trace store: interning is lossless, store-backed
//! views decide exactly like owned histories (batch and incremental), and
//! the binary trace format round-trips bit-for-bit.
//!
//! Shares the event alphabet of `incremental_props.rs` /
//! `checker_agreement.rs`: one idempotent and one undoable action (with
//! cancel/commit), one input, two outputs — the soup that exercises every
//! reduction rule.

use proptest::prelude::*;

use xability::core::xable::{Checker, FastChecker, IncrementalChecker, IncrementalState};
use xability::core::{ActionId, ActionName, Event, History, Request, Value};
use xability::store::{read_trace, write_trace, TraceStore};

fn idem() -> ActionId {
    ActionId::base(ActionName::idempotent("i"))
}

fn undo() -> ActionId {
    ActionId::base(ActionName::undoable("u"))
}

fn arb_event() -> impl Strategy<Value = Event> {
    let i = idem();
    let u = undo();
    let cancel = u.cancel().expect("undoable");
    let commit = u.commit().expect("undoable");
    prop_oneof![
        Just(Event::start(i.clone(), Value::from(1))),
        Just(Event::complete(i.clone(), Value::from(7))),
        Just(Event::complete(i, Value::from(8))),
        Just(Event::start(u.clone(), Value::from(1))),
        Just(Event::complete(u, Value::from(7))),
        Just(Event::start(cancel.clone(), Value::from(1))),
        Just(Event::complete(cancel, Value::Nil)),
        Just(Event::start(commit.clone(), Value::from(1))),
        Just(Event::complete(commit, Value::Nil)),
    ]
}

fn arb_requests() -> impl Strategy<Value = Vec<Request>> {
    let i = Request::new(idem(), Value::from(1));
    let u = Request::new(undo(), Value::from(1));
    prop_oneof![
        Just(vec![]),
        Just(vec![i.clone()]),
        Just(vec![u.clone()]),
        Just(vec![i.clone(), u.clone()]),
        Just(vec![u, i]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Interning is lossless: history → store → view → history is the
    /// identity, event by event.
    #[test]
    fn store_round_trip_is_lossless(
        events in prop::collection::vec(arb_event(), 0..24),
    ) {
        let h = History::from_events(events);
        let store = TraceStore::from_history(&h);
        prop_assert_eq!(store.len(), h.len());
        for i in 0..h.len() {
            prop_assert_eq!(&store.event(i), &h[i], "event {} diverged", i);
        }
        prop_assert_eq!(store.view().to_history(), h);
    }

    /// The fast checker's verdict on a store-backed view equals its
    /// verdict on the owned history — exactly, including reasons.
    #[test]
    fn view_backed_fast_verdict_equals_owned(
        events in prop::collection::vec(arb_event(), 0..12),
        requests in arb_requests(),
    ) {
        let h = History::from_events(events);
        let store = TraceStore::from_history(&h);
        let checker = FastChecker::default();
        let owned = checker.check_requests(&h, &requests);
        let viewed = checker.check_requests_source(&store.view(), &requests);
        prop_assert_eq!(&owned, &viewed, "owned={} viewed={}", &owned, &viewed);
    }

    /// A storage-free `IncrementalState` monitoring a shared store agrees
    /// with the self-contained `IncrementalChecker` at every prefix (the
    /// store-backed monitor is the ledger's production posture).
    #[test]
    fn store_backed_incremental_equals_owned_at_every_prefix(
        events in prop::collection::vec(arb_event(), 0..12),
        requests in arb_requests(),
    ) {
        let mut store = TraceStore::new();
        let mut monitor = IncrementalState::new();
        let mut owned = IncrementalChecker::new();
        for r in &requests {
            monitor.declare_request(r);
            owned.declare_request(r);
        }
        prop_assert_eq!(monitor.verdict_over(&store.view()), owned.verdict());
        for ev in events {
            monitor.observe(&ev);
            store.push(&ev);
            owned.push(ev);
            let store_backed = monitor.verdict_over(&store.view());
            let self_contained = owned.verdict();
            prop_assert_eq!(
                &store_backed, &self_contained,
                "prefix {} diverged: store-backed={} owned={}",
                store.len(), &store_backed, &self_contained
            );
        }
    }

    /// Record → replay → re-check: serializing a trace and reading it
    /// back preserves the requests, the events, and the verdict.
    #[test]
    fn trace_record_replay_recheck_round_trip(
        events in prop::collection::vec(arb_event(), 0..16),
        requests in arb_requests(),
    ) {
        let h = History::from_events(events);
        let store = TraceStore::from_history(&h);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &requests, &store.snapshot()).expect("in-memory write");
        let replayed = read_trace(&mut bytes.as_slice()).expect("well-formed trace");
        prop_assert_eq!(&replayed.requests, &requests);
        prop_assert_eq!(replayed.store.view().to_history(), h);
        let checker = FastChecker::default();
        prop_assert_eq!(
            checker.check_requests_source(&store.view(), &requests),
            checker.check_requests_source(&replayed.store.view(), &replayed.requests)
        );
    }

    /// O(1) view slicing agrees with owned slicing for every bound pair.
    #[test]
    fn view_slices_agree_with_owned_slices(
        events in prop::collection::vec(arb_event(), 0..10),
        a in 0usize..11,
        b in 0usize..11,
    ) {
        let h = History::from_events(events);
        let (start, end) = (a.min(b).min(h.len()), b.max(a).min(h.len()));
        let store = TraceStore::from_history(&h);
        prop_assert_eq!(
            store.view().slice(start, end).to_history(),
            h.slice(start, end)
        );
    }
}
