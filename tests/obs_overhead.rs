//! The observability overhead gate: full instrumentation must cost at
//! most 5 % of throughput on the store-ingest-with-online-monitor axis
//! (the `BENCH_store.json` headline), and a noop registry must be free
//! in the same sense.
//!
//! Wall-clock ratios are machine-dependent, so the comparison is
//! min-of-N (the minimum suppresses scheduler noise that a mean would
//! smear into the ratio) and the gating test is `#[ignore]`d by default:
//! CI runs it explicitly in the release profile ("obs overhead smoke"),
//! where the hot paths are actually optimized. A debug-profile run of
//! the tier-1 suite neither pays for nor flakes on it.

use std::time::{Duration, Instant};

use xability::core::xable::IncrementalState;
use xability::core::{ActionId, History, Value};
use xability::obs::Obs;
use xability::store::TraceStore;
use xability_bench::n_retried_requests;

/// One ingest pass: append every event to the store while the online
/// monitor observes it, then take the verdict. Mirrors
/// `benches/obs.rs::ingest_with_monitor`.
fn ingest_pass(h: &History, ops: &[(ActionId, Value)], obs: Option<&Obs>) -> Duration {
    let mut store = TraceStore::new();
    let mut monitor = IncrementalState::new();
    if let Some(obs) = obs {
        monitor.attach_obs(obs);
    }
    for (a, iv) in ops {
        monitor.declare(a.clone(), iv.clone());
    }
    let start = Instant::now();
    for ev in h.iter() {
        monitor.observe(ev);
        store.push(ev);
    }
    let elapsed = start.elapsed();
    assert!(monitor.verdict_over(&store.view()).is_xable());
    elapsed
}

fn min_of(n: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..n).map(|_| f()).min().expect("n > 0")
}

#[test]
#[ignore = "release-profile CI smoke (obs overhead); run with --ignored"]
fn full_instrumentation_stays_within_five_percent_of_ingest_throughput() {
    const REQUESTS: usize = 200_000; // × 3 events per request
    const ROUNDS: usize = 5;
    let (h, ops) = n_retried_requests(REQUESTS);

    // Interleave the postures round-robin so slow drift (thermal, cache)
    // hits all three equally instead of biasing the later ones.
    let live = Obs::new();
    let noop = Obs::noop();
    let mut off_best = Duration::MAX;
    let mut noop_best = Duration::MAX;
    let mut on_best = Duration::MAX;
    for _ in 0..ROUNDS {
        off_best = off_best.min(ingest_pass(&h, &ops, None));
        noop_best = noop_best.min(ingest_pass(&h, &ops, Some(&noop)));
        on_best = on_best.min(ingest_pass(&h, &ops, Some(&live)));
    }

    let overhead =
        |with: Duration, base: Duration| (with.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
    let on_overhead = overhead(on_best, off_best);
    let noop_overhead = overhead(noop_best, off_best);
    println!(
        "obs overhead: off {:?}, noop {:?} ({noop_overhead:+.2}%), on {:?} ({on_overhead:+.2}%)",
        off_best, noop_best, on_best
    );
    assert!(
        on_overhead <= 5.0,
        "full instrumentation costs {on_overhead:.2}% of ingest throughput (budget: 5%)"
    );
    assert!(
        noop_overhead <= 5.0,
        "a noop registry costs {noop_overhead:.2}% of ingest throughput (budget: 5%)"
    );
}

#[test]
fn instrumented_ingest_smoke() {
    // The non-gating cousin that tier-1 always runs: the instrumented
    // pass works and actually records checker metrics.
    let (h, ops) = n_retried_requests(500);
    let obs = Obs::new();
    let _ = min_of(1, || ingest_pass(&h, &ops, Some(&obs)));
    let snapshot = obs.snapshot();
    assert!(snapshot.counter("checker.verdicts").unwrap_or(0) >= 1);
    assert!(snapshot.counter("checker.refreshes").unwrap_or(0) >= 1);
    assert!(snapshot.histogram("checker.dirty_ops").is_some());
}
