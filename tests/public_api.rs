//! Public-API snapshot: the `pub` surface of `xability-core` and
//! `xability-store` is recorded in `tests/public_api.txt` and diffed
//! here, so API churn is always a deliberate, reviewed change (this
//! PR-visible file must be updated together with the code).
//!
//! To refresh the snapshot after an intentional API change:
//!
//! ```text
//! UPDATE_PUBLIC_API=1 cargo test --test public_api
//! ```
//!
//! The extractor is deliberately simple — first lines of `pub` item
//! declarations at top level or one indentation step (inherent methods),
//! excluding `pub(crate)`/`pub(super)` — which is exactly the granularity
//! at which accidental surface changes happen.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

const SNAPSHOT: &str = "tests/public_api.txt";
/// The snapshotted crates: the theory surface and the store surface.
const CRATE_ROOTS: [&str; 2] = ["crates/core/src", "crates/store/src"];

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).expect("readable source dir");
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extracts the first line of every public item declaration in `source`.
fn public_decls(source: &str) -> Vec<String> {
    let mut decls = Vec::new();
    let mut in_tests = false;
    let mut test_depth = 0usize;
    let mut depth = 0usize;
    for line in source.lines() {
        let trimmed = line.trim_start();
        let indent = line.len() - trimmed.len();
        if !in_tests && trimmed.starts_with("mod tests") {
            in_tests = true;
            test_depth = depth;
        }
        // `pub` but not `pub(crate)` / `pub(super)`, at top level or one
        // step in (inherent methods / associated consts).
        if !in_tests && indent <= 4 && trimmed.starts_with("pub ") {
            let decl = trimmed
                .split_once(" {")
                .map_or(trimmed, |(head, _)| head)
                .trim_end_matches(';')
                .trim_end();
            decls.push(decl.to_owned());
        }
        depth += line.matches('{').count();
        depth = depth.saturating_sub(line.matches('}').count());
        if in_tests && depth <= test_depth && line.contains('}') {
            in_tests = false;
        }
    }
    decls
}

#[test]
fn public_api_matches_snapshot() {
    let mut actual = String::from(
        "# Public API of xability-core and xability-store (first lines of `pub` declarations).\n\
         # Regenerate with: UPDATE_PUBLIC_API=1 cargo test --test public_api\n",
    );
    for root in CRATE_ROOTS {
        let mut files = Vec::new();
        rust_files(Path::new(root), &mut files);
        files.sort();
        for file in &files {
            let source = fs::read_to_string(file).expect("readable source file");
            let rel = file
                .strip_prefix(root)
                .expect("under crate root")
                .display()
                .to_string();
            let decls = public_decls(&source);
            if decls.is_empty() {
                continue;
            }
            writeln!(actual, "\n## {root}/{rel}").expect("infallible");
            for decl in decls {
                writeln!(actual, "{decl}").expect("infallible");
            }
        }
    }

    if std::env::var_os("UPDATE_PUBLIC_API").is_some() {
        fs::write(SNAPSHOT, &actual).expect("write snapshot");
        return;
    }
    let expected = fs::read_to_string(SNAPSHOT).unwrap_or_default();
    if actual != expected {
        // Qualify each line with its `## file` section (and a per-section
        // occurrence count) so duplicate declarations across or within
        // files still produce a meaningful diff.
        fn qualified(snapshot: &str) -> Vec<String> {
            let mut section = String::new();
            let mut out = Vec::new();
            for line in snapshot.lines().filter(|l| !l.is_empty()) {
                if let Some(name) = line.strip_prefix("## ") {
                    section = name.to_owned();
                    continue;
                }
                let qualified = format!("{section}: {line}");
                let dup = out.iter().filter(|l: &&String| **l == qualified).count();
                out.push(if dup == 0 {
                    qualified
                } else {
                    format!("{qualified} (#{})", dup + 1)
                });
            }
            out
        }
        let actual_lines = qualified(&actual);
        let expected_lines = qualified(&expected);
        let mut diff = String::new();
        for line in &actual_lines {
            if !expected_lines.contains(line) {
                writeln!(diff, "+ {line}").expect("infallible");
            }
        }
        for line in &expected_lines {
            if !actual_lines.contains(line) {
                writeln!(diff, "- {line}").expect("infallible");
            }
        }
        if diff.is_empty() {
            // Pure reordering: same line multiset, different order. Show
            // the first position where the two snapshots diverge.
            if let Some((a, e)) = actual_lines
                .iter()
                .zip(&expected_lines)
                .find(|(a, e)| a != e)
            {
                writeln!(diff, "reordered: first divergence\n+ {a}\n- {e}").expect("infallible");
            }
        }
        panic!(
            "the public API of xability-core changed:\n{diff}\n\
             If intentional, update the snapshot:\n  \
             UPDATE_PUBLIC_API=1 cargo test --test public_api"
        );
    }
}
