//! Explorer smoke: a small fixed-budget exploration from a pinned master
//! seed must (a) grow coverage, (b) stay quiet on the sound protocol, and
//! (c) on the deliberately weakened protocol (`Scenario::weaken_retry`)
//! discover the planted violation and shrink it — with zero violations
//! left unshrunk, and the minimal reproducer pinned event-for-event.
//!
//! The CI "explorer smoke" step runs exactly this file.

use xability::core::{ActionId, ActionName, Event, Request, Value};
use xability::harness::{
    dangling_round_violation, Explorer, ExplorerConfig, ReasonClass, Scenario, Scheme, Shrinker,
    ViolationKind, Workload,
};
use xability::sim::SimTime;

const MASTER_SEED: u64 = 0xC0FFEE;

fn sound_base() -> Scenario {
    Scenario::new(Scheme::XAble, Workload::Reservations { count: 2, seats: 1 })
        .horizon(SimTime::from_secs(5))
}

fn weakened_base() -> Scenario {
    sound_base().weaken_retry()
}

#[test]
fn sound_protocol_explores_clean() {
    let report = Explorer::new(ExplorerConfig::new(sound_base(), MASTER_SEED, 120)).run();
    assert_eq!(report.runs, 120);
    assert!(
        report.signatures >= 2,
        "exploration must reach new coverage signatures, got {}",
        report.signatures
    );
    // The coverage curve is monotone and accounts for the final total.
    let last = report.curve.last().expect("curve is recorded");
    assert_eq!(last.signatures, report.signatures);
    assert!(report
        .curve
        .windows(2)
        .all(|w| w[0].signatures <= w[1].signatures));
    assert!(
        report.violations.is_empty(),
        "sound protocol must explore clean: {:?}",
        report.violations
    );
}

#[test]
fn weakened_protocol_violations_all_shrink() {
    let report = Explorer::new(ExplorerConfig::new(weakened_base(), MASTER_SEED, 60)).run();
    assert!(
        !report.violations.is_empty(),
        "the planted weakness must be discovered"
    );
    let shrinker = Shrinker::new(weakened_base());
    for v in report.distinct_violations() {
        // Zero unshrunk violations: every discovery reproduces and shrinks.
        let s = shrinker
            .shrink(v)
            .expect("every found violation must shrink");
        assert_eq!(s.class, v.class);
        assert!(
            s.history.len() <= 20,
            "reproducer must be minimal, got {} events",
            s.history.len()
        );
        // Class preservation: the minimal trace itself still exhibits the
        // violation class under the batch oracle…
        assert_eq!(
            shrinker.history_class(&s.requests, &s.history),
            Some(s.class)
        );
        // …and shrinking is idempotent (1-minimality): re-shrinking the
        // minimum changes nothing.
        let (requests2, history2) = shrinker.shrink_trace(&s.requests, &s.history, s.class);
        assert_eq!(requests2, s.requests);
        assert_eq!(history2, s.history);
    }
}

#[test]
fn planted_violation_shrinks_to_the_pinned_minimal_trace() {
    let report = Explorer::new(ExplorerConfig::new(weakened_base(), MASTER_SEED, 60)).run();
    let distinct = report.distinct_violations();
    assert_eq!(distinct.len(), 1, "one violation class: {distinct:?}");
    let v = distinct[0];
    assert_eq!(v.class.kind, ViolationKind::R3);
    assert_eq!(v.class.reason, ReasonClass::DanglingRound);

    let s = Shrinker::new(weakened_base()).shrink(v).expect("shrinks");
    let reserve = ActionId::base(ActionName::undoable("reserve"));
    let commit = reserve.commit().expect("undoable");
    let round = |r: i64| Value::pair(Value::from("req-0"), Value::from(r));
    // The planted bug in miniature: round 1 starts and is aborted without
    // its cancel (the weakened rule), round 2 retries and commits — the
    // round-1 tentative effect dangles forever.
    let expected = [
        Event::start(reserve.clone(), round(1)),
        Event::start(reserve.clone(), round(2)),
        Event::complete(reserve.clone(), Value::from("held")),
        Event::start(commit, round(2)),
    ];
    assert_eq!(s.history.iter().cloned().collect::<Vec<_>>(), expected);
    assert_eq!(
        s.requests,
        vec![Request::new(reserve, Value::from("req-0"))]
    );
    assert!(dangling_round_violation(&s.requests, &s.history).is_some());
}
