//! The O(dirty) and parallel-determinism contracts of the refactored
//! checker engine.
//!
//! * The dirty-tracked aggregate behind `IncrementalChecker::verdict` must
//!   be *invisible*: a verdict after **every** push equals the batch
//!   `FastChecker` on the same prefix — exactly, including reasons —
//!   on protocol-shaped traces with retried idempotent requests,
//!   round-stamped undoable transactions, injected anomalies, and
//!   undeclared tails (proptest), and on a 10k-event heavy-traffic trace
//!   (deterministic test; the batch oracle is sampled there because
//!   re-checking every prefix from scratch is exactly the O(n²) behaviour
//!   the aggregate removes — per-push verdicts themselves run at every
//!   prefix).
//! * `FastChecker::check_sharded` must return **byte-identical** verdicts
//!   and witnesses for 1, 2, and 8 workers, equal to the sequential
//!   checker, on x-able, not-x-able, and undecidable inputs.

use proptest::prelude::*;

use xability::core::xable::{Checker, FastChecker, IncrementalChecker, Verdict};
use xability::core::{ActionId, ActionName, Event, History, Request, Value};
use xability_bench::{n_requests_with_cancelled_rounds, n_retried_requests};

fn requests_of(ops: &[(ActionId, Value)]) -> Vec<Request> {
    ops.iter()
        .map(|(a, iv)| Request::new(a.clone(), iv.clone()))
        .collect()
}

/// One generated request: an idempotent retry ladder or a round-stamped
/// undoable transaction, with optional injected anomalies.
#[derive(Debug, Clone)]
enum ReqSpec {
    Idem {
        retries: u8,
        /// Emit a second completion with a *different* output (the group
        /// can then neither reduce nor erase).
        disagree: bool,
    },
    Undo {
        cancelled_rounds: u8,
        /// Whether the final round commits (false = abandoned: only the
        /// R3 last-request fallback can accept it).
        commit: bool,
    },
}

fn arb_spec() -> impl Strategy<Value = ReqSpec> {
    prop_oneof![
        (0u8..3).prop_map(|retries| ReqSpec::Idem {
            retries,
            disagree: false
        }),
        (0u8..3).prop_map(|retries| ReqSpec::Idem {
            retries,
            disagree: true
        }),
        (0u8..3).prop_map(|cancelled_rounds| ReqSpec::Undo {
            cancelled_rounds,
            commit: true
        }),
        (0u8..3).prop_map(|cancelled_rounds| ReqSpec::Undo {
            cancelled_rounds,
            commit: false
        }),
    ]
}

fn arb_bool() -> impl Strategy<Value = bool> {
    prop_oneof![Just(false), Just(true)]
}

/// Materializes one request's event block and its declared op.
fn events_for(i: usize, spec: &ReqSpec) -> (Vec<Event>, (ActionId, Value)) {
    let key = Value::from(format!("k{i}"));
    match spec {
        ReqSpec::Idem { retries, disagree } => {
            let a = ActionId::base(ActionName::idempotent("put"));
            let mut events = Vec::new();
            for _ in 0..*retries {
                events.push(Event::start(a.clone(), key.clone()));
            }
            events.push(Event::start(a.clone(), key.clone()));
            events.push(Event::complete(a.clone(), Value::from(i as i64)));
            if *disagree {
                events.push(Event::start(a.clone(), key.clone()));
                events.push(Event::complete(a.clone(), Value::from(i as i64 + 1)));
            }
            (events, (a, key))
        }
        ReqSpec::Undo {
            cancelled_rounds,
            commit,
        } => {
            let base = ActionName::undoable("xfer");
            let a = ActionId::base(base.clone());
            let cancel = ActionId::Cancel(base.clone());
            let commit_a = ActionId::Commit(base);
            let mut events = Vec::new();
            for r in 0..*cancelled_rounds {
                let iv = Value::pair(key.clone(), Value::from(r as i64));
                events.push(Event::start(a.clone(), iv.clone()));
                events.push(Event::start(cancel.clone(), iv.clone()));
                events.push(Event::complete(cancel.clone(), Value::Nil));
            }
            let iv = Value::pair(key.clone(), Value::from(*cancelled_rounds as i64));
            events.push(Event::start(a.clone(), iv.clone()));
            if *commit {
                events.push(Event::complete(a.clone(), Value::from("ok")));
                events.push(Event::start(commit_a.clone(), iv.clone()));
                events.push(Event::complete(commit_a.clone(), Value::Nil));
            }
            (events, (a, key))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// THE O(dirty) soundness contract: the aggregate-maintained verdict
    /// after every single push equals the batch fast checker on that
    /// prefix — exactly, including reasons — over protocol-shaped traces
    /// with round-stamped rounds, anomalies, undeclared tails, and a
    /// trailing duplicate of the first request.
    #[test]
    fn dirty_tracked_verdict_equals_batch_after_every_push(
        specs in prop::collection::vec(arb_spec(), 1..6),
        junk_tail in arb_bool(),
        trailing_duplicate in arb_bool(),
    ) {
        let mut events: Vec<Event> = Vec::new();
        let mut ops: Vec<(ActionId, Value)> = Vec::new();
        let mut first_block: Vec<Event> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let (block, op) = events_for(i, spec);
            if i == 0 {
                first_block = block.clone();
            }
            events.extend(block);
            ops.push(op);
        }
        if junk_tail {
            // An undeclared group: erases only if it never completed.
            let junk = ActionId::base(ActionName::idempotent("junk"));
            events.push(Event::start(junk.clone(), Value::from(0)));
            events.push(Event::complete(junk, Value::from(0)));
        }
        if trailing_duplicate {
            events.extend(first_block);
        }
        let requests = requests_of(&ops);
        let batch = FastChecker::default();
        let mut inc = IncrementalChecker::new();
        for r in &requests {
            inc.declare_request(r);
        }
        let mut prefix = History::empty();
        prop_assert_eq!(inc.verdict(), batch.check_requests(&prefix, &requests));
        for ev in events {
            inc.push(ev.clone());
            prefix.push(ev);
            let online = inc.verdict();
            let offline = batch.check_requests(&prefix, &requests);
            prop_assert_eq!(
                &online, &offline,
                "prefix of {} events diverged: online={} offline={}",
                prefix.len(), &online, &offline
            );
        }
    }

    /// The sharded batch check is byte-identical to the sequential one
    /// for every worker count, on random protocol-shaped traces.
    #[test]
    fn sharded_equals_sequential_on_random_traces(
        specs in prop::collection::vec(arb_spec(), 1..6),
    ) {
        let mut events: Vec<Event> = Vec::new();
        let mut ops: Vec<(ActionId, Value)> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let (block, op) = events_for(i, spec);
            events.extend(block);
            ops.push(op);
        }
        let h = History::from_events(events);
        let requests = requests_of(&ops);
        let checker = FastChecker::default();
        let sequential = checker.check_requests(&h, &requests);
        for workers in [1usize, 2, 8] {
            prop_assert_eq!(
                &checker.check_requests_sharded(&h, &requests, workers),
                &sequential,
                "workers={}", workers
            );
        }
    }
}

/// A 10k-event heavy-traffic trace with a verdict read after **every**
/// push. This is the workload BENCH_checker.json measures: were the
/// verdict still O(#groups), this single test would perform ~16M group
/// re-decisions (3,334 groups × 10k verdicts) and crawl; with the dirty
/// aggregate it re-decides only the touched group per push. The batch
/// oracle is asserted at 64 evenly spaced checkpoints and at every one of
/// the last 32 prefixes (batch itself is O(prefix), so a full per-prefix
/// sweep would reintroduce the very O(n²) the aggregate removes).
#[test]
fn ten_thousand_event_trace_verdict_after_every_push() {
    const EVENTS: usize = 10_002; // 3,334 requests × 3 events
    let (h, ops) = n_retried_requests(EVENTS / 3);
    let requests = requests_of(&ops);
    let batch = FastChecker::default();
    let checkpoint_stride = h.len() / 64;
    let mut inc = IncrementalChecker::new();
    for (a, iv) in &ops {
        inc.declare(a.clone(), iv.clone());
    }
    let mut xable_count = 0usize;
    for (k, ev) in h.iter().enumerate() {
        inc.push(ev.clone());
        let online = inc.verdict();
        if online.is_xable() {
            xable_count += 1;
        }
        let end = k + 1;
        if end % checkpoint_stride == 0 || end + 32 >= h.len() {
            let offline = batch.check_requests_source(&h.window(0, end), &requests);
            assert_eq!(online, offline, "prefix of {end} events diverged");
        }
    }
    // Mid-run prefixes are rejected (an unexecuted *middle* request is
    // never excusable, and a bare start of the in-flight last request
    // does not erase — no rule removes it); only two prefixes are
    // x-able: the one where every request but the declared-but-unstarted
    // last is complete (the R3 fallback excuses the last entirely), and
    // the complete trace.
    assert_eq!(xable_count, 2, "exactly the quiescent prefixes are x-able");
    assert!(inc.verdict().is_xable());
}

/// `check_sharded` with 1, 2, and 8 workers returns byte-identical
/// verdicts and witnesses (asserted via full `Verdict` equality, which
/// compares outputs, witnesses, and reason strings) on x-able,
/// not-x-able, and undecidable traces — the determinism half of the
/// sharding contract.
#[test]
fn sharded_verdicts_are_byte_identical_across_worker_counts() {
    let checker = FastChecker::default();

    // X-able: cancelled-round transactions (stamped groups, erase + exec
    // searches on the worker threads).
    let (h, ops) = n_requests_with_cancelled_rounds(24);
    let requests = requests_of(&ops);
    let sequential = checker.check_requests(&h, &requests);
    assert!(sequential.is_xable(), "{sequential}");

    // Not-x-able: a disagreeing duplicate completion.
    let a = ActionId::base(ActionName::idempotent("put"));
    let bad: History = [
        Event::start(a.clone(), Value::from(1)),
        Event::complete(a.clone(), Value::from(5)),
        Event::start(a.clone(), Value::from(1)),
        Event::complete(a.clone(), Value::from(6)),
    ]
    .into_iter()
    .collect();
    let bad_ops = [(a.clone(), Value::from(1))];
    let bad_sequential = checker.check(&bad, &bad_ops, &[]);
    assert!(bad_sequential.is_not_xable(), "{bad_sequential}");

    // Undecidable: ambiguous completion attribution.
    let fog: History = [
        Event::start(a.clone(), Value::from(1)),
        Event::start(a.clone(), Value::from(2)),
        Event::complete(a.clone(), Value::from(7)),
        Event::complete(a.clone(), Value::from(7)),
    ]
    .into_iter()
    .collect();
    let fog_ops = [(a.clone(), Value::from(1)), (a, Value::from(2))];
    let fog_sequential = checker.check(&fog, &fog_ops, &[]);
    assert!(
        matches!(fog_sequential, Verdict::Unknown { .. }),
        "{fog_sequential}"
    );

    for workers in [1usize, 2, 8] {
        assert_eq!(
            checker.check_requests_sharded(&h, &requests, workers),
            sequential,
            "x-able trace, workers={workers}"
        );
        assert_eq!(
            checker.check_sharded(&bad, &bad_ops, &[], workers),
            bad_sequential,
            "not-x-able trace, workers={workers}"
        );
        assert_eq!(
            checker.check_sharded(&fog, &fog_ops, &[], workers),
            fog_sequential,
            "undecidable trace, workers={workers}"
        );
    }
}
