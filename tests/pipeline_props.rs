//! Property tests for the pipelined online monitor (DESIGN.md §12) and
//! the batch-amortized observe path.
//!
//! THE pipelined contract: at every published window boundary — and at
//! any prefix in between — [`PipelinedMonitor::verdict_over`] is
//! **byte-identical** (verdict *and* reason strings) to the sequential
//! [`IncrementalState`] over the same stream, for every worker count and
//! window size, including windows that close mid-request. And the batch
//! ingest contract: `observe_batch` over any chunking of a stream leaves
//! the state verdict-equivalent to per-event `observe`, anomalies
//! (orphan completions, undeclared groups, cancelled rounds) included.

use proptest::prelude::*;

use xability::core::xable::{IncrementalState, SearchBudget, Verdict};
use xability::core::{ActionId, ActionName, Event, Request, Value};
use xability::services::pipeline::PipelinedMonitor;
use xability::store::TraceStore;

fn idem() -> ActionId {
    ActionId::base(ActionName::idempotent("i"))
}

fn undo() -> ActionId {
    ActionId::base(ActionName::undoable("u"))
}

/// Protocol-shaped event alphabet with anomalies: retries, two distinct
/// outputs (ambiguity), an undoable action with cancel/commit rounds,
/// and orphan completions arise naturally from random sequences.
fn arb_event() -> impl Strategy<Value = Event> {
    let i = idem();
    let u = undo();
    let cancel = u.cancel().expect("undoable");
    let commit = u.commit().expect("undoable");
    prop_oneof![
        Just(Event::start(i.clone(), Value::from(1))),
        Just(Event::complete(i.clone(), Value::from(7))),
        Just(Event::complete(i, Value::from(8))),
        Just(Event::start(u.clone(), Value::from(1))),
        Just(Event::complete(u, Value::from(7))),
        Just(Event::start(cancel.clone(), Value::from(1))),
        Just(Event::complete(cancel, Value::Nil)),
        Just(Event::start(commit.clone(), Value::from(1))),
        Just(Event::complete(commit, Value::Nil)),
    ]
}

fn arb_requests() -> impl Strategy<Value = Vec<Request>> {
    let i = Request::new(idem(), Value::from(1));
    let u = Request::new(undo(), Value::from(1));
    prop_oneof![
        Just(vec![]),
        Just(vec![i.clone()]),
        Just(vec![u.clone()]),
        Just(vec![i.clone(), u.clone()]),
        Just(vec![u, i]),
    ]
}

/// Drives a sequential monitor and a pipelined one over the same stream
/// in the same chunks, asserting byte-identical verdicts at every
/// checkpoint.
fn assert_pipeline_equal(
    events: &[Event],
    requests: &[Request],
    workers: usize,
    window: usize,
    chunk: usize,
) -> Result<(), TestCaseError> {
    let mut seq_store = TraceStore::new();
    let mut seq = IncrementalState::new();
    let mut pipe_store = TraceStore::new();
    let mut pipe = PipelinedMonitor::with_config(workers, window, SearchBudget::small());
    for r in requests {
        seq.declare_request(r);
        pipe.declare_request(r);
    }
    let chunk = chunk.max(1);
    for batch in events.chunks(chunk) {
        seq.observe_batch(batch);
        seq_store.push_batch(batch);
        pipe.observe_batch(batch);
        pipe_store.push_batch(batch);
        pipe.publish(&pipe_store);
        let sequential = seq.verdict_over(&seq_store.view());
        let pipelined = pipe.verdict_over(&pipe_store);
        prop_assert_eq!(
            &pipelined,
            &sequential,
            "diverged at prefix {} (workers={}, window={}): pipelined={} sequential={}",
            seq.consumed(),
            workers,
            window,
            &pipelined,
            &sequential
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pipelined verdicts are byte-identical to the sequential monitor at
    /// every checkpoint, across worker counts and window sizes — window
    /// sizes below the chunk size close windows mid-request.
    #[test]
    fn pipelined_equals_sequential_at_every_checkpoint(
        events in prop::collection::vec(arb_event(), 0..40),
        requests in arb_requests(),
        workers in prop_oneof![Just(1usize), Just(2), Just(4)],
        window in prop_oneof![Just(1usize), Just(3), Just(7), Just(16)],
        chunk in 1usize..9,
    ) {
        assert_pipeline_equal(&events, &requests, workers, window, chunk)?;
    }

    /// The ledger's pipelined monitor mode agrees with its sequential
    /// mode: same records, same declares, byte-identical verdicts.
    #[test]
    fn ledger_pipelined_mode_equals_sequential_mode(
        events in prop::collection::vec(arb_event(), 0..30),
        requests in arb_requests(),
        chunk in 1usize..7,
    ) {
        use xability::services::Ledger;
        use xability::sim::SimTime;

        let mut seq = Ledger::new();
        let mut pipe = Ledger::without_monitor();
        pipe.attach_pipelined_monitor_with(2, 5, SearchBudget::small())
            .expect("no monitor attached yet");
        seq.declare_requests(&requests);
        pipe.declare_requests(&requests);
        for batch in events.chunks(chunk.max(1)) {
            seq.record_batch(batch, SimTime::ZERO, "svc");
            pipe.record_batch(batch, SimTime::ZERO, "svc");
        }
        let sequential = seq.monitor_verdict().expect("sequential monitor attached");
        let pipelined = pipe.monitor_verdict().expect("pipelined monitor attached");
        prop_assert_eq!(pipelined, sequential);
    }

    /// `observe_batch` over any chunking equals per-event `observe`:
    /// byte-identical verdicts at every chunk boundary.
    #[test]
    fn observe_batch_equals_observe_at_every_chunk(
        events in prop::collection::vec(arb_event(), 0..40),
        requests in arb_requests(),
        chunk in 1usize..11,
    ) {
        let mut store = TraceStore::new();
        let mut batched = IncrementalState::new();
        let mut per_event = IncrementalState::new();
        for r in &requests {
            batched.declare_request(r);
            per_event.declare_request(r);
        }
        for batch in events.chunks(chunk) {
            batched.observe_batch(batch);
            for ev in batch {
                per_event.observe(ev);
            }
            store.push_batch(batch);
            let b: Verdict = batched.verdict_over(&store.view());
            let p: Verdict = per_event.verdict_over(&store.view());
            prop_assert_eq!(
                &b, &p,
                "batched and per-event verdicts diverged at prefix {}",
                store.len()
            );
        }
    }

    /// Requests declared *between* batches (mid-stream, as the protocol
    /// submits them) keep the batched path equivalent to per-event too.
    #[test]
    fn observe_batch_with_interleaved_declares(
        events in prop::collection::vec(arb_event(), 0..30),
        split in 0usize..31,
        chunk in 1usize..7,
    ) {
        let requests = [
            Request::new(idem(), Value::from(1)),
            Request::new(undo(), Value::from(1)),
        ];
        let mut store = TraceStore::new();
        let mut batched = IncrementalState::new();
        let mut per_event = IncrementalState::new();
        batched.declare_request(&requests[0]);
        per_event.declare_request(&requests[0]);
        let mut declared_late = false;
        for batch in events.chunks(chunk) {
            if !declared_late && store.len() >= split {
                batched.declare_request(&requests[1]);
                per_event.declare_request(&requests[1]);
                declared_late = true;
            }
            batched.observe_batch(batch);
            for ev in batch {
                per_event.observe(ev);
            }
            store.push_batch(batch);
        }
        if !declared_late {
            batched.declare_request(&requests[1]);
            per_event.declare_request(&requests[1]);
        }
        let b = batched.verdict_over(&store.view());
        let p = per_event.verdict_over(&store.view());
        prop_assert_eq!(b, p);
    }
}
