//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The vendored `serde` stand-in gives both traits blanket impls, so the
//! derives have nothing to generate — they exist only so `#[derive(...)]`
//! lists naming them keep compiling. See `vendor/README.md`.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing: `Serialize` is blanket-implemented by the stand-in.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing: `Deserialize` is blanket-implemented by the stand-in.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
