//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the (small) slice of the `rand` 0.9 API the
//! workspace actually uses, with the same names and calling conventions:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`] — splitmix64 seed expansion,
//! * [`RngExt::random_range`] / [`RngExt::random_bool`] — uniform sampling.
//!
//! Determinism is the only hard requirement: the simulator replays
//! adversarial schedules from a seed, so `StdRng::seed_from_u64(s)` must
//! produce the same stream on every platform. This implementation is pure
//! integer arithmetic and has no platform-dependent behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A random number generator producing 64-bit output.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be constructed from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    ///
    /// Unlike upstream `rand`, the algorithm here is fixed forever: seeds
    /// are part of test vectors and experiment configs, so the stream must
    /// never change between versions.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the 64-bit seed with splitmix64, as recommended by the
            // xoshiro authors, so that near-identical seeds diverge.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// A range of values that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (sample_below(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64; // span == u64::MAX handled below
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $ty);
                }
                lo + (sample_below(rng, span + 1) as $ty)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $uty as u64;
                self.start.wrapping_add(sample_below(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $uty as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $ty);
                }
                lo.wrapping_add(sample_below(rng, span + 1) as $ty)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Uniform value in `[0, bound)` via Lemire's widening-multiply method
/// (debiased with a rejection loop).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (bound.wrapping_neg() % bound) {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
///
/// (Upstream `rand` calls this trait `Rng`; the workspace imports it as
/// `RngExt`, so that is the canonical name here.)
pub trait RngExt: RngCore {
    /// Draws one value uniformly from `range`. Panics on empty ranges.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 high-quality mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..=u64::MAX - 1),
                b.random_range(0u64..=u64::MAX - 1)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
