//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! criterion API surface the `xability-bench` targets use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`] — backed by a simple mean-of-N wall-clock timer instead
//! of criterion's statistical machinery.
//!
//! Behaviour notes, matching upstream where it matters:
//!
//! * `cargo bench` runs each registered benchmark and prints one line with
//!   the mean iteration time;
//! * `cargo test` (which runs `harness = false` bench binaries with
//!   `--test`) executes every benchmark body exactly once, so benches are
//!   smoke-tested — their internal `assert!`s run — without burning time;
//! * there are no plots, no saved baselines, no outlier analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, but still widely imported).
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How a benchmark run executes its bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Normal `cargo bench`: measure and report.
    Measure,
    /// `cargo test` smoke mode (`--test` flag): run each body once.
    Test,
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if test_mode { Mode::Test } else { Mode::Measure },
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = id.render(None);
        run_one(self.mode, self.default_sample_size, &label, |b| f(b));
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = id.render(Some(&self.name));
        run_one(self.criterion.mode, self.sample_size, &label, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing it `input` (upstream signature).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.render(Some(&self.name));
        run_one(self.criterion.mode, self.sample_size, &label, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark: an optional function name plus an optional
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter (`"concat"/512`).
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: Option<&str>) -> String {
        let mut parts = Vec::new();
        if let Some(g) = group {
            parts.push(g.to_string());
        }
        if let Some(f) = &self.function {
            parts.push(f.clone());
        }
        if let Some(p) = &self.parameter {
            parts.push(p.clone());
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function: Some(function),
            parameter: None,
        }
    }
}

/// Times closures handed to it by benchmark bodies.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(mode: Mode, sample_size: usize, label: &str, mut f: F) {
    let iters = match mode {
        Mode::Test => 1,
        Mode::Measure => sample_size as u64,
    };
    if mode == Mode::Measure {
        // One untimed warmup batch so cold caches don't pollute the mean.
        let mut warmup = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warmup);
    }
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    match mode {
        Mode::Test => println!("bench {label}: ok (smoke)"),
        Mode::Measure => {
            let mean = bencher.elapsed.as_secs_f64() / iters.max(1) as f64;
            println!(
                "bench {label}: mean {:>12.3} µs over {iters} iters",
                mean * 1e6
            );
        }
    }
}

/// Bundles benchmark functions into one runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
