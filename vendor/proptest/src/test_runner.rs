//! Test configuration and the deterministic RNG behind every strategy.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases [`proptest!`](crate::proptest) runs per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property (upstream default: 256).
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies. Seeded from the test name and case index,
/// so every run (and every platform) generates the identical case sequence.
#[derive(Debug)]
pub struct TestRng {
    /// The underlying generator; strategies sample through it.
    pub rng: StdRng,
}

impl TestRng {
    /// Deterministic RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case)),
        }
    }
}
