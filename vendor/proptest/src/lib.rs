//! Offline mini-proptest.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use, source-compatible with upstream:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * [`prop_oneof!`], [`Just`], integer-range strategies,
//!   [`collection::vec`], and [`Strategy::prop_map`].
//!
//! Differences from upstream: generation is purely random from a fixed
//! per-test seed (deterministic across runs and platforms), and there is
//! **no shrinking** — a failing case reports the case number and the
//! assertion message. For the deterministic-simulation tests in this
//! workspace the inputs are seeds and small index vectors, so minimal
//! counterexamples matter less than replayability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestRng};

/// Why a single generated test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*` upstream.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// generated case (not the whole process) with an optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
///
/// Accepts an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {case}/{} of `{}` failed: {err}",
                            config.cases,
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}
