//! Value-generation strategies: the [`Strategy`] trait and combinators.

use core::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking machinery:
/// a strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among several strategies of the same value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> core::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng.random_range(0..self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
