//! Collection strategies (`prop::collection::vec`).

use core::ops::Range;

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.rng.random_range(self.size.clone())
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
