//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its message and
//! config types to declare them wire-ready, but nothing in-tree serializes
//! yet (there is no `serde_json` and no network transport — the simulator
//! passes messages by value). Since the build environment cannot reach
//! crates.io, this crate keeps those derives compiling with zero behaviour:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits with blanket impls,
//! * the derive macros (from `serde_derive`) expand to nothing.
//!
//! When a real transport lands, replace this vendored crate with the real
//! `serde` in `[workspace.dependencies]` — call sites will not change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker for types declared serializable. Blanket-implemented: every type
/// qualifies until a real serializer exists to say otherwise.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types declared deserializable. Blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring serde's real trait hierarchy.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
