//! Undoable actions under fire: bank transfers (escrow + commit/cancel)
//! with a crashing primary and a flaky bank, versus the primary-backup
//! baseline under the same adversary.
//!
//! ```text
//! cargo run --example bank_transfer
//! ```

use xability::harness::{Scenario, Scheme, Workload};
use xability::services::FailurePlan;
use xability::sim::SimTime;

fn run(scheme: Scheme, label: &str) {
    let report = Scenario::new(
        scheme,
        Workload::BankTransfers {
            count: 3,
            amount: 100,
        },
    )
    .seed(7)
    .crash(0, SimTime::from_millis(6))
    .service_failures(FailurePlan::probabilistic(0.2))
    .run();

    println!("-- {label} --");
    println!(
        "  completed {}/{} transfers, mean latency {} ms",
        report.completed_requests,
        report.total_requests,
        report.mean_latency_micros() / 1000
    );
    if scheme == Scheme::XAble {
        println!(
            "  rounds {}, executions {}, cancellations {}, commits {}",
            report.replica_metrics.rounds_owned,
            report.replica_metrics.executions,
            report.replica_metrics.cancels,
            report.replica_metrics.commits
        );
    }
    if report.exactly_once_violations.is_empty() {
        println!("  exactly-once: every transfer committed exactly once");
    } else {
        println!("  exactly-once VIOLATED:");
        for v in &report.exactly_once_violations {
            println!("    - {v}");
        }
    }
    println!(
        "  history x-able: {}",
        match &report.r3_violation {
            None => "yes".to_owned(),
            Some(v) => format!("no — {v}"),
        }
    );
    println!();
}

fn main() {
    println!("== bank transfers: crash + flaky service ==\n");
    println!("replica 0 crashes at 6ms; every bank invocation fails with prob 0.2;");
    println!("transfers are undoable actions (escrow hold, then commit or cancel).\n");
    run(Scheme::XAble, "x-able replication (the paper's protocol)");
    run(Scheme::PrimaryBackup, "primary-backup baseline");
    println!("The x-able protocol coordinates cancel/commit through consensus, so");
    println!("every hold is either reverted or committed exactly once. Primary-backup");
    println!("re-executes after failover in a fresh transaction — when the crash");
    println!("lands between commit and reply, money moves twice.");
}
