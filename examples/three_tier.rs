//! Composition (§4, footnote 1): a replicated application tier invoking a
//! replicated back-end tier, with crashes in both tiers.
//!
//! The app tier treats "call the back-end service" as an ordinary
//! idempotent action — justified by the back-end's own x-ability (its
//! `submit` is idempotent, R1, and eventually succeeds, R2). Both tiers'
//! histories are then independently x-able: correctness composes.
//!
//! ```text
//! cargo run --example three_tier
//! ```

use xability::harness::three_tier::ThreeTier;
use xability::sim::SimTime;

fn main() {
    println!("== three-tier composition ==\n");
    println!("client → app tier (3 x-able replicas) → back-end tier (3 x-able replicas) → bank");
    println!("crashes: app replica 0 at 5ms, back-end replica 0 at 30ms\n");

    let report = ThreeTier::new(3)
        .seed(2026)
        .crash(0, 0, SimTime::from_millis(5))
        .crash(1, 0, SimTime::from_millis(30))
        .run();

    println!(
        "completed {}/{} end-to-end transfers in {} simulated ms",
        report.completed,
        report.total,
        report.end_time.as_millis()
    );
    println!(
        "app-tier history    : {} events — x-able: {}",
        report.app_history_len,
        report.app_r3.is_none()
    );
    println!(
        "back-end history    : {} events — x-able: {}",
        report.backend_history_len,
        report.backend_r3.is_none()
    );
    println!(
        "bank exactly-once   : {}",
        if report.exactly_once_violations.is_empty() {
            "every transfer committed exactly once".to_owned()
        } else {
            format!("VIOLATED {:?}", report.exactly_once_violations)
        }
    );
    assert!(report.is_correct());
    println!("\nOK — x-ability composed across tiers: each tier was verified locally,");
    println!("treating the tier below as a single idempotent action.");
}
