//! Quickstart: replicate a key-value store across three replicas, submit a
//! few requests through the client stub, crash a replica mid-run, and watch
//! the service stay exactly-once.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xability::harness::{Scenario, Scheme, Workload};
use xability::sim::SimTime;

fn main() {
    println!("== x-ability quickstart ==\n");
    println!("3 replicas run the paper's replication protocol; the client submits");
    println!("5 idempotent KV puts; replica 0 crashes 5ms in.\n");

    let report = Scenario::new(Scheme::XAble, Workload::KvPuts { count: 5 })
        .seed(42)
        .crash(0, SimTime::from_millis(5))
        .run();

    println!(
        "client completed {}/{} requests in {} simulated ms",
        report.completed_requests,
        report.total_requests,
        report.end_time.as_millis()
    );
    println!(
        "submit invocations: {} ({} returned failure and were retried)",
        report.client.submissions, report.client.failures
    );
    println!(
        "mean request latency: {} ms",
        report.mean_latency_micros() / 1000
    );
    println!(
        "replica work: {} rounds owned, {} executions, {} cleanings",
        report.replica_metrics.rounds_owned,
        report.replica_metrics.executions,
        report.replica_metrics.cleanings
    );
    println!("\ncorrectness:");
    println!(
        "  exactly-once violations : {}",
        if report.exactly_once_violations.is_empty() {
            "none".to_owned()
        } else {
            format!("{:?}", report.exactly_once_violations)
        }
    );
    println!(
        "  R3 (history x-able)     : {}",
        match &report.r3_violation {
            None => "holds".to_owned(),
            Some(v) => format!("VIOLATED: {v}"),
        }
    );
    println!(
        "  R4 (possible replies)   : {}",
        if report.r4_ok { "holds" } else { "VIOLATED" }
    );
    println!(
        "\nobserved formal history: {} events, all reducible to failure-free executions",
        report.history_len
    );
    assert!(report.is_correct());
    println!("\nOK — replication was transparent: the crash is invisible in the history.");
}
