//! The asynchronous spectrum (§5.1): sweep the false-suspicion pressure and
//! watch the protocol slide from primary-backup behaviour (one replica does
//! everything) toward active replication (several replicas execute
//! concurrently) — while staying exactly-once throughout.
//!
//! ```text
//! cargo run --release --example protocol_spectrum
//! ```

use xability::harness::{Scenario, Scheme, Workload};
use xability::sim::{LatencyModel, SimTime};

fn main() {
    println!("== the primary-backup ↔ active-replication spectrum ==\n");
    println!("pre-GST latency spikes cause false suspicions; GST = 700ms;");
    println!("2 bank transfers per run, averaged over 10 seeds\n");
    println!(
        "{:>10} {:>9} {:>11} {:>9} {:>10} {:>12} {:>9}",
        "spike", "rounds", "executions", "cancels", "cleanings", "latency(ms)", "correct"
    );

    for spike in [0.0f64, 0.05, 0.15, 0.30, 0.50] {
        let seeds = 10u64;
        let mut rounds = 0u64;
        let mut executions = 0u64;
        let mut cancels = 0u64;
        let mut cleanings = 0u64;
        let mut latency = 0u64;
        let mut correct = 0u64;
        for seed in 0..seeds {
            let report = Scenario::new(
                Scheme::XAble,
                Workload::BankTransfers {
                    count: 2,
                    amount: 10,
                },
            )
            .seed(seed)
            .latency(LatencyModel::partially_synchronous(
                spike,
                SimTime::from_millis(700),
            ))
            .run();
            rounds += report.replica_metrics.rounds_owned;
            executions += report.replica_metrics.executions;
            cancels += report.replica_metrics.cancels;
            cleanings += report.replica_metrics.cleanings;
            latency += report.mean_latency_micros() / 1000;
            if report.is_correct() {
                correct += 1;
            }
        }
        let per_req = |x: u64| x as f64 / (2.0 * seeds as f64);
        println!(
            "{:>10.2} {:>9.2} {:>11.2} {:>9.2} {:>10.2} {:>12} {:>8}/10",
            spike,
            per_req(rounds),
            per_req(executions),
            per_req(cancels),
            per_req(cleanings),
            latency / seeds,
            correct
        );
    }

    println!("\nWith no spikes the protocol is primary-backup-like: exactly one round");
    println!("and one execution per request. As false suspicions rise, cleaners start");
    println!("extra rounds — several replicas execute concurrently, like active");
    println!("replication — yet every run stays exactly-once: the consensus objects");
    println!("arbitrate which round's effect survives.");
}
