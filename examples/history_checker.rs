//! Using the theory directly: build event histories by hand, reduce them
//! under the rules of Fig. 4, and decide x-ability with the tiered
//! checker — then watch the online incremental checker track a history
//! event by event.
//!
//! ```text
//! cargo run --example history_checker
//! ```

use xability::core::reduce;
use xability::core::signature::signatures;
use xability::core::xable::{Checker, IncrementalChecker, SearchBudget, TieredChecker};
use xability::core::{ActionId, ActionName, Event, History, Value};

fn show(h: &History, ops: &[(ActionId, Value)], label: &str) {
    let verdict = TieredChecker::default().check(h, ops, &[]);
    println!("-- {label}");
    println!("   history : {h}");
    println!("   verdict : {verdict}");
    let steps = reduce::reduction_steps(h);
    if let Some(step) = steps.first() {
        println!("   a first reduction step ({}): {}", step.rule, step.result);
    }
    for sig in signatures(h, SearchBudget::default()) {
        println!(
            "   signature: ({}, {}, {})",
            sig.action, sig.input, sig.output
        );
    }
    println!();
}

fn main() {
    println!("== the x-ability checker on hand-built histories ==\n");

    // 1. A retried idempotent action.
    let get = ActionId::base(ActionName::idempotent("get"));
    let h: History = [
        Event::start(get.clone(), Value::from(1)),
        Event::start(get.clone(), Value::from(1)),
        Event::complete(get.clone(), Value::from(42)),
    ]
    .into_iter()
    .collect();
    show(
        &h,
        &[(get.clone(), Value::from(1))],
        "retried idempotent action (failed attempt, then success)",
    );

    // 2. Two completions that disagree: irreducible — the reason
    //    result agreement exists.
    let h: History = [
        Event::start(get.clone(), Value::from(1)),
        Event::complete(get.clone(), Value::from(42)),
        Event::start(get.clone(), Value::from(1)),
        Event::complete(get.clone(), Value::from(43)),
    ]
    .into_iter()
    .collect();
    show(
        &h,
        &[(get.clone(), Value::from(1))],
        "disagreeing duplicate outputs (NOT x-able — rule 18 needs equal outputs)",
    );

    // 3. An undoable action: cancelled round then committed retry.
    let xfer = ActionId::base(ActionName::undoable("transfer"));
    let cancel = xfer.cancel().expect("undoable");
    let commit = xfer.commit().expect("undoable");
    let h: History = [
        Event::start(xfer.clone(), Value::from(9)), // attempt 1 (failed)
        Event::start(cancel.clone(), Value::from(9)), // cancelled
        Event::complete(cancel.clone(), Value::Nil),
        Event::start(xfer.clone(), Value::from(9)), // attempt 2
        Event::complete(xfer.clone(), Value::from("ok")),
        Event::start(commit.clone(), Value::from(9)), // committed
        Event::complete(commit.clone(), Value::Nil),
    ]
    .into_iter()
    .collect();
    show(
        &h,
        &[(xfer.clone(), Value::from(9))],
        "undoable action: cancelled attempt erased by rule 19, then exactly-once commit",
    );

    // 4. Commit without execution order problems: cancel AFTER commit is
    //    stuck — the theory rejects protocols that cancel committed work.
    let h: History = [
        Event::start(xfer.clone(), Value::from(9)),
        Event::complete(xfer.clone(), Value::from("ok")),
        Event::start(commit.clone(), Value::from(9)),
        Event::complete(commit.clone(), Value::Nil),
        Event::start(cancel.clone(), Value::from(9)),
        Event::complete(cancel.clone(), Value::Nil),
    ]
    .into_iter()
    .collect();
    show(
        &h,
        &[(xfer, Value::from(9))],
        "cancel after commit (NOT x-able — rule 19 blocked by the interleaved commit)",
    );

    // 5. The online checker: the same retried execution, verified while
    //    it "happens". push() is amortized O(1); a verdict is available at
    //    every prefix.
    println!("== the incremental checker, event by event ==\n");
    let mut online = IncrementalChecker::new();
    online.declare(get.clone(), Value::from(1));
    let events = [
        Event::start(get.clone(), Value::from(1)),
        Event::start(get.clone(), Value::from(1)),
        Event::complete(get, Value::from(42)),
    ];
    println!("   (declared request: (getⁱ, 1); verdict uses the R3 reading)");
    for ev in events {
        online.push(ev.clone());
        println!("   after {ev}: {}", online.verdict());
    }
}
