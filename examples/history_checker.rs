//! Using the theory directly: build event histories by hand, reduce them
//! under the rules of Fig. 4, and decide x-ability.
//!
//! ```text
//! cargo run --example history_checker
//! ```

use xability::core::reduce;
use xability::core::signature::signatures;
use xability::core::xable::{self, SearchBudget};
use xability::core::{ActionId, ActionName, Event, History, Value};

fn show(h: &History, ops: &[(ActionId, Value)], label: &str) {
    let verdict = xable::is_xable_search(h, ops, SearchBudget::default());
    println!("-- {label}");
    println!("   history : {h}");
    println!(
        "   verdict : {}",
        if verdict.is_reached() { "x-able" } else { "NOT x-able" }
    );
    let steps = reduce::reduction_steps(h);
    if let Some(step) = steps.first() {
        println!("   a first reduction step ({}): {}", step.rule, step.result);
    }
    for sig in signatures(h, SearchBudget::default()) {
        println!(
            "   signature: ({}, {}, {})",
            sig.action, sig.input, sig.output
        );
    }
    println!();
}

fn main() {
    println!("== the x-ability checker on hand-built histories ==\n");

    // 1. A retried idempotent action.
    let get = ActionId::base(ActionName::idempotent("get"));
    let h: History = [
        Event::start(get.clone(), Value::from(1)),
        Event::start(get.clone(), Value::from(1)),
        Event::complete(get.clone(), Value::from(42)),
    ]
    .into_iter()
    .collect();
    show(
        &h,
        &[(get.clone(), Value::from(1))],
        "retried idempotent action (failed attempt, then success)",
    );

    // 2. Two completions that disagree: irreducible — the reason
    //    result agreement exists.
    let h: History = [
        Event::start(get.clone(), Value::from(1)),
        Event::complete(get.clone(), Value::from(42)),
        Event::start(get.clone(), Value::from(1)),
        Event::complete(get.clone(), Value::from(43)),
    ]
    .into_iter()
    .collect();
    show(
        &h,
        &[(get, Value::from(1))],
        "disagreeing duplicate outputs (NOT x-able — rule 18 needs equal outputs)",
    );

    // 3. An undoable action: cancelled round then committed retry.
    let xfer = ActionId::base(ActionName::undoable("transfer"));
    let cancel = xfer.cancel().expect("undoable");
    let commit = xfer.commit().expect("undoable");
    let h: History = [
        Event::start(xfer.clone(), Value::from(9)),   // attempt 1 (failed)
        Event::start(cancel.clone(), Value::from(9)), // cancelled
        Event::complete(cancel.clone(), Value::Nil),
        Event::start(xfer.clone(), Value::from(9)),   // attempt 2
        Event::complete(xfer.clone(), Value::from("ok")),
        Event::start(commit.clone(), Value::from(9)), // committed
        Event::complete(commit.clone(), Value::Nil),
    ]
    .into_iter()
    .collect();
    show(
        &h,
        &[(xfer.clone(), Value::from(9))],
        "undoable action: cancelled attempt erased by rule 19, then exactly-once commit",
    );

    // 4. Commit without execution order problems: cancel AFTER commit is
    //    stuck — the theory rejects protocols that cancel committed work.
    let h: History = [
        Event::start(xfer.clone(), Value::from(9)),
        Event::complete(xfer.clone(), Value::from("ok")),
        Event::start(commit.clone(), Value::from(9)),
        Event::complete(commit.clone(), Value::Nil),
        Event::start(cancel.clone(), Value::from(9)),
        Event::complete(cancel.clone(), Value::Nil),
    ]
    .into_iter()
    .collect();
    show(
        &h,
        &[(xfer, Value::from(9))],
        "cancel after commit (NOT x-able — rule 19 blocked by the interleaved commit)",
    );
}
