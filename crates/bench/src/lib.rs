//! # xability-bench — benchmark workload builders
//!
//! Shared history/scenario generators used by the criterion benches in
//! `benches/`. One bench group per paper figure (F1–F7) and per claim
//! (C1–C3); the mapping to the paper is documented in DESIGN.md §6 and the
//! results narrative lives in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use xability_core::{ActionId, ActionName, Event, History, Value};

/// A history of `junk_pairs` unrelated executions followed by a retried
/// execution of action `a` (one failed attempt, one success) — the shape
/// rule 18 deduplicates.
pub fn junk_then_retry(junk_pairs: usize) -> History {
    let a = ActionId::base(ActionName::idempotent("a"));
    let junk = ActionId::base(ActionName::idempotent("junk"));
    let mut events = Vec::with_capacity(junk_pairs * 2 + 3);
    for i in 0..junk_pairs {
        events.push(Event::start(junk.clone(), Value::from(i as i64)));
        events.push(Event::complete(junk.clone(), Value::from(i as i64)));
    }
    events.push(Event::start(a.clone(), Value::from(1)));
    events.push(Event::start(a.clone(), Value::from(1)));
    events.push(Event::complete(a, Value::from(2)));
    History::from_events(events)
}

/// A history with `k` failed attempts of one idempotent action before a
/// success — the stress shape for the reduction search.
pub fn k_failed_attempts(k: usize) -> History {
    let a = ActionId::base(ActionName::idempotent("a"));
    let mut events = Vec::with_capacity(k + 2);
    for _ in 0..k {
        events.push(Event::start(a.clone(), Value::from(1)));
    }
    events.push(Event::start(a.clone(), Value::from(1)));
    events.push(Event::complete(a, Value::from(2)));
    History::from_events(events)
}

/// A protocol-shaped history of `n` sequential idempotent requests, each
/// retried once (failed attempt, then success) — the bulk shape of
/// heavy-traffic traces. 3 events per request.
pub fn n_retried_requests(n: usize) -> (History, Vec<(ActionId, Value)>) {
    let a = ActionId::base(ActionName::idempotent("put"));
    let mut events = Vec::with_capacity(n * 3);
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let key = Value::from(format!("r{i}"));
        events.push(Event::start(a.clone(), key.clone()));
        events.push(Event::start(a.clone(), key.clone()));
        events.push(Event::complete(a.clone(), Value::from(i as i64)));
        ops.push((a.clone(), key));
    }
    (History::from_events(events), ops)
}

/// A protocol-shaped history of `n` sequential requests, each with one
/// cancelled round and one committed round — what crash/cleaning runs
/// produce.
pub fn n_requests_with_cancelled_rounds(n: usize) -> (History, Vec<(ActionId, Value)>) {
    let base = ActionName::undoable("xfer");
    let a = ActionId::base(base.clone());
    let cancel = ActionId::Cancel(base.clone());
    let commit = ActionId::Commit(base);
    let mut events = Vec::new();
    let mut ops = Vec::new();
    for i in 0..n {
        let key = Value::from(format!("r{i}"));
        let iv1 = Value::pair(key.clone(), Value::from(1));
        let iv2 = Value::pair(key.clone(), Value::from(2));
        // Round 1: attempt, cancelled.
        events.push(Event::start(a.clone(), iv1.clone()));
        events.push(Event::start(cancel.clone(), iv1.clone()));
        events.push(Event::complete(cancel.clone(), Value::Nil));
        // Round 2: success + commit.
        events.push(Event::start(a.clone(), iv2.clone()));
        events.push(Event::complete(a.clone(), Value::from("ok")));
        events.push(Event::start(commit.clone(), iv2.clone()));
        events.push(Event::complete(commit.clone(), Value::Nil));
        ops.push((a.clone(), key));
    }
    (History::from_events(events), ops)
}

/// Schema version of the shared `provenance` block carried by every
/// `BENCH_*.json` artifact. Bump when the block's fields change.
pub const BENCH_PROVENANCE_SCHEMA: u32 = 1;

/// The shared provenance block every `BENCH_*.json` emitter embeds: the
/// artifact schema version, the emitting bench's name, the workspace
/// package version, the machine's `available_parallelism`, and the build
/// profile (via `debug_assertions` — committed artifacts must come from
/// release builds). Returned as a `"provenance": { … }` JSON fragment
/// (no surrounding braces or trailing comma) so emitters splice it into
/// their hand-rolled JSON uniformly.
///
/// This is the one sanctioned place bench artifacts record
/// machine-dependent facts; everything under `crates/obs`, `crates/sim`,
/// and `crates/core` stays clock- and machine-free (DESIGN.md §11).
pub fn bench_provenance(bench: &str) -> String {
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    format!(
        "\"provenance\": {{ \"schema_version\": {BENCH_PROVENANCE_SCHEMA}, \
         \"bench\": \"{bench}\", \"package_version\": \"{}\", \
         \"available_parallelism\": {parallelism}, \"debug_assertions\": {} }}",
        env!("CARGO_PKG_VERSION"),
        cfg!(debug_assertions),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xability_core::xable::{Checker, FastChecker};

    #[test]
    fn provenance_block_has_the_schema_fields() {
        let block = bench_provenance("selftest");
        assert!(block.starts_with("\"provenance\": {"));
        for field in [
            "\"schema_version\": 1",
            "\"bench\": \"selftest\"",
            "\"package_version\"",
            "\"available_parallelism\"",
            "\"debug_assertions\"",
        ] {
            assert!(block.contains(field), "provenance lost `{field}`: {block}");
        }
    }

    #[test]
    fn generators_produce_xable_histories() {
        let h = junk_then_retry(4);
        assert_eq!(h.len(), 11);
        let h = k_failed_attempts(3);
        assert_eq!(h.len(), 5);
        let (h, ops) = n_requests_with_cancelled_rounds(3);
        assert_eq!(h.len(), 21);
        assert!(FastChecker::default().check(&h, &ops, &[]).is_xable());
        let (h, ops) = n_retried_requests(4);
        assert_eq!(h.len(), 12);
        assert!(FastChecker::default().check(&h, &ops, &[]).is_xable());
    }
}
