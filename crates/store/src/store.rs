//! The append-only segmented trace store and its zero-copy views.
//!
//! One [`TraceStore`] holds a run's whole event stream, interned and
//! packed (12 bytes per event). Components that need to *read* the
//! stream — the online monitor, the batch checkers, the exactly-once
//! accountants, the trace writer — take an immutable [`TraceSnapshot`]
//! (O(#segments), cheaply cloneable) or a [`HistoryView`] over one, which
//! implements [`HistoryRead`] so every checker runs on it without a
//! `Vec<Event>` copy ever being materialized.

use std::fmt;

use xability_core::seglog::{AppendLog, LogView};
use xability_core::{
    ActionId, ActionName, Event, History, HistoryRead, Interner, InternerReader, Value,
};

/// Events per store segment. 64k × 12 bytes ≈ 768 KiB per segment: large
/// enough that a million-event trace is ~16 segments, small enough that
/// the one-off copy-on-write after a snapshot stays cheap.
pub(crate) const EVENT_SEGMENT: usize = 1 << 16;

/// Role tag: the base action `a`.
pub(crate) const ROLE_BASE: u8 = 0;
/// Role tag: the cancellation action `a⁻¹`.
const ROLE_CANCEL: u8 = 1;
/// Role tag: the commit action `aᶜ`.
const ROLE_COMMIT: u8 = 2;

/// The packed per-event record: 12 bytes instead of an owned [`Event`]
/// (~120 bytes of enum + heap on a 64-bit target).
///
/// Layout: an event tag (start/completion), the action's role
/// (base/cancel/commit), the interned [`ActionName`] symbol, and the
/// interned [`Value`] symbol (the input of a start, the output of a
/// completion).
///
/// [`ActionName`]: xability_core::ActionName
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRepr {
    /// Bit 0: 1 for completion events. Bits 1–2: the action role.
    tag: u8,
    _pad: [u8; 3],
    action: u32,
    value: u32,
}

impl EventRepr {
    /// Packs the tag byte.
    fn new(is_complete: bool, role: u8, action: u32, value: u32) -> Self {
        EventRepr {
            tag: u8::from(is_complete) | (role << 1),
            _pad: [0; 3],
            action,
            value,
        }
    }

    /// Returns `true` for completion events.
    pub fn is_complete(&self) -> bool {
        self.tag & 1 == 1
    }

    /// The action role bits (0 base, 1 cancel, 2 commit).
    pub(crate) fn role(&self) -> u8 {
        (self.tag >> 1) & 0b11
    }

    /// The interned action-name symbol.
    pub fn action_symbol(&self) -> u32 {
        self.action
    }

    /// The interned value symbol.
    pub fn value_symbol(&self) -> u32 {
        self.value
    }

    /// The raw tag byte (for the trace format).
    pub(crate) fn tag_byte(&self) -> u8 {
        self.tag
    }

    /// Rebuilds a repr from its serialized parts, validating the tag.
    pub(crate) fn from_parts(tag: u8, action: u32, value: u32) -> Option<Self> {
        if tag & !0b111 != 0 || (tag >> 1) > ROLE_COMMIT {
            return None;
        }
        Some(EventRepr {
            tag,
            _pad: [0; 3],
            action,
            value,
        })
    }
}

fn role_of(action: &ActionId) -> u8 {
    match action {
        ActionId::Base(_) => ROLE_BASE,
        ActionId::Cancel(_) => ROLE_CANCEL,
        ActionId::Commit(_) => ROLE_COMMIT,
    }
}

/// The append-only, interned, segmented store for one event stream.
///
/// Appends are amortized O(1) and never move old segments; see
/// [`TraceStore::snapshot`] for the read side.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName, Event, HistoryRead, Value};
/// use xability_store::TraceStore;
///
/// let a = ActionId::base(ActionName::idempotent("a"));
/// let mut store = TraceStore::new();
/// let index = store.push(&Event::start(a.clone(), Value::from(1)));
/// assert_eq!(index, 0);
/// assert_eq!(store.event(0), Event::start(a, Value::from(1)));
/// ```
#[derive(Debug, Clone)]
pub struct TraceStore {
    interner: Interner,
    events: AppendLog<EventRepr>,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> Self {
        TraceStore {
            interner: Interner::new(),
            events: AppendLog::new(EVENT_SEGMENT),
        }
    }

    /// Appends one event, returning its index in the stream.
    pub fn push(&mut self, event: &Event) -> usize {
        let (is_complete, action, value) = match event {
            Event::Start(a, iv) => (false, a, iv),
            Event::Complete(a, ov) => (true, a, ov),
        };
        let repr = EventRepr::new(
            is_complete,
            role_of(action),
            self.interner.intern_action(action.base_name()),
            self.interner.intern_value(value),
        );
        let index = self.events.len();
        self.events.push(repr);
        index
    }

    /// Appends every event of an iterator.
    pub fn extend<'a, I: IntoIterator<Item = &'a Event>>(&mut self, events: I) {
        for event in events {
            self.push(event);
        }
    }

    /// Appends a slice of events, returning the index of the first one
    /// (`len()` if the slice is empty).
    ///
    /// Semantically identical to pushing each event in order; the batch
    /// form amortizes interning. Event streams overwhelmingly repeat a
    /// small action alphabet, and adjacent events frequently carry the
    /// same value (a start and its retries, request keys), so a tiny
    /// batch-local memo answers most symbol queries with a direct
    /// equality check instead of the interner's hash-and-probe.
    /// `benches/store.rs` measures the per-event delta.
    pub fn push_batch(&mut self, events: &[Event]) -> usize {
        let first = self.events.len();
        // The action memo is a linear scan: real alphabets hold a handful
        // of names, and the cap keeps a pathological batch from turning
        // the scan quadratic (overflow names fall back to the interner).
        let mut actions: Vec<(&ActionName, u32)> = Vec::new();
        let mut last_value: Option<(&Value, u32)> = None;
        for event in events {
            let (is_complete, action, value) = match event {
                Event::Start(a, iv) => (false, a, iv),
                Event::Complete(a, ov) => (true, a, ov),
            };
            let name = action.base_name();
            let action_sym = match actions.iter().find(|(n, _)| *n == name) {
                Some(&(_, sym)) => sym,
                None => {
                    let sym = self.interner.intern_action(name);
                    if actions.len() < 64 {
                        actions.push((name, sym));
                    }
                    sym
                }
            };
            let value_sym = match last_value {
                Some((v, sym)) if v == value => sym,
                _ => {
                    let sym = self.interner.intern_value(value);
                    last_value = Some((value, sym));
                    sym
                }
            };
            self.events.push(EventRepr::new(
                is_complete,
                role_of(action),
                action_sym,
                value_sym,
            ));
        }
        first
    }

    /// A store holding the events of `h` — the lossless owned→interned
    /// conversion ([`HistoryView::to_history`] is its inverse).
    pub fn from_history(h: &History) -> Self {
        let mut store = TraceStore::new();
        store.extend(h.iter());
        store
    }

    /// The number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no event has been appended.
    pub fn is_empty(&self) -> bool {
        self.events.len() == 0
    }

    /// Decodes the event at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn event(&self, index: usize) -> Event {
        let repr = *self.events.get(index);
        decode(
            repr,
            self.interner.action(repr.action_symbol()).clone(),
            self.interner.value(repr.value_symbol()).clone(),
        )
    }

    /// The interner backing this store.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// An immutable snapshot of the current stream: O(#segments) `Arc`
    /// clones, no event or symbol is copied. Later appends to the store
    /// are invisible to the snapshot (at most one open segment is copied
    /// on the next append, bounded by the segment size) — so a snapshot
    /// handed to another thread keeps reading a stable prefix while this
    /// store keeps appending.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            interner: self.interner.reader(),
            events: self.events.snapshot(),
        }
    }

    /// A zero-copy [`HistoryRead`] view of the whole current stream
    /// (shorthand for `snapshot().view()`).
    pub fn view(&self) -> HistoryView {
        self.snapshot().view()
    }

    /// A cursor iterating the current stream from `position` — the
    /// replay primitive (`Ledger::attach_monitor` feeds a late-attached
    /// monitor from one of these).
    ///
    /// # Panics
    ///
    /// Panics if `position > len`.
    pub fn cursor_at(&self, position: usize) -> TraceCursor {
        assert!(position <= self.len(), "cursor position out of bounds");
        TraceCursor {
            snap: self.snapshot(),
            position,
        }
    }

    /// Approximate resident bytes: packed event segments plus the
    /// interner's tables. The per-event cost approaches
    /// `size_of::<EventRepr>()` (12 bytes) as the trace grows, because
    /// the symbol tables are bounded by *distinct* names/values.
    pub fn approx_bytes(&self) -> usize {
        self.events.segment_bytes() + self.interner.approx_bytes()
    }

    /// Appends a raw repr whose symbols were produced by this store's
    /// interner (the trace reader's fast path).
    pub(crate) fn push_repr(&mut self, repr: EventRepr) -> Result<(), String> {
        if (repr.action_symbol() as usize) >= self.interner.action_count() {
            return Err(format!(
                "event references action symbol {} but only {} are interned",
                repr.action_symbol(),
                self.interner.action_count()
            ));
        }
        if (repr.value_symbol() as usize) >= self.interner.value_count() {
            return Err(format!(
                "event references value symbol {} but only {} are interned",
                repr.value_symbol(),
                self.interner.value_count()
            ));
        }
        // Only undoable base actions have cancel/commit derived actions
        // (§3.1); a cancel/commit role on an idempotent name encodes an
        // event no real system can emit.
        if repr.role() != ROLE_BASE && !self.interner.action(repr.action_symbol()).is_undoable() {
            return Err(format!(
                "event has a cancel/commit role for idempotent action {:?}",
                self.interner.action(repr.action_symbol()).name()
            ));
        }
        self.events.push(repr);
        Ok(())
    }

    /// Mutable access to the interner (the trace reader re-interns the
    /// symbol tables before pushing raw reprs).
    pub(crate) fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// An empty store resolving symbols through an already-populated
    /// interner — segment recovery rebuilds the interner from the chained
    /// delta tables first, then replays each segment's packed events into
    /// one of these via [`TraceStore::push_repr`].
    pub(crate) fn with_interner(interner: Interner) -> Self {
        TraceStore {
            interner,
            events: AppendLog::new(EVENT_SEGMENT),
        }
    }

    /// Consumes the store, keeping only its interner — the tiered store
    /// seals a hot tail's events to disk and threads the (append-only)
    /// interner into the next hot store without cloning the tables.
    pub(crate) fn into_interner(self) -> Interner {
        self.interner
    }
}

/// Decodes a packed repr given its resolved action name and value.
pub(crate) fn decode(repr: EventRepr, name: xability_core::ActionName, value: Value) -> Event {
    let action = match repr.role() {
        ROLE_BASE => ActionId::Base(name),
        ROLE_CANCEL => ActionId::Cancel(name),
        _ => ActionId::Commit(name),
    };
    if repr.is_complete() {
        Event::complete(action, value)
    } else {
        Event::start(action, value)
    }
}

/// An immutable snapshot of a [`TraceStore`]: the event segments and the
/// symbol tables as of the moment it was taken.
///
/// Cloning a snapshot (or handing it to another component) is a handful
/// of `Arc` clones; the underlying segments are shared with the live
/// store and every other snapshot.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    pub(crate) interner: InternerReader,
    pub(crate) events: LogView<EventRepr>,
}

impl TraceSnapshot {
    /// The number of events in the snapshot.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the snapshot holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.len() == 0
    }

    /// Decodes the event at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn event(&self, index: usize) -> Event {
        let repr = *self.events.get(index);
        decode(
            repr,
            self.interner.action(repr.action_symbol()).clone(),
            self.interner.value(repr.value_symbol()).clone(),
        )
    }

    /// The packed repr at `index` (no decode).
    pub fn repr(&self, index: usize) -> EventRepr {
        *self.events.get(index)
    }

    /// The shared read handle over the symbol tables this snapshot
    /// resolves events against.
    pub fn interner(&self) -> &InternerReader {
        &self.interner
    }

    /// A zero-copy view over the whole snapshot.
    pub fn view(&self) -> HistoryView {
        let end = self.len();
        HistoryView {
            snap: self.clone(),
            start: 0,
            end,
        }
    }
}

/// A zero-copy history over a [`TraceSnapshot`] range, implementing
/// [`HistoryRead`] — the input every checker accepts.
///
/// Slicing ([`HistoryView::slice`]) is O(1) and shares the underlying
/// segments; only [`HistoryView::to_history`] (for the exhaustive search
/// tier) materializes owned events.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName, Event, HistoryRead, Value};
/// use xability_store::TraceStore;
///
/// let a = ActionId::base(ActionName::idempotent("a"));
/// let mut store = TraceStore::new();
/// store.push(&Event::start(a.clone(), Value::from(1)));
/// store.push(&Event::complete(a, Value::from(2)));
///
/// let view = store.view();
/// let prefix = view.slice(0, 1); // O(1), no copy
/// assert_eq!(prefix.len(), 1);
/// assert!(prefix.event_at(0).is_start());
/// ```
#[derive(Debug, Clone)]
pub struct HistoryView {
    snap: TraceSnapshot,
    start: usize,
    end: usize,
}

impl HistoryView {
    /// The number of events in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Decodes the event at `index` (view-relative).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn event(&self, index: usize) -> Event {
        assert!(
            index < self.len(),
            "HistoryView index {index} out of bounds"
        );
        self.snap.event(self.start + index)
    }

    /// A sub-view over `start..end` (view-relative), in O(1) without
    /// copying any event.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, start: usize, end: usize) -> HistoryView {
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        HistoryView {
            snap: self.snap.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Iterates the view's events in order (each decoded once).
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        (0..self.len()).map(move |i| self.event(i))
    }

    /// Materializes the view as an owned [`History`] — the lossless
    /// interned→owned conversion ([`TraceStore::from_history`] is its
    /// inverse).
    pub fn to_history(&self) -> History {
        self.iter().collect()
    }
}

impl HistoryRead for HistoryView {
    fn len(&self) -> usize {
        HistoryView::len(self)
    }

    fn event_at(&self, index: usize) -> Event {
        HistoryView::event(self, index)
    }

    fn to_history(&self) -> History {
        HistoryView::to_history(self)
    }

    fn is_base_start_at(&self, index: usize) -> bool {
        assert!(index < HistoryView::len(self), "index out of bounds");
        let repr = self.snap.repr(self.start + index);
        !repr.is_complete() && repr.role() == ROLE_BASE
    }

    fn is_base_completion_at(&self, index: usize) -> bool {
        assert!(index < HistoryView::len(self), "index out of bounds");
        let repr = self.snap.repr(self.start + index);
        repr.is_complete() && repr.role() == ROLE_BASE
    }
}

impl fmt::Display for HistoryView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Λ");
        }
        for i in 0..self.len() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", self.event(i))?;
        }
        Ok(())
    }
}

/// An owning iterator over a snapshot from a position — the replay
/// primitive behind late monitor attachment and trace re-checking.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    snap: TraceSnapshot,
    position: usize,
}

impl TraceCursor {
    /// The next position this cursor will yield.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl Iterator for TraceCursor {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        if self.position >= self.snap.len() {
            return None;
        }
        let event = self.snap.event(self.position);
        self.position += 1;
        Some(event)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.snap.len() - self.position;
        (rest, Some(rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xability_core::ActionName;

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn undo(name: &str) -> ActionId {
        ActionId::base(ActionName::undoable(name))
    }

    fn sample_history() -> History {
        let u = undo("xfer");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let b = idem("get");
        [
            Event::start(u.clone(), Value::from(1)),
            Event::start(cancel.clone(), Value::from(1)),
            Event::complete(cancel, Value::Nil),
            Event::start(u.clone(), Value::from(1)),
            Event::complete(u, Value::from(7)),
            Event::start(commit.clone(), Value::from(1)),
            Event::complete(commit, Value::Nil),
            Event::start(b.clone(), Value::from(2)),
            Event::complete(b, Value::from(9)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn repr_is_12_bytes() {
        assert_eq!(std::mem::size_of::<EventRepr>(), 12);
    }

    #[test]
    fn round_trip_through_store_is_lossless() {
        let h = sample_history();
        let store = TraceStore::from_history(&h);
        assert_eq!(store.len(), h.len());
        for (i, ev) in h.iter().enumerate() {
            assert_eq!(&store.event(i), ev);
        }
        assert_eq!(store.view().to_history(), h);
    }

    #[test]
    fn push_batch_equals_sequential_push() {
        let h = sample_history();
        let batched: Vec<Event> = h.iter().cloned().collect();
        let mut one_by_one = TraceStore::new();
        for ev in h.iter() {
            one_by_one.push(ev);
        }
        let mut batch = TraceStore::new();
        // Split across two batches so the memo resets mid-stream.
        let first = batch.push_batch(&batched[..4]);
        assert_eq!(first, 0);
        let second = batch.push_batch(&batched[4..]);
        assert_eq!(second, 4);
        assert_eq!(batch.push_batch(&[]), batch.len());
        assert_eq!(batch.len(), one_by_one.len());
        assert_eq!(
            batch.interner().action_count(),
            one_by_one.interner().action_count()
        );
        assert_eq!(
            batch.interner().value_count(),
            one_by_one.interner().value_count()
        );
        for i in 0..batch.len() {
            assert_eq!(batch.snapshot().repr(i), one_by_one.snapshot().repr(i));
        }
        assert_eq!(batch.view().to_history(), h);
    }

    #[test]
    fn interning_dedupes_symbols() {
        let h = sample_history();
        let store = TraceStore::from_history(&h);
        // 2 base names; values 1, nil, 7, 2, 9.
        assert_eq!(store.interner().action_count(), 2);
        assert_eq!(store.interner().value_count(), 5);
    }

    #[test]
    fn snapshot_is_immutable_under_appends() {
        let h = sample_history();
        let mut store = TraceStore::from_history(&h);
        let snap = store.snapshot();
        let extra = Event::start(idem("late"), Value::from(99));
        store.push(&extra);
        assert_eq!(snap.len(), h.len());
        assert_eq!(store.len(), h.len() + 1);
        assert_eq!(store.event(h.len()), extra);
        // The snapshot still decodes everything it holds.
        assert_eq!(snap.view().to_history(), h);
    }

    #[test]
    fn views_slice_in_constant_time_and_agree_with_owned_slices() {
        let h = sample_history();
        let store = TraceStore::from_history(&h);
        let view = store.view();
        let sub = view.slice(2, 7);
        assert_eq!(sub.len(), 5);
        assert_eq!(sub.to_history(), h.slice(2, 7));
        let subsub = sub.slice(1, 3);
        assert_eq!(subsub.to_history(), h.slice(3, 5));
        assert!(sub.slice(0, 0).is_empty());
    }

    #[test]
    fn history_read_structural_tests_match_decode() {
        let h = sample_history();
        let store = TraceStore::from_history(&h);
        let view = store.view();
        for i in 0..h.len() {
            assert_eq!(
                HistoryRead::is_base_start_at(&view, i),
                HistoryRead::is_base_start_at(&h, i),
                "index {i}"
            );
            assert_eq!(
                HistoryRead::is_base_completion_at(&view, i),
                HistoryRead::is_base_completion_at(&h, i),
                "index {i}"
            );
        }
    }

    #[test]
    fn cursor_replays_from_any_position() {
        let h = sample_history();
        let store = TraceStore::from_history(&h);
        let all: Vec<Event> = store.cursor_at(0).collect();
        assert_eq!(History::from_events(all), h);
        let mut cursor = store.cursor_at(7);
        assert_eq!(cursor.position(), 7);
        assert_eq!(cursor.next(), Some(h[7].clone()));
        assert_eq!(cursor.size_hint(), (1, Some(1)));
    }

    #[test]
    fn display_matches_owned_history() {
        let h = sample_history();
        let store = TraceStore::from_history(&h);
        assert_eq!(format!("{}", store.view()), format!("{h}"));
        assert_eq!(format!("{}", TraceStore::new().view()), "Λ");
    }

    #[test]
    fn approx_bytes_is_far_below_owned_size_for_repetitive_traces() {
        let a = idem("put");
        let mut store = TraceStore::new();
        let mut h = History::empty();
        for i in 0..10_000i64 {
            let s = Event::start(a.clone(), Value::from(i % 16));
            let c = Event::complete(a.clone(), Value::from(i % 16));
            store.push(&s);
            store.push(&c);
            h.push(s);
            h.push(c);
        }
        let owned = h.len() * std::mem::size_of::<Event>();
        assert!(
            store.approx_bytes() < owned,
            "store {} bytes >= owned inline {} bytes",
            store.approx_bytes(),
            owned
        );
    }
}
