//! The vendored LZ-class codec and checksum behind compressed trace
//! payloads and cold-segment integrity.
//!
//! The build is vendored-only (no crates.io access), so the segment tier
//! ships its own byte-oriented LZ77 codec in the LZ4 block style:
//! greedy hash-chain matching over a 64 KiB window, sequences of
//! `(literal run, back-reference)` packed behind a nibble token with
//! 255-run length extensions. It is deliberately simple — a few hundred
//! lines, `forbid(unsafe_code)`-clean, and a pure function of its input,
//! so compressed segments are bit-reproducible across runs and machines.
//! The size/speed trade-off against uncompressed segments is *measured*
//! by `benches/store.rs` (see `BENCH_store.json`'s disk axis), not
//! assumed.
//!
//! [`crc32`] / [`Crc32`] implement the standard reflected CRC-32
//! (polynomial `0xEDB88320`, the IEEE one used by gzip and zip), which
//! recovery uses to validate segment payloads after a crash.

use std::fmt;

/// Shortest back-reference the compressor emits (the LZ4 minimum).
const MIN_MATCH: usize = 4;

/// Largest back-reference distance (offsets are stored as `u16`).
const MAX_OFFSET: usize = u16::MAX as usize;

/// log2 of the match-finder hash-table size.
const HASH_BITS: u32 = 15;

/// Which codec a trace payload or cold segment was written with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Payload bytes are stored as-is.
    #[default]
    None,
    /// Payload bytes are compressed with the vendored LZ codec
    /// ([`lz_compress`] / [`lz_decompress`]).
    Lz,
}

impl Codec {
    /// The codec's stable name (used in segment provenance meta).
    pub fn name(self) -> &'static str {
        match self {
            Codec::None => "none",
            Codec::Lz => "lz",
        }
    }

    /// Parses a codec from its stable name.
    pub fn from_name(name: &str) -> Option<Codec> {
        match name {
            "none" => Some(Codec::None),
            "lz" => Some(Codec::Lz),
            _ => None,
        }
    }

    /// The on-disk tag byte (trace format version 3).
    pub(crate) fn tag(self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::Lz => 1,
        }
    }

    /// Parses the on-disk tag byte.
    pub(crate) fn from_tag(tag: u8) -> Option<Codec> {
        match tag {
            0 => Some(Codec::None),
            1 => Some(Codec::Lz),
            _ => None,
        }
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Multiplicative hash of the next four bytes (Knuth's 2654435761).
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Appends a 255-run length extension (LZ4 style: `255` bytes until the
/// remainder, then the remainder byte).
fn write_len_ext(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

/// One `(literals, back-reference)` sequence.
fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    let lit = literals.len();
    let ml = match_len - MIN_MATCH;
    out.push(((lit.min(15) as u8) << 4) | ml.min(15) as u8);
    if lit >= 15 {
        write_len_ext(out, lit - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    if ml >= 15 {
        write_len_ext(out, ml - 15);
    }
}

/// Compresses `input` with the vendored LZ codec.
///
/// The output is a pure function of the input (fixed hash function, fixed
/// greedy policy — no randomization), so compressed segments are
/// bit-reproducible. Decompress with [`lz_decompress`] and the original
/// length.
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        return out;
    }
    let mut table = vec![u32::MAX; 1 << HASH_BITS];
    let mut anchor = 0usize; // start of the pending literal run
    let mut i = 0usize;
    while i + MIN_MATCH <= n {
        let h = hash4(&input[i..]);
        let cand = table[h];
        table[h] = i as u32;
        let cand = cand as usize;
        if cand != u32::MAX as usize
            && i - cand <= MAX_OFFSET
            && input[cand..cand + MIN_MATCH] == input[i..i + MIN_MATCH]
        {
            let mut len = MIN_MATCH;
            while i + len < n && input[cand + len] == input[i + len] {
                len += 1;
            }
            emit_sequence(&mut out, &input[anchor..i], (i - cand) as u16, len);
            i += len;
            anchor = i;
        } else {
            i += 1;
        }
    }
    if anchor < n {
        // Final literals-only sequence: match nibble unused, no offset
        // follows — the decoder detects the end by input exhaustion.
        let lit = n - anchor;
        out.push((lit.min(15) as u8) << 4);
        if lit >= 15 {
            write_len_ext(&mut out, lit - 15);
        }
        out.extend_from_slice(&input[anchor..]);
    }
    out
}

/// Reads a 255-run length extension.
fn read_len_ext(input: &[u8], i: &mut usize) -> Result<usize, String> {
    let mut v = 0usize;
    loop {
        let Some(&b) = input.get(*i) else {
            return Err("truncated length extension".to_owned());
        };
        *i += 1;
        v += b as usize;
        if b != 255 {
            return Ok(v);
        }
    }
}

/// Decompresses an [`lz_compress`] stream back to exactly `expected_len`
/// bytes.
///
/// Malformed input — truncation, an offset pointing before the start, a
/// length running past `expected_len` — is a clean `Err`, never a panic:
/// recovery feeds this torn and corrupted segment files.
pub fn lz_decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, String> {
    // Cap the up-front allocation: `expected_len` may come from a corrupt
    // length field, and the vector grows to the real size anyway.
    let mut out = Vec::with_capacity(expected_len.min(1 << 20));
    let mut i = 0usize;
    while i < input.len() {
        let token = input[i];
        i += 1;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            lit += read_len_ext(input, &mut i)?;
        }
        if i + lit > input.len() {
            return Err("truncated literal run".to_owned());
        }
        if out.len() + lit > expected_len {
            return Err("literal run exceeds the declared length".to_owned());
        }
        out.extend_from_slice(&input[i..i + lit]);
        i += lit;
        if i == input.len() {
            break; // final literals-only sequence
        }
        if i + 2 > input.len() {
            return Err("truncated back-reference offset".to_owned());
        }
        let offset = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
        i += 2;
        if offset == 0 || offset > out.len() {
            return Err(format!(
                "back-reference offset {offset} outside the {} bytes produced",
                out.len()
            ));
        }
        let mut ml = (token & 15) as usize;
        if ml == 15 {
            ml += read_len_ext(input, &mut i)?;
        }
        ml += MIN_MATCH;
        if out.len() + ml > expected_len {
            return Err("back-reference exceeds the declared length".to_owned());
        }
        // Byte-wise copy: offsets shorter than the match length replicate
        // the just-written bytes (the classic LZ run encoding).
        let start = out.len() - offset;
        for k in 0..ml {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != expected_len {
        return Err(format!(
            "decompressed to {} bytes, expected {expected_len}",
            out.len()
        ));
    }
    Ok(out)
}

/// The reflected CRC-32 lookup table (polynomial `0xEDB88320`).
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// A streaming CRC-32 state (the gzip/zip polynomial) — recovery hashes
/// segment payloads as it reads them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = CRC_TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The checksum of everything updated so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// The CRC-32 of `bytes` in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic byte generator (xorshift) for round-trip
    /// soup — no RNG dependency, same stream every run.
    fn pseudo_random_bytes(len: usize, mut seed: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            out.push(seed as u8);
        }
        out
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming in pieces equals one shot.
        let mut crc = Crc32::new();
        crc.update(b"1234");
        crc.update(b"56789");
        assert_eq!(crc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn round_trips_assorted_inputs() {
        let inputs: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"abcd".to_vec(),
            b"abcdabcdabcdabcd".to_vec(),
            vec![0u8; 10_000],
            (0..=255u8).collect(),
            b"the quick brown fox jumps over the lazy dog".repeat(40),
            pseudo_random_bytes(4096, 0xDEAD_BEEF),
            // Run encoding: offset shorter than match length.
            [b"ab".repeat(500), b"xyz".repeat(333)].concat(),
        ];
        for input in inputs {
            let packed = lz_compress(&input);
            let unpacked = lz_decompress(&packed, input.len())
                .unwrap_or_else(|e| panic!("{} bytes failed to round-trip: {e}", input.len()));
            assert_eq!(unpacked, input, "{} bytes diverged", input.len());
        }
    }

    #[test]
    fn repetitive_input_actually_shrinks() {
        let input = b"start(put,r) complete(put,r) ".repeat(1000);
        let packed = lz_compress(&input);
        assert!(
            packed.len() * 10 < input.len(),
            "{} -> {} bytes: the codec must earn its keep on repetitive traces",
            input.len(),
            packed.len()
        );
    }

    #[test]
    fn compression_is_deterministic() {
        let input = pseudo_random_bytes(2048, 42)
            .iter()
            .map(|b| b % 7) // some redundancy so matches occur
            .collect::<Vec<u8>>();
        assert_eq!(lz_compress(&input), lz_compress(&input));
    }

    #[test]
    fn truncated_and_corrupt_streams_fail_cleanly() {
        let input = b"abcdefgh".repeat(64);
        let packed = lz_compress(&input);
        for cut in 0..packed.len() {
            // Every truncation either errors or (for a cut that lands on
            // a sequence boundary of a prefix) produces the wrong length.
            if let Ok(out) = lz_decompress(&packed[..cut], input.len()) {
                panic!("truncation at {cut} produced {} bytes", out.len());
            }
        }
        // Flipping bytes must never panic.
        for i in 0..packed.len() {
            let mut bad = packed.clone();
            bad[i] ^= 0xFF;
            let _ = lz_decompress(&bad, input.len());
        }
    }

    #[test]
    fn wrong_expected_length_is_rejected() {
        let input = b"abcdabcdabcd".to_vec();
        let packed = lz_compress(&input);
        assert!(lz_decompress(&packed, input.len() + 1).is_err());
        assert!(lz_decompress(&packed, input.len().saturating_sub(1)).is_err());
    }

    #[test]
    fn codec_names_round_trip() {
        for codec in [Codec::None, Codec::Lz] {
            assert_eq!(Codec::from_name(codec.name()), Some(codec));
            assert_eq!(Codec::from_tag(codec.tag()), Some(codec));
            assert_eq!(format!("{codec}"), codec.name());
        }
        assert_eq!(Codec::from_name("zstd"), None);
        assert_eq!(Codec::from_tag(9), None);
    }
}
