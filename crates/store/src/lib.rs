//! # xability-store — the shared, interned trace store
//!
//! Every layer of the reproduction is ultimately a consumer of one event
//! stream: the ledger records it, the online monitor folds it, the batch
//! checkers re-read it, the benches replay it. This crate is that stream's
//! home — one append-only store, many cheap read-only views — so that a
//! multi-million-event trace is stored **once**, compactly, instead of as
//! heap-heavy `Vec<Event>` copies per component.
//!
//! * [`Interner`] maps [`ActionName`]s and [`Value`]s to dense `u32`
//!   symbols, so each distinct action name and value is stored once.
//! * [`EventRepr`] is the packed 12-byte per-event record: an event tag,
//!   an action-role tag, and the two symbols.
//! * [`TraceStore`] is the append-only segmented store. Appends never
//!   move old segments (no reallocation copies), and
//!   [`TraceStore::snapshot`] hands out an immutable [`TraceSnapshot`] in
//!   O(#segments) — cheaply cloneable across components.
//! * [`HistoryView`] is a zero-copy [`HistoryRead`] over a snapshot: the
//!   fast and incremental checkers run on it directly, and
//!   [`HistoryView::to_history`] / [`TraceStore::from_history`] convert
//!   losslessly to/from the owned [`History`] the search tier needs.
//! * [`TraceCursor`] iterates a snapshot from a position — the replay
//!   primitive behind `Ledger::attach_monitor`.
//! * [`trace`] is the versioned binary record/replay format
//!   ([`write_trace`] / [`read_trace`]): the harness dumps a run's trace
//!   to disk, tests and benches replay it bit-for-bit. Version 3 frames
//!   the payload behind a [`Codec`] with a recorded checksum.
//! * [`tier`] is the durable tier: [`TieredStore`] keeps a hot in-memory
//!   tail and spills sealed, optionally-compressed cold segments to disk
//!   ([`segfile`]), with crash-safe recovery and [`HistoryRead`] views
//!   ([`TieredView`]) over the combined history — RAM stops being the
//!   retention policy.
//!
//! ```
//! use xability_core::xable::{Checker, FastChecker};
//! use xability_core::{ActionId, ActionName, Event, HistoryRead, Value};
//! use xability_store::TraceStore;
//!
//! let get = ActionId::base(ActionName::idempotent("get"));
//! let mut store = TraceStore::new();
//! store.push(&Event::start(get.clone(), Value::from(1)));
//! store.push(&Event::complete(get.clone(), Value::from(42)));
//!
//! // O(#segments) snapshot; the view reads events without copying them.
//! let view = store.view();
//! assert_eq!(view.len(), 2);
//! let verdict = FastChecker::default().check_source(&view, &[(get, Value::from(1))], &[]);
//! assert!(verdict.is_xable());
//! ```
//!
//! [`ActionName`]: xability_core::ActionName
//! [`Value`]: xability_core::Value
//! [`History`]: xability_core::History
//! [`HistoryRead`]: xability_core::HistoryRead

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod segfile;
pub mod store;
pub mod tier;
pub mod trace;

// The symbol-interning layer lives in `xability_core::intern` since the
// checker engine keys its per-request groups by the same symbols; the
// store threads that one `Interner` type through its packed events and
// snapshots. Re-exported here so store users keep one import path.
pub use codec::{crc32, lz_compress, lz_decompress, Codec, Crc32};
pub use segfile::{LoadedSegment, RecoveredLog, RecoveryReport, SegmentInfo, SegmentLog};
pub use store::{EventRepr, HistoryView, TraceCursor, TraceSnapshot, TraceStore};
pub use tier::{
    read_tiered_trace, recover_store, remove_tiered_trace, write_tiered_trace, TierConfig,
    TieredStore, TieredView, REQUESTS_MANIFEST,
};
pub use trace::{
    read_trace, write_trace, write_trace_file, write_trace_file_with_meta, write_trace_with_meta,
    write_trace_with_options, RecordedTrace, META_PAYLOAD_CRC, TRACE_FORMAT_COMPRESSED_VERSION,
    TRACE_FORMAT_MAX_VERSION, TRACE_FORMAT_MIN_VERSION, TRACE_FORMAT_VERSION,
};
pub use xability_core::intern::{value_heap_bytes, Interner, InternerReader};
