//! The versioned binary trace record/replay format.
//!
//! A recorded trace is a self-contained file: the declared request
//! sequence, both symbol tables, and the packed event stream. Re-reading
//! one rebuilds a [`TraceStore`] with identical symbols and events, so a
//! harness run can be dumped to disk and re-checked bit-for-bit by tests
//! and benches (`tests/corpus/` keeps a small committed corpus).
//!
//! ## Layout (version 2, all integers little-endian)
//!
//! ```text
//! magic    "XTRC" (4 bytes)
//! version  u32                      — TRACE_FORMAT_VERSION
//! meta     u32 count, then per pair:  key u32 len + UTF-8 bytes,
//!                                     value u32 len + UTF-8 bytes
//!                                     (version ≥ 2 only; absent in v1)
//! actions  u32 count, then per name:  kind u8 (0 idem, 1 undo),
//!                                     name  u32 len + UTF-8 bytes
//! values   u32 count, then per value: recursive value encoding (below)
//! requests u32 count, then per req:   role u8 (0 base, 1 cancel, 2 commit),
//!                                     kind u8, name u32 len + UTF-8 bytes
//!                                     (requests are self-contained, not
//!                                     symbol references), input value encoding
//! events   u64 count, then per event: tag u8, action u32 sym, value u32 sym
//! ```
//!
//! Value encoding: a tag byte — 0 `Nil`, 1 `Bool` (+u8), 2 `Int` (+i64),
//! 3 `Str` (+u32 len + bytes), 4 `List` (+u32 count + elements),
//! 5 `Pair` (+two elements) — matching the [`Value`] variants.
//!
//! The version is checked on read; an unknown magic or version is an
//! `InvalidData` error, never a silent misparse. Version 1 files (the
//! same layout minus the meta section) still read, with empty metadata —
//! the committed corpus never goes stale on a format bump.
//!
//! The meta section carries provenance, not semantics: free-form
//! key/value strings (generator name, master seed, fault-plan summary,
//! violation class) written by tools such as `harness::explore`. Checkers
//! never look at it.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use xability_core::{ActionId, ActionKind, ActionName, Request, Value};

use crate::store::{EventRepr, TraceSnapshot, TraceStore};

/// The file magic.
pub const TRACE_MAGIC: [u8; 4] = *b"XTRC";

/// The current trace format version.
pub const TRACE_FORMAT_VERSION: u32 = 2;

/// The oldest trace format version the reader still accepts.
pub const TRACE_FORMAT_MIN_VERSION: u32 = 1;

/// A replayed trace: the declared request sequence plus the rebuilt
/// store.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName, Event, Request, Value};
/// use xability_store::{read_trace, write_trace, TraceStore};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let mut store = TraceStore::new();
/// store.push(&Event::start(a.clone(), Value::from(1)));
/// store.push(&Event::complete(a.clone(), Value::from(5)));
/// let requests = vec![Request::new(a, Value::from(1))];
///
/// let mut bytes = Vec::new();
/// write_trace(&mut bytes, &requests, &store.snapshot()).unwrap();
/// let replayed = read_trace(&mut bytes.as_slice()).unwrap();
/// assert_eq!(replayed.requests, requests);
/// assert_eq!(replayed.store.view().to_history(), store.view().to_history());
/// ```
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    /// The request sequence the trace was recorded against (the R3
    /// question to re-ask on replay).
    pub requests: Vec<Request>,
    /// The rebuilt store, symbol-for-symbol identical to the recorded
    /// one.
    pub store: TraceStore,
    /// Free-form provenance pairs from the file's meta section (empty
    /// for version-1 files). Order is preserved exactly as written.
    pub meta: Vec<(String, String)>,
}

impl RecordedTrace {
    /// Writes the trace (including its `meta` pairs) to `path` (see
    /// [`write_trace_file_with_meta`]).
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_trace_file_with_meta(path, &self.requests, &self.store.snapshot(), &self.meta)
    }

    /// Looks up the first meta value recorded under `key`.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Reads a trace from `path` (see [`read_trace`]).
    pub fn read_from_file(path: impl AsRef<Path>) -> io::Result<RecordedTrace> {
        read_trace(&mut BufReader::new(File::open(path)?))
    }
}

/// Writes a recorded trace to `path` (buffered and flushed) — the one
/// path-based entry point shared by [`RecordedTrace::write_to_file`] and
/// the harness's run dumps.
pub fn write_trace_file(
    path: impl AsRef<Path>,
    requests: &[Request],
    snapshot: &TraceSnapshot,
) -> io::Result<()> {
    write_trace_file_with_meta(path, requests, snapshot, &[])
}

/// [`write_trace_file`] with an explicit provenance meta section.
pub fn write_trace_file_with_meta(
    path: impl AsRef<Path>,
    requests: &[Request],
    snapshot: &TraceSnapshot,
    meta: &[(String, String)],
) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_trace_with_meta(&mut w, requests, snapshot, meta)?;
    w.flush()
}

fn bad(data: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, data.into())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_len<W: Write>(w: &mut W, len: usize, what: &str) -> io::Result<()> {
    let v = u32::try_from(len).map_err(|_| bad(format!("{what} count exceeds u32")))?;
    write_u32(w, v)
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_len(w, s.len(), "string byte")?;
    w.write_all(s.as_bytes())
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    // Grow as bytes actually arrive instead of trusting the length field
    // with an up-front allocation: a corrupt length then fails cleanly on
    // EOF rather than attempting a multi-GiB buffer.
    let mut buf = Vec::with_capacity(len.min(1 << 16));
    let read = r.by_ref().take(len as u64).read_to_end(&mut buf)?;
    if read != len {
        return Err(bad("truncated string"));
    }
    String::from_utf8(buf).map_err(|_| bad("string is not UTF-8"))
}

fn write_value<W: Write>(w: &mut W, value: &Value) -> io::Result<()> {
    write_value_at(w, value, 0)
}

fn write_value_at<W: Write>(w: &mut W, value: &Value, depth: usize) -> io::Result<()> {
    // Enforced symmetrically with the reader: a value too deep for the
    // format fails at *record* time, never producing an unreadable file.
    if depth >= MAX_VALUE_DEPTH {
        return Err(bad(format!(
            "value nesting exceeds the format's depth limit ({MAX_VALUE_DEPTH})"
        )));
    }
    match value {
        Value::Nil => w.write_all(&[0]),
        Value::Bool(b) => w.write_all(&[1, u8::from(*b)]),
        Value::Int(i) => {
            w.write_all(&[2])?;
            w.write_all(&i.to_le_bytes())
        }
        Value::Str(s) => {
            w.write_all(&[3])?;
            write_str(w, s)
        }
        Value::List(items) => {
            w.write_all(&[4])?;
            write_len(w, items.len(), "list element")?;
            for item in items {
                write_value_at(w, item, depth + 1)?;
            }
            Ok(())
        }
        Value::Pair(p) => {
            w.write_all(&[5])?;
            write_value_at(w, &p.0, depth + 1)?;
            write_value_at(w, &p.1, depth + 1)
        }
    }
}

/// Deepest `List`/`Pair` nesting the reader accepts. Real values nest a
/// handful of levels; the cap turns a corrupt run of nesting tags into a
/// clean `InvalidData` instead of a stack-overflow abort.
const MAX_VALUE_DEPTH: usize = 64;

fn read_value<R: Read>(r: &mut R) -> io::Result<Value> {
    read_value_at(r, 0)
}

fn read_value_at<R: Read>(r: &mut R, depth: usize) -> io::Result<Value> {
    if depth >= MAX_VALUE_DEPTH {
        return Err(bad(format!(
            "value nesting exceeds the format's depth limit ({MAX_VALUE_DEPTH})"
        )));
    }
    match read_u8(r)? {
        0 => Ok(Value::Nil),
        1 => Ok(Value::Bool(read_u8(r)? != 0)),
        2 => {
            let mut buf = [0u8; 8];
            r.read_exact(&mut buf)?;
            Ok(Value::Int(i64::from_le_bytes(buf)))
        }
        3 => Ok(Value::Str(read_str(r)?)),
        4 => {
            let count = read_u32(r)? as usize;
            let mut items = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                items.push(read_value_at(r, depth + 1)?);
            }
            Ok(Value::List(items))
        }
        5 => {
            let first = read_value_at(r, depth + 1)?;
            let second = read_value_at(r, depth + 1)?;
            Ok(Value::pair(first, second))
        }
        tag => Err(bad(format!("unknown value tag {tag}"))),
    }
}

fn write_action_id<W: Write>(w: &mut W, action: &ActionId) -> io::Result<()> {
    let (role, name): (u8, &ActionName) = match action {
        ActionId::Base(n) => (0, n),
        ActionId::Cancel(n) => (1, n),
        ActionId::Commit(n) => (2, n),
    };
    w.write_all(&[role, u8::from(name.is_undoable())])?;
    write_str(w, name.name())
}

fn read_action_id<R: Read>(r: &mut R) -> io::Result<ActionId> {
    let role = read_u8(r)?;
    let kind = match read_u8(r)? {
        0 => ActionKind::Idempotent,
        1 => ActionKind::Undoable,
        k => return Err(bad(format!("unknown action kind {k}"))),
    };
    let name = ActionName::new(read_str(r)?, kind);
    if role != 0 && !name.is_undoable() {
        return Err(bad(format!(
            "cancel/commit role on idempotent action {:?} (only undoable actions have derived actions)",
            name.name()
        )));
    }
    match role {
        0 => Ok(ActionId::Base(name)),
        1 => Ok(ActionId::Cancel(name)),
        2 => Ok(ActionId::Commit(name)),
        other => Err(bad(format!("unknown action role {other}"))),
    }
}

/// Writes a recorded trace: the request sequence plus a snapshot's symbol
/// tables and packed event stream.
pub fn write_trace<W: Write>(
    w: &mut W,
    requests: &[Request],
    snapshot: &TraceSnapshot,
) -> io::Result<()> {
    write_trace_with_meta(w, requests, snapshot, &[])
}

/// [`write_trace`] with an explicit provenance meta section (free-form
/// key/value string pairs, written in order).
pub fn write_trace_with_meta<W: Write>(
    w: &mut W,
    requests: &[Request],
    snapshot: &TraceSnapshot,
    meta: &[(String, String)],
) -> io::Result<()> {
    w.write_all(&TRACE_MAGIC)?;
    write_u32(w, TRACE_FORMAT_VERSION)?;

    write_len(w, meta.len(), "meta pair")?;
    for (key, value) in meta {
        write_str(w, key)?;
        write_str(w, value)?;
    }

    write_len(w, snapshot.interner().action_count(), "action symbol")?;
    for name in snapshot.interner().actions() {
        w.write_all(&[u8::from(name.is_undoable())])?;
        write_str(w, name.name())?;
    }

    write_len(w, snapshot.interner().value_count(), "value symbol")?;
    for value in snapshot.interner().values() {
        write_value(w, value)?;
    }

    write_len(w, requests.len(), "request")?;
    for request in requests {
        write_action_id(w, request.action())?;
        write_value(w, request.input())?;
    }

    let count = snapshot.len() as u64;
    w.write_all(&count.to_le_bytes())?;
    for i in 0..snapshot.len() {
        let repr = snapshot.repr(i);
        w.write_all(&[repr.tag_byte()])?;
        write_u32(w, repr.action_symbol())?;
        write_u32(w, repr.value_symbol())?;
    }
    Ok(())
}

/// Reads a recorded trace, rebuilding a [`TraceStore`] whose symbols and
/// events are identical to the recorded ones.
///
/// Fails with `InvalidData` on a bad magic, an unsupported version, an
/// out-of-range symbol, or a malformed value/action encoding.
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<RecordedTrace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != TRACE_MAGIC {
        return Err(bad("not a trace file (bad magic)"));
    }
    let version = read_u32(r)?;
    if !(TRACE_FORMAT_MIN_VERSION..=TRACE_FORMAT_VERSION).contains(&version) {
        return Err(bad(format!(
            "unsupported trace format version {version} (this build reads \
             {TRACE_FORMAT_MIN_VERSION}..={TRACE_FORMAT_VERSION})"
        )));
    }

    // The meta section arrived in version 2; v1 files go straight to the
    // action symbol table.
    let mut meta = Vec::new();
    if version >= 2 {
        let meta_count = read_u32(r)? as usize;
        meta.reserve(meta_count.min(1 << 12));
        for _ in 0..meta_count {
            let key = read_str(r)?;
            let value = read_str(r)?;
            meta.push((key, value));
        }
    }

    let mut store = TraceStore::new();

    let action_count = read_u32(r)? as usize;
    for _ in 0..action_count {
        let kind = match read_u8(r)? {
            0 => ActionKind::Idempotent,
            1 => ActionKind::Undoable,
            k => return Err(bad(format!("unknown action kind {k}"))),
        };
        let name = ActionName::new(read_str(r)?, kind);
        store.interner_mut().intern_action(&name);
    }
    if store.interner().action_count() != action_count {
        return Err(bad("duplicate action name in symbol table"));
    }

    let value_count = read_u32(r)? as usize;
    for _ in 0..value_count {
        let value = read_value(r)?;
        store.interner_mut().intern_value(&value);
    }
    if store.interner().value_count() != value_count {
        return Err(bad("duplicate value in symbol table"));
    }

    let request_count = read_u32(r)? as usize;
    let mut requests = Vec::with_capacity(request_count.min(1 << 16));
    for _ in 0..request_count {
        let action = read_action_id(r)?;
        let input = read_value(r)?;
        requests.push(Request::new(action, input));
    }

    let event_count = read_u64(r)?;
    for _ in 0..event_count {
        let tag = read_u8(r)?;
        let action = read_u32(r)?;
        let value = read_u32(r)?;
        let repr = EventRepr::from_parts(tag, action, value)
            .ok_or_else(|| bad(format!("malformed event tag {tag:#04x}")))?;
        store.push_repr(repr).map_err(bad)?;
    }

    Ok(RecordedTrace {
        requests,
        store,
        meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xability_core::xable::{Checker, FastChecker};
    use xability_core::{Event, History};

    fn sample() -> (Vec<Request>, TraceStore) {
        let u = ActionId::base(ActionName::undoable("xfer"));
        let cancel = u.cancel().unwrap();
        let b = ActionId::base(ActionName::idempotent("get"));
        let h: History = [
            Event::start(u.clone(), Value::from(1)),
            Event::start(cancel.clone(), Value::from(1)),
            Event::complete(cancel, Value::Nil),
            Event::start(u.clone(), Value::from(1)),
            Event::complete(u.clone(), Value::from(7)),
            Event::start(u.commit().unwrap(), Value::from(1)),
            Event::complete(u.commit().unwrap(), Value::Nil),
            Event::start(
                b.clone(),
                Value::list([Value::pair(Value::from("k"), Value::from(2))]),
            ),
            Event::complete(b.clone(), Value::from("ok")),
        ]
        .into_iter()
        .collect();
        let requests = vec![
            Request::new(u, Value::from(1)),
            Request::new(
                b,
                Value::list([Value::pair(Value::from("k"), Value::from(2))]),
            ),
        ];
        (requests, TraceStore::from_history(&h))
    }

    #[test]
    fn round_trip_preserves_requests_symbols_and_events() {
        let (requests, store) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &requests, &store.snapshot()).unwrap();
        let replayed = read_trace(&mut bytes.as_slice()).unwrap();
        assert_eq!(replayed.requests, requests);
        assert_eq!(replayed.store.len(), store.len());
        assert_eq!(
            replayed.store.interner().action_count(),
            store.interner().action_count()
        );
        assert_eq!(
            replayed.store.interner().value_count(),
            store.interner().value_count()
        );
        assert_eq!(
            replayed.store.view().to_history(),
            store.view().to_history()
        );
    }

    #[test]
    fn replayed_trace_rechecks_identically() {
        let (requests, store) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &requests, &store.snapshot()).unwrap();
        let replayed = read_trace(&mut bytes.as_slice()).unwrap();
        let checker = FastChecker::default();
        assert_eq!(
            checker.check_requests_source(&store.view(), &requests),
            checker.check_requests_source(&replayed.store.view(), &replayed.requests),
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&mut &b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&(TRACE_FORMAT_VERSION + 1).to_le_bytes());
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn out_of_range_symbol_is_rejected() {
        let (requests, store) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &requests, &store.snapshot()).unwrap();
        // Corrupt the last event's value symbol (last 4 bytes).
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("value symbol"), "{err}");
    }

    #[test]
    fn runaway_value_nesting_is_rejected_not_a_stack_overflow() {
        // A value section that is one long run of Pair tags would recurse
        // once per byte without the depth cap.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no meta
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no actions
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one value…
        bytes.extend(std::iter::repeat(5u8).take(100_000)); // …of nested Pairs
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("depth"), "{err}");
    }

    #[test]
    fn over_deep_value_fails_at_record_time_not_replay_time() {
        // The depth cap is symmetric: a value the reader would reject is
        // refused by the writer, so no unreadable file is ever produced.
        let mut deep = Value::Nil;
        for _ in 0..100 {
            deep = Value::pair(deep, Value::Nil);
        }
        let a = ActionId::base(ActionName::idempotent("a"));
        let mut store = TraceStore::new();
        store.push(&Event::start(a, deep));
        let mut bytes = Vec::new();
        let err = write_trace(&mut bytes, &[], &store.snapshot()).unwrap_err();
        assert!(err.to_string().contains("depth"), "{err}");
    }

    #[test]
    fn cancel_role_on_idempotent_action_is_rejected() {
        // Hand-built trace: one idempotent action, one Nil value, one
        // event whose tag claims a cancel role — unconstructible via the
        // core API, so the reader must refuse it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no meta
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one action:
        bytes.push(0); // idempotent
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'a');
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one value:
        bytes.push(0); // Nil
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no requests
        bytes.extend_from_slice(&1u64.to_le_bytes()); // one event:
        bytes.push(0b010); // start, ROLE_CANCEL
        bytes.extend_from_slice(&0u32.to_le_bytes()); // action 0
        bytes.extend_from_slice(&0u32.to_le_bytes()); // value 0
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("idempotent"), "{err}");

        // Same impossible combination in the request section.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no meta
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no actions
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no values
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one request:
        bytes.push(1); // cancel role…
        bytes.push(0); // …of an idempotent name
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'a');
        bytes.push(0); // Nil input
        bytes.extend_from_slice(&0u64.to_le_bytes()); // no events
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("idempotent"), "{err}");
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_panic() {
        let (requests, store) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &requests, &store.snapshot()).unwrap();
        for cut in [3, 7, 12, bytes.len() - 1] {
            assert!(read_trace(&mut &bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn file_round_trip() {
        let (requests, store) = sample();
        let dir = std::env::temp_dir().join("xability-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.xtrace");
        let recorded = RecordedTrace {
            requests: requests.clone(),
            store: store.clone(),
            meta: vec![("generator".to_string(), "unit-test".to_string())],
        };
        recorded.write_to_file(&path).unwrap();
        let replayed = RecordedTrace::read_from_file(&path).unwrap();
        assert_eq!(replayed.requests, requests);
        assert_eq!(
            replayed.store.view().to_history(),
            store.view().to_history()
        );
        assert_eq!(replayed.meta, recorded.meta);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_section_round_trips_in_order() {
        let (requests, store) = sample();
        let meta = vec![
            ("generator".to_string(), "explore".to_string()),
            ("master_seed".to_string(), "42".to_string()),
            ("master_seed".to_string(), "shadowed".to_string()),
        ];
        let mut bytes = Vec::new();
        write_trace_with_meta(&mut bytes, &requests, &store.snapshot(), &meta).unwrap();
        let replayed = read_trace(&mut bytes.as_slice()).unwrap();
        assert_eq!(replayed.meta, meta);
        // Lookup returns the *first* pair under a duplicated key.
        assert_eq!(replayed.meta_value("master_seed"), Some("42"));
        assert_eq!(replayed.meta_value("absent"), None);
    }

    #[test]
    fn version_1_files_without_meta_still_read() {
        // A v2 stream minus the meta section *is* a v1 stream: synthesize
        // one by rewriting the version field and splicing out the (empty)
        // meta count, then check the payload replays identically.
        let (requests, store) = sample();
        let mut v2 = Vec::new();
        write_trace(&mut v2, &requests, &store.snapshot()).unwrap();
        let mut v1 = Vec::new();
        v1.extend_from_slice(&TRACE_MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&v2[12..]); // skip magic + version + meta count
        let replayed = read_trace(&mut v1.as_slice()).unwrap();
        assert_eq!(replayed.requests, requests);
        assert_eq!(
            replayed.store.view().to_history(),
            store.view().to_history()
        );
        assert!(replayed.meta.is_empty());
    }
}
