//! The versioned binary trace record/replay format.
//!
//! A recorded trace is a self-contained file: the declared request
//! sequence, both symbol tables, and the packed event stream. Re-reading
//! one rebuilds a [`TraceStore`] with identical symbols and events, so a
//! harness run can be dumped to disk and re-checked bit-for-bit by tests
//! and benches (`tests/corpus/` keeps a small committed corpus).
//!
//! ## Layout (version 2, all integers little-endian)
//!
//! ```text
//! magic    "XTRC" (4 bytes)
//! version  u32                      — TRACE_FORMAT_VERSION
//! meta     u32 count, then per pair:  key u32 len + UTF-8 bytes,
//!                                     value u32 len + UTF-8 bytes
//!                                     (version ≥ 2 only; absent in v1)
//! actions  u32 count, then per name:  kind u8 (0 idem, 1 undo),
//!                                     name  u32 len + UTF-8 bytes
//! values   u32 count, then per value: recursive value encoding (below)
//! requests u32 count, then per req:   role u8 (0 base, 1 cancel, 2 commit),
//!                                     kind u8, name u32 len + UTF-8 bytes
//!                                     (requests are self-contained, not
//!                                     symbol references), input value encoding
//! events   u64 count, then per event: tag u8, action u32 sym, value u32 sym
//! ```
//!
//! Value encoding: a tag byte — 0 `Nil`, 1 `Bool` (+u8), 2 `Int` (+i64),
//! 3 `Str` (+u32 len + bytes), 4 `List` (+u32 count + elements),
//! 5 `Pair` (+two elements) — matching the [`Value`] variants.
//!
//! Version 3 keeps the magic, version, and meta section as-is but wraps
//! everything after them (the *payload*: action table, value table,
//! requests, events) in a codec frame:
//!
//! ```text
//! codec    u8                       — 0 stored, 1 LZ ([`Codec`])
//! raw_len  u64                      — payload length before compression
//! comp_len u64                      — payload length on disk
//! payload  comp_len bytes           — the v2 payload, through the codec
//! ```
//!
//! [`write_trace_with_options`] picks the version from the codec:
//! uncompressed writes stay version 2 — byte-identical to what this crate
//! has always produced, so the committed corpus never churns — and only a
//! real codec engages the version-3 frame. It also records the payload's
//! CRC-32 under the [`META_PAYLOAD_CRC`] meta key; whenever a file carries
//! that key (cold segments always do) the reader recomputes the checksum
//! over the payload bytes it consumed and rejects a mismatch.
//!
//! The version is checked on read; an unknown magic or version is an
//! `InvalidData` error, never a silent misparse. Version 1 files (the
//! same layout minus the meta section) still read, with empty metadata —
//! the committed corpus never goes stale on a format bump.
//!
//! The meta section carries provenance, not semantics: free-form
//! key/value strings (generator name, master seed, fault-plan summary,
//! violation class) written by tools such as `harness::explore`. Checkers
//! never look at it.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use xability_core::{ActionId, ActionKind, ActionName, Request, Value};

use crate::codec::{crc32, lz_compress, lz_decompress, Codec, Crc32};
use crate::store::{EventRepr, TraceSnapshot, TraceStore};

/// The file magic.
pub const TRACE_MAGIC: [u8; 4] = *b"XTRC";

/// The version written for uncompressed traces (the layout every tool in
/// the repo has always produced).
pub const TRACE_FORMAT_VERSION: u32 = 2;

/// The version written when a compression codec is engaged: the same
/// layout with the post-meta payload behind a codec frame.
pub const TRACE_FORMAT_COMPRESSED_VERSION: u32 = 3;

/// The oldest trace format version the reader still accepts.
pub const TRACE_FORMAT_MIN_VERSION: u32 = 1;

/// The newest trace format version the reader accepts.
pub const TRACE_FORMAT_MAX_VERSION: u32 = TRACE_FORMAT_COMPRESSED_VERSION;

/// The meta key holding the payload's CRC-32 (eight lowercase hex
/// digits). Written by [`write_trace_with_options`] and the segment tier;
/// verified on every read that finds it.
pub const META_PAYLOAD_CRC: &str = "payload_crc32";

/// A replayed trace: the declared request sequence plus the rebuilt
/// store.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName, Event, Request, Value};
/// use xability_store::{read_trace, write_trace, TraceStore};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let mut store = TraceStore::new();
/// store.push(&Event::start(a.clone(), Value::from(1)));
/// store.push(&Event::complete(a.clone(), Value::from(5)));
/// let requests = vec![Request::new(a, Value::from(1))];
///
/// let mut bytes = Vec::new();
/// write_trace(&mut bytes, &requests, &store.snapshot()).unwrap();
/// let replayed = read_trace(&mut bytes.as_slice()).unwrap();
/// assert_eq!(replayed.requests, requests);
/// assert_eq!(replayed.store.view().to_history(), store.view().to_history());
/// ```
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    /// The request sequence the trace was recorded against (the R3
    /// question to re-ask on replay).
    pub requests: Vec<Request>,
    /// The rebuilt store, symbol-for-symbol identical to the recorded
    /// one.
    pub store: TraceStore,
    /// Free-form provenance pairs from the file's meta section (empty
    /// for version-1 files). Order is preserved exactly as written.
    pub meta: Vec<(String, String)>,
}

impl RecordedTrace {
    /// Writes the trace (including its `meta` pairs) to `path` (see
    /// [`write_trace_file_with_meta`]).
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_trace_file_with_meta(path, &self.requests, &self.store.snapshot(), &self.meta)
    }

    /// Looks up the first meta value recorded under `key`.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Reads a trace from `path` (see [`read_trace`]).
    pub fn read_from_file(path: impl AsRef<Path>) -> io::Result<RecordedTrace> {
        read_trace(&mut BufReader::new(File::open(path)?))
    }
}

/// Writes a recorded trace to `path` (buffered and flushed) — the one
/// path-based entry point shared by [`RecordedTrace::write_to_file`] and
/// the harness's run dumps.
pub fn write_trace_file(
    path: impl AsRef<Path>,
    requests: &[Request],
    snapshot: &TraceSnapshot,
) -> io::Result<()> {
    write_trace_file_with_meta(path, requests, snapshot, &[])
}

/// [`write_trace_file`] with an explicit provenance meta section.
pub fn write_trace_file_with_meta(
    path: impl AsRef<Path>,
    requests: &[Request],
    snapshot: &TraceSnapshot,
    meta: &[(String, String)],
) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_trace_with_meta(&mut w, requests, snapshot, meta)?;
    w.flush()
}

fn bad(data: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, data.into())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_len<W: Write>(w: &mut W, len: usize, what: &str) -> io::Result<()> {
    let v = u32::try_from(len).map_err(|_| bad(format!("{what} count exceeds u32")))?;
    write_u32(w, v)
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut buf = [0u8; 1];
    r.read_exact(&mut buf)?;
    Ok(buf[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_len(w, s.len(), "string byte")?;
    w.write_all(s.as_bytes())
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    // Grow as bytes actually arrive instead of trusting the length field
    // with an up-front allocation: a corrupt length then fails cleanly on
    // EOF rather than attempting a multi-GiB buffer.
    let mut buf = Vec::with_capacity(len.min(1 << 16));
    let read = r.by_ref().take(len as u64).read_to_end(&mut buf)?;
    if read != len {
        return Err(bad("truncated string"));
    }
    String::from_utf8(buf).map_err(|_| bad("string is not UTF-8"))
}

fn write_value<W: Write>(w: &mut W, value: &Value) -> io::Result<()> {
    write_value_at(w, value, 0)
}

fn write_value_at<W: Write>(w: &mut W, value: &Value, depth: usize) -> io::Result<()> {
    // Enforced symmetrically with the reader: a value too deep for the
    // format fails at *record* time, never producing an unreadable file.
    if depth >= MAX_VALUE_DEPTH {
        return Err(bad(format!(
            "value nesting exceeds the format's depth limit ({MAX_VALUE_DEPTH})"
        )));
    }
    match value {
        Value::Nil => w.write_all(&[0]),
        Value::Bool(b) => w.write_all(&[1, u8::from(*b)]),
        Value::Int(i) => {
            w.write_all(&[2])?;
            w.write_all(&i.to_le_bytes())
        }
        Value::Str(s) => {
            w.write_all(&[3])?;
            write_str(w, s)
        }
        Value::List(items) => {
            w.write_all(&[4])?;
            write_len(w, items.len(), "list element")?;
            for item in items {
                write_value_at(w, item, depth + 1)?;
            }
            Ok(())
        }
        Value::Pair(p) => {
            w.write_all(&[5])?;
            write_value_at(w, &p.0, depth + 1)?;
            write_value_at(w, &p.1, depth + 1)
        }
    }
}

/// Deepest `List`/`Pair` nesting the reader accepts. Real values nest a
/// handful of levels; the cap turns a corrupt run of nesting tags into a
/// clean `InvalidData` instead of a stack-overflow abort.
const MAX_VALUE_DEPTH: usize = 64;

fn read_value<R: Read>(r: &mut R) -> io::Result<Value> {
    read_value_at(r, 0)
}

fn read_value_at<R: Read>(r: &mut R, depth: usize) -> io::Result<Value> {
    if depth >= MAX_VALUE_DEPTH {
        return Err(bad(format!(
            "value nesting exceeds the format's depth limit ({MAX_VALUE_DEPTH})"
        )));
    }
    match read_u8(r)? {
        0 => Ok(Value::Nil),
        1 => Ok(Value::Bool(read_u8(r)? != 0)),
        2 => {
            let mut buf = [0u8; 8];
            r.read_exact(&mut buf)?;
            Ok(Value::Int(i64::from_le_bytes(buf)))
        }
        3 => Ok(Value::Str(read_str(r)?)),
        4 => {
            let count = read_u32(r)? as usize;
            let mut items = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                items.push(read_value_at(r, depth + 1)?);
            }
            Ok(Value::List(items))
        }
        5 => {
            let first = read_value_at(r, depth + 1)?;
            let second = read_value_at(r, depth + 1)?;
            Ok(Value::pair(first, second))
        }
        tag => Err(bad(format!("unknown value tag {tag}"))),
    }
}

fn write_action_id<W: Write>(w: &mut W, action: &ActionId) -> io::Result<()> {
    let (role, name): (u8, &ActionName) = match action {
        ActionId::Base(n) => (0, n),
        ActionId::Cancel(n) => (1, n),
        ActionId::Commit(n) => (2, n),
    };
    w.write_all(&[role, u8::from(name.is_undoable())])?;
    write_str(w, name.name())
}

fn read_action_id<R: Read>(r: &mut R) -> io::Result<ActionId> {
    let role = read_u8(r)?;
    let kind = match read_u8(r)? {
        0 => ActionKind::Idempotent,
        1 => ActionKind::Undoable,
        k => return Err(bad(format!("unknown action kind {k}"))),
    };
    let name = ActionName::new(read_str(r)?, kind);
    if role != 0 && !name.is_undoable() {
        return Err(bad(format!(
            "cancel/commit role on idempotent action {:?} (only undoable actions have derived actions)",
            name.name()
        )));
    }
    match role {
        0 => Ok(ActionId::Base(name)),
        1 => Ok(ActionId::Cancel(name)),
        2 => Ok(ActionId::Commit(name)),
        other => Err(bad(format!("unknown action role {other}"))),
    }
}

/// Writes a recorded trace: the request sequence plus a snapshot's symbol
/// tables and packed event stream.
pub fn write_trace<W: Write>(
    w: &mut W,
    requests: &[Request],
    snapshot: &TraceSnapshot,
) -> io::Result<()> {
    write_trace_with_meta(w, requests, snapshot, &[])
}

/// [`write_trace`] with an explicit provenance meta section (free-form
/// key/value string pairs, written in order).
pub fn write_trace_with_meta<W: Write>(
    w: &mut W,
    requests: &[Request],
    snapshot: &TraceSnapshot,
    meta: &[(String, String)],
) -> io::Result<()> {
    w.write_all(&TRACE_MAGIC)?;
    write_u32(w, TRACE_FORMAT_VERSION)?;

    write_len(w, meta.len(), "meta pair")?;
    for (key, value) in meta {
        write_str(w, key)?;
        write_str(w, value)?;
    }

    write_snapshot_sections(w, requests, snapshot)
}

/// [`write_trace_with_meta`] with a compression codec and an integrity
/// checksum: the payload's CRC-32 is appended to the meta section under
/// [`META_PAYLOAD_CRC`] (callers must not supply that key themselves),
/// and a non-[`Codec::None`] codec switches the file to
/// [`TRACE_FORMAT_COMPRESSED_VERSION`] with the payload behind the codec
/// frame. `Codec::None` output differs from [`write_trace_with_meta`]
/// only by the checksum meta pair.
pub fn write_trace_with_options<W: Write>(
    w: &mut W,
    requests: &[Request],
    snapshot: &TraceSnapshot,
    meta: &[(String, String)],
    codec: Codec,
) -> io::Result<()> {
    let mut sections = Vec::new();
    write_snapshot_sections(&mut sections, requests, snapshot)?;
    write_framed(w, meta, codec, &sections)
}

/// The shared file skeleton behind [`write_trace_with_options`] and the
/// segment tier: magic, the codec-determined version, the caller's meta
/// pairs plus the payload checksum, then `sections` through the codec.
pub(crate) fn write_framed<W: Write>(
    w: &mut W,
    meta: &[(String, String)],
    codec: Codec,
    sections: &[u8],
) -> io::Result<()> {
    let (version, payload) = match codec {
        Codec::None => (TRACE_FORMAT_VERSION, sections.to_vec()),
        Codec::Lz => {
            let comp = lz_compress(sections);
            let mut framed = Vec::with_capacity(comp.len() + 17);
            framed.push(codec.tag());
            framed.extend_from_slice(&(sections.len() as u64).to_le_bytes());
            framed.extend_from_slice(&(comp.len() as u64).to_le_bytes());
            framed.extend_from_slice(&comp);
            (TRACE_FORMAT_COMPRESSED_VERSION, framed)
        }
    };
    let crc = crc32(&payload);

    w.write_all(&TRACE_MAGIC)?;
    write_u32(w, version)?;
    write_len(w, meta.len() + 1, "meta pair")?;
    for (key, value) in meta {
        debug_assert!(
            key != META_PAYLOAD_CRC,
            "the checksum pair is written by the framer"
        );
        write_str(w, key)?;
        write_str(w, value)?;
    }
    write_str(w, META_PAYLOAD_CRC)?;
    write_str(w, &format!("{crc:08x}"))?;
    w.write_all(&payload)
}

/// Writes the payload sections of a whole snapshot (full symbol tables,
/// all events) — the layout every version-2 file carries after its meta
/// section.
fn write_snapshot_sections<W: Write>(
    w: &mut W,
    requests: &[Request],
    snapshot: &TraceSnapshot,
) -> io::Result<()> {
    write_sections(
        w,
        (
            snapshot.interner().action_count(),
            &mut snapshot.interner().actions(),
        ),
        (
            snapshot.interner().value_count(),
            &mut snapshot.interner().values(),
        ),
        requests,
        (
            snapshot.len(),
            &mut (0..snapshot.len()).map(|i| snapshot.repr(i)),
        ),
    )
}

/// Writes the four payload sections from explicit `(count, iterator)`
/// pairs. The segment tier passes *slices* of the interner here (a
/// segment carries only the symbols interned since the previous seal),
/// so each count travels with its iterator rather than being taken from
/// a snapshot.
pub(crate) fn write_sections<W: Write>(
    w: &mut W,
    actions: (usize, &mut dyn Iterator<Item = &ActionName>),
    values: (usize, &mut dyn Iterator<Item = &Value>),
    requests: &[Request],
    events: (usize, &mut dyn Iterator<Item = EventRepr>),
) -> io::Result<()> {
    write_len(w, actions.0, "action symbol")?;
    for name in actions.1 {
        w.write_all(&[u8::from(name.is_undoable())])?;
        write_str(w, name.name())?;
    }

    write_len(w, values.0, "value symbol")?;
    for value in values.1 {
        write_value(w, value)?;
    }

    write_len(w, requests.len(), "request")?;
    for request in requests {
        write_action_id(w, request.action())?;
        write_value(w, request.input())?;
    }

    w.write_all(&(events.0 as u64).to_le_bytes())?;
    for repr in events.1 {
        w.write_all(&[repr.tag_byte()])?;
        write_u32(w, repr.action_symbol())?;
        write_u32(w, repr.value_symbol())?;
    }
    Ok(())
}

/// Reads a recorded trace, rebuilding a [`TraceStore`] whose symbols and
/// events are identical to the recorded ones.
///
/// Fails with `InvalidData` on a bad magic, an unsupported version, an
/// out-of-range symbol, a malformed value/action encoding, or — when the
/// file carries a [`META_PAYLOAD_CRC`] pair — a payload checksum
/// mismatch.
pub fn read_trace<R: Read>(r: &mut R) -> io::Result<RecordedTrace> {
    let (version, meta) = read_header(r)?;
    let raw = read_checked_body(r, version, &meta)?;

    let mut store = TraceStore::new();
    let action_count = raw.actions.len();
    for name in &raw.actions {
        store.interner_mut().intern_action(name);
    }
    if store.interner().action_count() != action_count {
        return Err(bad("duplicate action name in symbol table"));
    }
    let value_count = raw.values.len();
    for value in &raw.values {
        store.interner_mut().intern_value(value);
    }
    if store.interner().value_count() != value_count {
        return Err(bad("duplicate value in symbol table"));
    }
    for repr in raw.events {
        store.push_repr(repr).map_err(bad)?;
    }

    Ok(RecordedTrace {
        requests: raw.requests,
        store,
        meta,
    })
}

/// Parses the file prelude: magic, version (range-checked), and the meta
/// section (absent in version 1).
pub(crate) fn read_header<R: Read>(r: &mut R) -> io::Result<(u32, Vec<(String, String)>)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != TRACE_MAGIC {
        return Err(bad("not a trace file (bad magic)"));
    }
    let version = read_u32(r)?;
    if !(TRACE_FORMAT_MIN_VERSION..=TRACE_FORMAT_MAX_VERSION).contains(&version) {
        return Err(bad(format!(
            "unsupported trace format version {version} (this build reads \
             {TRACE_FORMAT_MIN_VERSION}..={TRACE_FORMAT_MAX_VERSION})"
        )));
    }

    // The meta section arrived in version 2; v1 files go straight to the
    // action symbol table.
    let mut meta = Vec::new();
    if version >= 2 {
        let meta_count = read_u32(r)? as usize;
        meta.reserve(meta_count.min(1 << 12));
        for _ in 0..meta_count {
            let key = read_str(r)?;
            let value = read_str(r)?;
            meta.push((key, value));
        }
    }
    Ok((version, meta))
}

/// Reads the payload after a parsed header, verifying its checksum when
/// `meta` carries a [`META_PAYLOAD_CRC`] pair: the post-meta bytes are
/// hashed exactly as they stream off `r` and compared before anything
/// parsed from them is returned.
pub(crate) fn read_checked_body<R: Read>(
    r: &mut R,
    version: u32,
    meta: &[(String, String)],
) -> io::Result<RawSections> {
    let expected = match meta.iter().find(|(k, _)| k == META_PAYLOAD_CRC) {
        Some((_, hex)) => Some(
            u32::from_str_radix(hex, 16)
                .map_err(|_| bad(format!("malformed {META_PAYLOAD_CRC} meta value {hex:?}")))?,
        ),
        None => None,
    };
    let mut hashed = Crc32Reader {
        inner: r,
        crc: Crc32::new(),
    };
    let raw = read_body(&mut hashed, version)?;
    if let Some(want) = expected {
        let got = hashed.crc.finish();
        if got != want {
            return Err(bad(format!(
                "payload checksum mismatch: recorded {want:08x}, computed {got:08x}"
            )));
        }
    }
    Ok(raw)
}

/// A pass-through reader folding every byte it delivers into a CRC-32.
struct Crc32Reader<R> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> Read for Crc32Reader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

/// The payload of a trace file, parsed but not yet interned: the raw
/// symbol tables, the self-contained requests, and the packed events.
///
/// [`read_trace`] rebuilds a [`TraceStore`] from one of these (validating
/// symbol ranges as it interns); the segment tier consumes them raw,
/// because a delta segment's events reference symbols from *earlier*
/// segments that a single file cannot resolve alone.
#[derive(Debug)]
pub(crate) struct RawSections {
    pub(crate) actions: Vec<ActionName>,
    pub(crate) values: Vec<Value>,
    pub(crate) requests: Vec<Request>,
    pub(crate) events: Vec<EventRepr>,
}

/// Reads the post-meta payload: directly for versions 1–2, through the
/// codec frame for version 3.
fn read_body<R: Read>(r: &mut R, version: u32) -> io::Result<RawSections> {
    if version < TRACE_FORMAT_COMPRESSED_VERSION {
        return read_sections(r);
    }
    let codec =
        Codec::from_tag(read_u8(r)?).ok_or_else(|| bad("unknown codec tag in compressed trace"))?;
    let raw_len = read_u64(r)? as usize;
    let comp_len = read_u64(r)?;
    let mut comp = Vec::with_capacity((comp_len as usize).min(1 << 20));
    let got = r.take(comp_len).read_to_end(&mut comp)?;
    if got as u64 != comp_len {
        return Err(bad("truncated compressed payload"));
    }
    let sections = match codec {
        Codec::None => {
            if raw_len != comp.len() {
                return Err(bad("stored payload length disagrees with its frame"));
            }
            comp
        }
        Codec::Lz => lz_decompress(&comp, raw_len).map_err(bad)?,
    };
    read_sections(&mut sections.as_slice())
}

/// Parses the four payload sections without interning anything.
pub(crate) fn read_sections<R: Read>(r: &mut R) -> io::Result<RawSections> {
    let action_count = read_u32(r)? as usize;
    let mut actions = Vec::with_capacity(action_count.min(1 << 16));
    for _ in 0..action_count {
        let kind = match read_u8(r)? {
            0 => ActionKind::Idempotent,
            1 => ActionKind::Undoable,
            k => return Err(bad(format!("unknown action kind {k}"))),
        };
        actions.push(ActionName::new(read_str(r)?, kind));
    }

    let value_count = read_u32(r)? as usize;
    let mut values = Vec::with_capacity(value_count.min(1 << 16));
    for _ in 0..value_count {
        values.push(read_value(r)?);
    }

    let request_count = read_u32(r)? as usize;
    let mut requests = Vec::with_capacity(request_count.min(1 << 16));
    for _ in 0..request_count {
        let action = read_action_id(r)?;
        let input = read_value(r)?;
        requests.push(Request::new(action, input));
    }

    let event_count = read_u64(r)?;
    let mut events = Vec::with_capacity((event_count as usize).min(1 << 20));
    for _ in 0..event_count {
        let tag = read_u8(r)?;
        let action = read_u32(r)?;
        let value = read_u32(r)?;
        let repr = EventRepr::from_parts(tag, action, value)
            .ok_or_else(|| bad(format!("malformed event tag {tag:#04x}")))?;
        events.push(repr);
    }

    Ok(RawSections {
        actions,
        values,
        requests,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xability_core::xable::{Checker, FastChecker};
    use xability_core::{Event, History};

    fn sample() -> (Vec<Request>, TraceStore) {
        let u = ActionId::base(ActionName::undoable("xfer"));
        let cancel = u.cancel().unwrap();
        let b = ActionId::base(ActionName::idempotent("get"));
        let h: History = [
            Event::start(u.clone(), Value::from(1)),
            Event::start(cancel.clone(), Value::from(1)),
            Event::complete(cancel, Value::Nil),
            Event::start(u.clone(), Value::from(1)),
            Event::complete(u.clone(), Value::from(7)),
            Event::start(u.commit().unwrap(), Value::from(1)),
            Event::complete(u.commit().unwrap(), Value::Nil),
            Event::start(
                b.clone(),
                Value::list([Value::pair(Value::from("k"), Value::from(2))]),
            ),
            Event::complete(b.clone(), Value::from("ok")),
        ]
        .into_iter()
        .collect();
        let requests = vec![
            Request::new(u, Value::from(1)),
            Request::new(
                b,
                Value::list([Value::pair(Value::from("k"), Value::from(2))]),
            ),
        ];
        (requests, TraceStore::from_history(&h))
    }

    #[test]
    fn round_trip_preserves_requests_symbols_and_events() {
        let (requests, store) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &requests, &store.snapshot()).unwrap();
        let replayed = read_trace(&mut bytes.as_slice()).unwrap();
        assert_eq!(replayed.requests, requests);
        assert_eq!(replayed.store.len(), store.len());
        assert_eq!(
            replayed.store.interner().action_count(),
            store.interner().action_count()
        );
        assert_eq!(
            replayed.store.interner().value_count(),
            store.interner().value_count()
        );
        assert_eq!(
            replayed.store.view().to_history(),
            store.view().to_history()
        );
    }

    #[test]
    fn replayed_trace_rechecks_identically() {
        let (requests, store) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &requests, &store.snapshot()).unwrap();
        let replayed = read_trace(&mut bytes.as_slice()).unwrap();
        let checker = FastChecker::default();
        assert_eq!(
            checker.check_requests_source(&store.view(), &requests),
            checker.check_requests_source(&replayed.store.view(), &replayed.requests),
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&mut &b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&(TRACE_FORMAT_MAX_VERSION + 1).to_le_bytes());
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn compressed_trace_round_trips_and_rechecks() {
        let (requests, store) = sample();
        let mut plain = Vec::new();
        write_trace(&mut plain, &requests, &store.snapshot()).unwrap();
        for codec in [Codec::None, Codec::Lz] {
            let mut bytes = Vec::new();
            write_trace_with_options(&mut bytes, &requests, &store.snapshot(), &[], codec).unwrap();
            let replayed =
                read_trace(&mut bytes.as_slice()).unwrap_or_else(|e| panic!("codec {codec}: {e}"));
            assert_eq!(replayed.requests, requests, "codec {codec}");
            assert_eq!(
                replayed.store.view().to_history(),
                store.view().to_history(),
                "codec {codec}"
            );
            assert!(
                replayed.meta_value(META_PAYLOAD_CRC).is_some(),
                "codec {codec}: the framer records the payload checksum"
            );
            let checker = FastChecker::default();
            assert_eq!(
                checker.check_requests_source(&store.view(), &requests),
                checker.check_requests_source(&replayed.store.view(), &replayed.requests),
                "codec {codec}"
            );
        }
    }

    #[test]
    fn lz_codec_shrinks_a_repetitive_trace() {
        let a = ActionId::base(ActionName::idempotent("put"));
        let mut store = TraceStore::new();
        for i in 0..2_000i64 {
            store.push(&Event::start(a.clone(), Value::from(i % 8)));
            store.push(&Event::complete(a.clone(), Value::from(i % 8)));
        }
        let mut plain = Vec::new();
        write_trace_with_options(&mut plain, &[], &store.snapshot(), &[], Codec::None).unwrap();
        let mut packed = Vec::new();
        write_trace_with_options(&mut packed, &[], &store.snapshot(), &[], Codec::Lz).unwrap();
        assert!(
            packed.len() * 4 < plain.len(),
            "{} -> {} bytes",
            plain.len(),
            packed.len()
        );
    }

    #[test]
    fn payload_corruption_is_caught_by_the_checksum() {
        let (requests, store) = sample();
        for codec in [Codec::None, Codec::Lz] {
            let mut bytes = Vec::new();
            write_trace_with_options(&mut bytes, &requests, &store.snapshot(), &[], codec).unwrap();
            // Flip one byte in the payload (well past the header+meta).
            let n = bytes.len();
            let mut corrupt = bytes.clone();
            corrupt[n - 3] ^= 0x41;
            let err = read_trace(&mut corrupt.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "codec {codec}");
        }
    }

    #[test]
    fn malformed_checksum_meta_is_rejected() {
        let (requests, store) = sample();
        let meta = vec![(META_PAYLOAD_CRC.to_string(), "not-hex".to_string())];
        let mut bytes = Vec::new();
        write_trace_with_meta(&mut bytes, &requests, &store.snapshot(), &meta).unwrap();
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
    }

    #[test]
    fn out_of_range_symbol_is_rejected() {
        let (requests, store) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &requests, &store.snapshot()).unwrap();
        // Corrupt the last event's value symbol (last 4 bytes).
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("value symbol"), "{err}");
    }

    #[test]
    fn runaway_value_nesting_is_rejected_not_a_stack_overflow() {
        // A value section that is one long run of Pair tags would recurse
        // once per byte without the depth cap.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no meta
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no actions
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one value…
        bytes.extend(std::iter::repeat(5u8).take(100_000)); // …of nested Pairs
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("depth"), "{err}");
    }

    #[test]
    fn over_deep_value_fails_at_record_time_not_replay_time() {
        // The depth cap is symmetric: a value the reader would reject is
        // refused by the writer, so no unreadable file is ever produced.
        let mut deep = Value::Nil;
        for _ in 0..100 {
            deep = Value::pair(deep, Value::Nil);
        }
        let a = ActionId::base(ActionName::idempotent("a"));
        let mut store = TraceStore::new();
        store.push(&Event::start(a, deep));
        let mut bytes = Vec::new();
        let err = write_trace(&mut bytes, &[], &store.snapshot()).unwrap_err();
        assert!(err.to_string().contains("depth"), "{err}");
    }

    #[test]
    fn cancel_role_on_idempotent_action_is_rejected() {
        // Hand-built trace: one idempotent action, one Nil value, one
        // event whose tag claims a cancel role — unconstructible via the
        // core API, so the reader must refuse it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no meta
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one action:
        bytes.push(0); // idempotent
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'a');
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one value:
        bytes.push(0); // Nil
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no requests
        bytes.extend_from_slice(&1u64.to_le_bytes()); // one event:
        bytes.push(0b010); // start, ROLE_CANCEL
        bytes.extend_from_slice(&0u32.to_le_bytes()); // action 0
        bytes.extend_from_slice(&0u32.to_le_bytes()); // value 0
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("idempotent"), "{err}");

        // Same impossible combination in the request section.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no meta
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no actions
        bytes.extend_from_slice(&0u32.to_le_bytes()); // no values
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one request:
        bytes.push(1); // cancel role…
        bytes.push(0); // …of an idempotent name
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'a');
        bytes.push(0); // Nil input
        bytes.extend_from_slice(&0u64.to_le_bytes()); // no events
        let err = read_trace(&mut bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("idempotent"), "{err}");
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_panic() {
        let (requests, store) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &requests, &store.snapshot()).unwrap();
        for cut in [3, 7, 12, bytes.len() - 1] {
            assert!(read_trace(&mut &bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn file_round_trip() {
        let (requests, store) = sample();
        let dir = std::env::temp_dir().join("xability-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.xtrace");
        let recorded = RecordedTrace {
            requests: requests.clone(),
            store: store.clone(),
            meta: vec![("generator".to_string(), "unit-test".to_string())],
        };
        recorded.write_to_file(&path).unwrap();
        let replayed = RecordedTrace::read_from_file(&path).unwrap();
        assert_eq!(replayed.requests, requests);
        assert_eq!(
            replayed.store.view().to_history(),
            store.view().to_history()
        );
        assert_eq!(replayed.meta, recorded.meta);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn meta_section_round_trips_in_order() {
        let (requests, store) = sample();
        let meta = vec![
            ("generator".to_string(), "explore".to_string()),
            ("master_seed".to_string(), "42".to_string()),
            ("master_seed".to_string(), "shadowed".to_string()),
        ];
        let mut bytes = Vec::new();
        write_trace_with_meta(&mut bytes, &requests, &store.snapshot(), &meta).unwrap();
        let replayed = read_trace(&mut bytes.as_slice()).unwrap();
        assert_eq!(replayed.meta, meta);
        // Lookup returns the *first* pair under a duplicated key.
        assert_eq!(replayed.meta_value("master_seed"), Some("42"));
        assert_eq!(replayed.meta_value("absent"), None);
    }

    #[test]
    fn version_1_files_without_meta_still_read() {
        // A v2 stream minus the meta section *is* a v1 stream: synthesize
        // one by rewriting the version field and splicing out the (empty)
        // meta count, then check the payload replays identically.
        let (requests, store) = sample();
        let mut v2 = Vec::new();
        write_trace(&mut v2, &requests, &store.snapshot()).unwrap();
        let mut v1 = Vec::new();
        v1.extend_from_slice(&TRACE_MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&v2[12..]); // skip magic + version + meta count
        let replayed = read_trace(&mut v1.as_slice()).unwrap();
        assert_eq!(replayed.requests, requests);
        assert_eq!(
            replayed.store.view().to_history(),
            store.view().to_history()
        );
        assert!(replayed.meta.is_empty());
    }
}
