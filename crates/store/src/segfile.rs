//! The durable cold-segment chain: append-only `.xtrace` files with
//! crash-safe sealing and longest-valid-prefix recovery.
//!
//! A [`SegmentLog`] owns a directory of sealed segment files,
//! `seg-000000.xtrace`, `seg-000001.xtrace`, … Each file is a versioned
//! trace file (see [`crate::trace`]) whose meta section carries the
//! segment's provenance — its position in the chain, the global index of
//! its first event, and the *interner epochs* it builds on — and whose
//! payload holds a **delta** symbol table plus the segment's packed
//! events:
//!
//! * the action/value tables contain only the symbols interned since the
//!   previous seal (the epochs in the meta say how many came before), so
//!   a chain over an unbounded key space stays O(total symbols) on disk
//!   instead of O(segments × symbols);
//! * the events reference *global* symbols, exactly as they sit in RAM.
//!
//! The first segment's epochs are zero, so `seg-000000.xtrace` is a plain
//! self-contained trace any `read_trace` consumer can open; later
//! segments resolve only against the chain.
//!
//! ## Crash safety
//!
//! A seal writes `<name>.tmp`, fsyncs it, renames it into place, and
//! best-effort-fsyncs the directory — a crash can leave a stale `.tmp`
//! (removed on recovery) but never a half-visible segment under the real
//! name. [`SegmentLog::open`] recovers the longest valid prefix: it walks
//! the files in index order, checks each payload checksum and the chain
//! invariants (contiguous indices, contiguous event ranges, epochs equal
//! to the rebuilt interner's counts), and **quarantines** the first bad
//! segment (renamed `*.torn`) along with everything after it (`*.orphan`)
//! — corrupt data is set aside for inspection, never deleted. The
//! durability policy is event-count based (a seal every
//! `spill_threshold` events, fsync on seal), never wall-clock based, so
//! the store crate stays clean under the workspace's
//! `determinism-wall-clock` lint.

use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use xability_core::{Interner, InternerReader};

use crate::codec::Codec;
use crate::store::EventRepr;
use crate::trace::{read_checked_body, read_header, write_framed, write_sections};

/// Meta key: the segment's position in the chain.
const META_SEG_INDEX: &str = "seg.index";
/// Meta key: the global index of the segment's first event.
const META_SEG_FIRST_EVENT: &str = "seg.first_event";
/// Meta key: how many events the segment holds.
const META_SEG_EVENTS: &str = "seg.events";
/// Meta key: action symbols interned before this segment (its epoch).
const META_SEG_ACTION_BASE: &str = "seg.action_base";
/// Meta key: value symbols interned before this segment (its epoch).
const META_SEG_VALUE_BASE: &str = "seg.value_base";
/// Meta key: the codec name, for humans and config cross-checks.
const META_SEG_CODEC: &str = "seg.codec";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The provenance of one sealed segment, as recorded in its meta section.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// Position in the chain (also the file-name index).
    pub index: usize,
    /// Global index of the segment's first event.
    pub first_event: usize,
    /// How many events the segment holds.
    pub events: usize,
    /// Action symbols interned before this segment.
    pub action_base: usize,
    /// Value symbols interned before this segment.
    pub value_base: usize,
    /// The codec its payload was written with.
    pub codec: Codec,
    /// The sealed file.
    pub path: PathBuf,
    /// On-disk size in bytes (after compression, if any).
    pub bytes: u64,
}

/// A cold segment loaded back into memory: the packed events, resident
/// once, shared by every view through an `Arc`.
#[derive(Debug)]
pub struct LoadedSegment {
    /// Global index of the first event.
    pub first_event: usize,
    /// The packed events, global-symbol addressed.
    pub events: Vec<EventRepr>,
}

/// What [`SegmentLog::open`] found and did: how much of the chain was
/// recovered and which files were set aside.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Segments that validated and joined the recovered chain.
    pub segments_recovered: usize,
    /// Events across the recovered segments.
    pub events_recovered: usize,
    /// Files quarantined (`*.torn` for the first invalid segment, followed
    /// by `*.orphan` for every later one): the new names, in chain order.
    pub quarantined: Vec<PathBuf>,
    /// Stale `seg-*.tmp` files from interrupted seals, removed.
    pub removed_tmp: Vec<PathBuf>,
}

/// Everything [`SegmentLog::open`] recovers from a segment directory.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The log, positioned to keep sealing after the recovered prefix.
    pub log: SegmentLog,
    /// The interner rebuilt by chaining the segments' delta tables — the
    /// same symbols, in the same order, as the interner that sealed them.
    pub interner: Interner,
    /// The recovered segments' events, in chain order, checksum-verified.
    pub segments: Vec<LoadedSegment>,
    /// What was recovered, quarantined, and cleaned up.
    pub report: RecoveryReport,
}

/// An append-only chain of sealed segment files in one directory.
///
/// The log tracks where the chain ends (next event index, interner
/// epochs); [`SegmentLog::seal`] appends one atomically-written segment,
/// [`SegmentLog::load`] reads one back with its checksum verified, and
/// [`SegmentLog::open`] recovers a chain after a crash.
#[derive(Debug)]
pub struct SegmentLog {
    dir: PathBuf,
    codec: Codec,
    segments: Vec<SegmentInfo>,
    next_first_event: usize,
    action_base: usize,
    value_base: usize,
}

fn segment_file_name(index: usize) -> String {
    format!("seg-{index:06}.xtrace")
}

/// Parses `seg-NNNNNN.xtrace` into its index; other names (the requests
/// manifest, quarantined files, foreign files) return `None`.
fn parse_segment_name(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".xtrace")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn meta_usize(meta: &[(String, String)], key: &str) -> io::Result<usize> {
    let (_, v) = meta
        .iter()
        .find(|(k, _)| k == key)
        .ok_or_else(|| bad(format!("segment meta is missing {key}")))?;
    v.parse()
        .map_err(|_| bad(format!("segment meta {key} is not a count: {v:?}")))
}

impl SegmentLog {
    /// Starts a fresh chain in `dir` (created if absent).
    ///
    /// # Errors
    ///
    /// Fails if `dir` already holds segment files — recovering an
    /// existing chain is [`SegmentLog::open`]'s job, and silently
    /// shadowing one would orphan its data.
    pub fn create(dir: impl AsRef<Path>, codec: Codec) -> io::Result<SegmentLog> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let name = entry?.file_name();
            if name
                .to_str()
                .is_some_and(|n| parse_segment_name(n).is_some())
            {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!(
                        "{} already holds a segment chain; open it instead of creating over it",
                        dir.display()
                    ),
                ));
            }
        }
        Ok(SegmentLog {
            dir,
            codec,
            segments: Vec::new(),
            next_first_event: 0,
            action_base: 0,
            value_base: 0,
        })
    }

    /// The directory the chain lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sealed segments, in chain order.
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.segments
    }

    /// The global index the next sealed event will get (= total events
    /// sealed so far).
    pub fn next_first_event(&self) -> usize {
        self.next_first_event
    }

    /// Total on-disk bytes across the sealed segments.
    pub fn disk_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Seals `count` events (yielded by `events`, global-symbol packed)
    /// into the next segment file, atomically: write to `.tmp`, fsync,
    /// rename into place, best-effort directory fsync.
    ///
    /// `interner` must be a reader over the interner that produced the
    /// events' symbols, taken at or after the last event of the batch;
    /// the segment records the symbols interned since the previous seal
    /// as its delta table.
    pub fn seal(
        &mut self,
        interner: &InternerReader,
        count: usize,
        events: &mut dyn Iterator<Item = EventRepr>,
    ) -> io::Result<()> {
        let (actions, values) = (interner.action_count(), interner.value_count());
        if actions < self.action_base || values < self.value_base {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "interner reader is older than the chain's epochs (stale snapshot)",
            ));
        }

        let mut sections = Vec::new();
        write_sections(
            &mut sections,
            (
                actions - self.action_base,
                &mut interner.actions().skip(self.action_base),
            ),
            (
                values - self.value_base,
                &mut interner.values().skip(self.value_base),
            ),
            &[],
            (count, events),
        )?;

        let index = self.segments.len();
        let meta = vec![
            (META_SEG_INDEX.to_string(), index.to_string()),
            (
                META_SEG_FIRST_EVENT.to_string(),
                self.next_first_event.to_string(),
            ),
            (META_SEG_EVENTS.to_string(), count.to_string()),
            (
                META_SEG_ACTION_BASE.to_string(),
                self.action_base.to_string(),
            ),
            (META_SEG_VALUE_BASE.to_string(), self.value_base.to_string()),
            (META_SEG_CODEC.to_string(), self.codec.name().to_string()),
        ];

        let path = self.dir.join(segment_file_name(index));
        let tmp = self.dir.join(format!("{}.tmp", segment_file_name(index)));
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        write_framed(&mut w, &meta, self.codec, &sections)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        drop(w);
        fs::rename(&tmp, &path)?;
        // Make the rename itself durable where the platform allows
        // opening a directory; declining is not a correctness problem
        // (recovery tolerates a missing tail segment).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }

        let bytes = fs::metadata(&path)?.len();
        self.segments.push(SegmentInfo {
            index,
            first_event: self.next_first_event,
            events: count,
            action_base: self.action_base,
            value_base: self.value_base,
            codec: self.codec,
            path,
            bytes,
        });
        self.next_first_event += count;
        self.action_base = actions;
        self.value_base = values;
        Ok(())
    }

    /// Reads one sealed segment back, checksum-verified.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn load(&self, index: usize) -> io::Result<LoadedSegment> {
        let info = &self.segments[index];
        let mut r = BufReader::new(File::open(&info.path)?);
        let (version, meta) = read_header(&mut r)?;
        let raw = read_checked_body(&mut r, version, &meta)?;
        if raw.events.len() != info.events {
            return Err(bad(format!(
                "{} holds {} events, chain expected {}",
                info.path.display(),
                raw.events.len(),
                info.events
            )));
        }
        Ok(LoadedSegment {
            first_event: info.first_event,
            events: raw.events,
        })
    }

    /// Recovers the chain in `dir` (created if absent): the longest valid
    /// prefix of segments joins the log, the first invalid segment and
    /// everything after it are quarantined, stale `.tmp` files are
    /// removed. See the module docs for the invariants checked.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<RecoveredLog> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut report = RecoveryReport::default();
        let mut found: Vec<(usize, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with("seg-") && name.ends_with(".tmp") {
                fs::remove_file(&path)?;
                report.removed_tmp.push(path);
                continue;
            }
            if let Some(index) = parse_segment_name(name) {
                found.push((index, path));
            }
        }
        found.sort_by_key(|(index, _)| *index);
        report.removed_tmp.sort();

        let mut interner = Interner::new();
        let mut segments: Vec<LoadedSegment> = Vec::new();
        let mut infos: Vec<SegmentInfo> = Vec::new();
        let mut next_first_event = 0usize;
        let mut codec = Codec::default();
        let mut broken = false;
        let mut torn_pending = false;

        for (position, (index, path)) in found.iter().enumerate() {
            if !broken {
                if *index != position {
                    // A gap: the chain ends at the hole, whatever follows
                    // cannot be stitched on — everything past it is an
                    // orphan (the torn file is the missing one).
                    broken = true;
                } else {
                    match validate_segment(path, position, next_first_event, &mut interner) {
                        Ok((info, loaded)) => {
                            next_first_event += loaded.events.len();
                            report.segments_recovered += 1;
                            report.events_recovered += loaded.events.len();
                            codec = info.codec;
                            segments.push(loaded);
                            infos.push(info);
                            continue;
                        }
                        Err(_) => {
                            // This file itself failed validation: the
                            // torn point; the rest become orphans.
                            broken = true;
                            torn_pending = true;
                        }
                    }
                }
            }
            let suffix = if torn_pending { "torn" } else { "orphan" };
            torn_pending = false;
            let mut name = path.as_os_str().to_owned();
            name.push(".");
            name.push(suffix);
            let quarantined = PathBuf::from(name);
            fs::rename(path, &quarantined)?;
            report.quarantined.push(quarantined);
        }

        let (action_base, value_base) = (interner.action_count(), interner.value_count());
        Ok(RecoveredLog {
            log: SegmentLog {
                dir,
                codec,
                segments: infos,
                next_first_event,
                action_base,
                value_base,
            },
            interner,
            segments,
            report,
        })
    }
}

/// Validates one segment against the chain recovered so far, folding its
/// delta symbol tables into `interner` on success. Any failure — checksum
/// mismatch, truncation, provenance that contradicts the chain, symbols a
/// segment's events cannot resolve — is an error (the caller quarantines).
///
/// On failure the interner may hold a prefix of the bad segment's delta;
/// that is harmless, because recovery stops at the first bad segment and
/// extra unreferenced symbols change no recovered event.
fn validate_segment(
    path: &Path,
    expected_index: usize,
    expected_first_event: usize,
    interner: &mut Interner,
) -> io::Result<(SegmentInfo, LoadedSegment)> {
    let mut r = BufReader::new(File::open(path)?);
    let (version, meta) = read_header(&mut r)?;

    let index = meta_usize(&meta, META_SEG_INDEX)?;
    let first_event = meta_usize(&meta, META_SEG_FIRST_EVENT)?;
    let event_count = meta_usize(&meta, META_SEG_EVENTS)?;
    let action_base = meta_usize(&meta, META_SEG_ACTION_BASE)?;
    let value_base = meta_usize(&meta, META_SEG_VALUE_BASE)?;
    let codec = meta
        .iter()
        .find(|(k, _)| k == META_SEG_CODEC)
        .and_then(|(_, v)| Codec::from_name(v))
        .ok_or_else(|| bad("segment meta is missing a known seg.codec"))?;

    if index != expected_index {
        return Err(bad(format!(
            "segment claims index {index}, chain position is {expected_index}"
        )));
    }
    if first_event != expected_first_event {
        return Err(bad(format!(
            "segment claims first event {first_event}, chain has sealed {expected_first_event}"
        )));
    }
    if action_base != interner.action_count() || value_base != interner.value_count() {
        return Err(bad(format!(
            "segment epochs ({action_base} actions, {value_base} values) disagree with the \
             rebuilt interner ({}, {})",
            interner.action_count(),
            interner.value_count()
        )));
    }

    // The checksum over the payload bytes is verified here, before any of
    // the parsed content is trusted.
    let raw = read_checked_body(&mut r, version, &meta)?;
    if raw.events.len() != event_count {
        return Err(bad(format!(
            "segment declares {event_count} events in its meta but holds {}",
            raw.events.len()
        )));
    }
    if !raw.requests.is_empty() {
        return Err(bad("segment files carry no requests"));
    }

    // Chain the delta tables: a symbol already present would shift every
    // later symbol and silently corrupt the chain, so it is an error.
    for name in &raw.actions {
        interner.intern_action(name);
    }
    if interner.action_count() != action_base + raw.actions.len() {
        return Err(bad("segment delta repeats an already-interned action"));
    }
    for value in &raw.values {
        interner.intern_value(value);
    }
    if interner.value_count() != value_base + raw.values.len() {
        return Err(bad("segment delta repeats an already-interned value"));
    }

    // Every event must resolve against the chain up to and including this
    // segment's delta, with a role an idempotent action cannot have.
    for repr in &raw.events {
        if repr.action_symbol() as usize >= interner.action_count()
            || repr.value_symbol() as usize >= interner.value_count()
        {
            return Err(bad(format!(
                "segment event references symbol ({}, {}) beyond the chain's tables",
                repr.action_symbol(),
                repr.value_symbol()
            )));
        }
        if repr.role() != 0 && !interner.action(repr.action_symbol()).is_undoable() {
            return Err(bad(
                "segment event has a cancel/commit role for an idempotent action",
            ));
        }
    }

    let bytes = fs::metadata(path)?.len();
    Ok((
        SegmentInfo {
            index,
            first_event,
            events: event_count,
            action_base,
            value_base,
            codec,
            path: path.to_path_buf(),
            bytes,
        },
        LoadedSegment {
            first_event,
            events: raw.events,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TraceStore;
    use crate::trace::read_trace;
    use xability_core::{ActionId, ActionName, Event, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xability-segfile-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn sample_store(events: usize) -> TraceStore {
        let a = ActionId::base(ActionName::idempotent("put"));
        let mut store = TraceStore::new();
        for i in 0..events as i64 {
            let value = Value::pair(Value::from("key"), Value::from(i / 2));
            if i % 2 == 0 {
                store.push(&Event::start(a.clone(), value));
            } else {
                store.push(&Event::complete(a.clone(), value));
            }
        }
        store
    }

    fn seal_in_chunks(log: &mut SegmentLog, store: &TraceStore, chunk: usize) {
        let snap = store.snapshot();
        let mut at = 0;
        while at < snap.len() {
            let end = (at + chunk).min(snap.len());
            log.seal(
                snap.interner(),
                end - at,
                &mut (at..end).map(|i| snap.repr(i)),
            )
            .expect("seal chunk");
            at = end;
        }
    }

    #[test]
    fn seal_load_round_trips_in_chunks() {
        let dir = tmpdir("roundtrip");
        let store = sample_store(20);
        let mut log = SegmentLog::create(&dir, Codec::None).expect("create");
        seal_in_chunks(&mut log, &store, 6);
        assert_eq!(log.segments().len(), 4); // 6+6+6+2
        assert_eq!(log.next_first_event(), 20);
        assert!(log.disk_bytes() > 0);
        let snap = store.snapshot();
        let mut global = 0usize;
        for i in 0..log.segments().len() {
            let seg = log.load(i).expect("load");
            assert_eq!(seg.first_event, global);
            for repr in &seg.events {
                assert_eq!(*repr, snap.repr(global));
                global += 1;
            }
        }
        assert_eq!(global, 20);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn base_segment_is_a_plain_trace_file() {
        // The first segment has zero epochs and a full (so-far) symbol
        // table, so ordinary trace tooling opens it directly.
        let dir = tmpdir("plain");
        let store = sample_store(8);
        let mut log = SegmentLog::create(&dir, Codec::None).expect("create");
        seal_in_chunks(&mut log, &store, 8);
        let path = &log.segments()[0].path;
        let replayed = read_trace(&mut BufReader::new(File::open(path).expect("open")))
            .expect("a base segment reads as a normal trace");
        assert_eq!(replayed.store.len(), 8);
        assert_eq!(
            replayed.store.view().to_history(),
            store.view().to_history()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_recovers_the_chain_and_rebuilds_the_interner() {
        let dir = tmpdir("recover");
        let store = sample_store(30);
        let mut log = SegmentLog::create(&dir, Codec::Lz).expect("create");
        seal_in_chunks(&mut log, &store, 10);
        let recovered = SegmentLog::open(&dir).expect("open");
        assert_eq!(recovered.report.segments_recovered, 3);
        assert_eq!(recovered.report.events_recovered, 30);
        assert!(recovered.report.quarantined.is_empty());
        assert_eq!(
            recovered.interner.action_count(),
            store.interner().action_count()
        );
        assert_eq!(
            recovered.interner.value_count(),
            store.interner().value_count()
        );
        // Symbols rebuilt in the same order → same reprs.
        let snap = store.snapshot();
        let mut global = 0usize;
        for seg in &recovered.segments {
            for repr in &seg.events {
                assert_eq!(*repr, snap.repr(global));
                global += 1;
            }
        }
        // The recovered log keeps sealing where the chain left off.
        assert_eq!(recovered.log.next_first_event(), 30);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_is_quarantined_with_its_orphans() {
        let dir = tmpdir("quarantine");
        let store = sample_store(30);
        let mut log = SegmentLog::create(&dir, Codec::None).expect("create");
        seal_in_chunks(&mut log, &store, 10);
        // Flip a byte in the middle segment's payload.
        let victim = log.segments()[1].path.clone();
        let mut bytes = fs::read(&victim).expect("read victim");
        let n = bytes.len();
        bytes[n - 5] ^= 0xFF;
        fs::write(&victim, &bytes).expect("corrupt victim");

        let recovered = SegmentLog::open(&dir).expect("open");
        assert_eq!(recovered.report.segments_recovered, 1);
        assert_eq!(recovered.report.events_recovered, 10);
        assert_eq!(recovered.report.quarantined.len(), 2);
        assert!(recovered.report.quarantined[0]
            .to_string_lossy()
            .ends_with(".torn"));
        assert!(recovered.report.quarantined[1]
            .to_string_lossy()
            .ends_with(".orphan"));
        // Quarantined, not deleted.
        for q in &recovered.report.quarantined {
            assert!(q.exists(), "{} must survive for inspection", q.display());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gap_in_the_chain_orphans_the_far_side() {
        let dir = tmpdir("gap");
        let store = sample_store(30);
        let mut log = SegmentLog::create(&dir, Codec::None).expect("create");
        seal_in_chunks(&mut log, &store, 10);
        fs::remove_file(&log.segments()[1].path).expect("remove middle segment");
        let recovered = SegmentLog::open(&dir).expect("open");
        assert_eq!(recovered.report.segments_recovered, 1);
        assert_eq!(recovered.report.quarantined.len(), 1);
        assert!(recovered.report.quarantined[0]
            .to_string_lossy()
            .ends_with(".orphan"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_files_are_removed_on_open() {
        let dir = tmpdir("tmpclean");
        let store = sample_store(10);
        let mut log = SegmentLog::create(&dir, Codec::None).expect("create");
        seal_in_chunks(&mut log, &store, 10);
        let stale = dir.join("seg-000001.xtrace.tmp");
        fs::write(&stale, b"half a seal").expect("plant stale tmp");
        let recovered = SegmentLog::open(&dir).expect("open");
        assert_eq!(recovered.report.removed_tmp, vec![stale.clone()]);
        assert!(!stale.exists());
        assert_eq!(recovered.report.segments_recovered, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_an_existing_chain() {
        let dir = tmpdir("nooverwrite");
        let store = sample_store(4);
        let mut log = SegmentLog::create(&dir, Codec::None).expect("create");
        seal_in_chunks(&mut log, &store, 4);
        let err = SegmentLog::create(&dir, Codec::None).expect_err("chain exists");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_interner_reader_is_rejected() {
        let dir = tmpdir("stale");
        let mut store = sample_store(4);
        let old = store.snapshot();
        // New symbols arrive before the chain seals, so the chain's
        // epochs move past the old reader's frozen counts.
        store.push(&Event::start(
            ActionId::base(ActionName::idempotent("late")),
            Value::from(999),
        ));
        let mut log = SegmentLog::create(&dir, Codec::None).expect("create");
        seal_in_chunks(&mut log, &store, 5);
        let err = log
            .seal(old.interner(), 0, &mut std::iter::empty())
            .expect_err("old reader predates the chain's epochs");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(&dir).ok();
    }
}
