//! The tiered store: a hot in-memory tail over the durable cold-segment
//! chain of [`crate::segfile`].
//!
//! [`TieredStore`] is the retention answer to the million-user north
//! star: events append into an ordinary [`TraceStore`] hot tail, and
//! every `spill_threshold` events the tail is *sealed* — written as one
//! atomic cold segment (optionally compressed) and, by default, evicted
//! from RAM. The interner is never split: one append-only symbol table
//! spans the whole chain, segments persist only their delta, and sealed
//! events keep their global symbols. That is what makes
//! [`TieredStore::view`] cheap: a [`TieredView`] is the loaded cold
//! segments (shared `Arc`s, loaded once — no per-event materialization)
//! plus a copy-on-write hot snapshot, and it implements
//! [`HistoryRead`], so `FastChecker` / `TieredChecker` /
//! `IncrementalState` re-check on-disk history with no code changes.
//!
//! Durability policy is **event-count based** (seal every
//! `spill_threshold` events, fsync on seal) — never wall-clock based —
//! so this module stays clean under the workspace's
//! `determinism-wall-clock` lint.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use xability_core::{Event, History, HistoryRead, Request};

use crate::codec::Codec;
use crate::segfile::{LoadedSegment, RecoveryReport, SegmentInfo, SegmentLog};
use crate::store::{decode, EventRepr, TraceSnapshot, TraceStore, EVENT_SEGMENT};
use crate::trace::{write_trace_file_with_meta, RecordedTrace};

/// How a [`TieredStore`] spills: when to seal, how to encode, what to
/// keep resident.
#[derive(Debug, Clone, Copy)]
pub struct TierConfig {
    /// Seal a cold segment every this many events (must be non-zero).
    /// Also the recovery torn-tail bound: at most this many events live
    /// only in RAM.
    pub spill_threshold: usize,
    /// Codec for cold-segment payloads.
    pub codec: Codec,
    /// Drop sealed events from RAM (the default — the whole point of a
    /// disk tier). Set `false` to keep segments resident after sealing,
    /// trading memory for view-building speed.
    pub evict_on_seal: bool,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            spill_threshold: EVENT_SEGMENT,
            codec: Codec::None,
            evict_on_seal: true,
        }
    }
}

impl TierConfig {
    /// The default policy with a different codec.
    pub fn with_codec(codec: Codec) -> Self {
        TierConfig {
            codec,
            ..TierConfig::default()
        }
    }
}

/// A trace store whose history outgrows RAM: hot [`TraceStore`] tail,
/// sealed cold segments on disk, one interner across both.
///
/// ```
/// use xability_core::{ActionId, ActionName, Event, HistoryRead, Value};
/// use xability_store::{TierConfig, TieredStore};
///
/// let dir = std::env::temp_dir().join(format!("xtier-doc-{}", std::process::id()));
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut config = TierConfig::default();
/// config.spill_threshold = 2; // tiny, to force a spill in a doctest
/// let mut tiered = TieredStore::create(&dir, config).unwrap();
/// let a = ActionId::base(ActionName::idempotent("put"));
/// for i in 0..5i64 {
///     tiered.push(&Event::start(a.clone(), Value::from(i))).unwrap();
/// }
/// assert_eq!(tiered.len(), 5);
/// assert_eq!(tiered.segments().len(), 2); // 4 events sealed, 1 hot
/// let view = tiered.view().unwrap();
/// assert_eq!(view.len(), 5);
/// assert_eq!(view.event_at(0), Event::start(a.clone(), Value::from(0)));
/// std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct TieredStore {
    config: TierConfig,
    /// Events not yet sealed; its interner is the *global* one.
    hot: TraceStore,
    /// Global index of the first hot event (= events sealed so far).
    first_hot: usize,
    cold: SegmentLog,
    /// RAM residency per cold segment, parallel to `cold.segments()`.
    loaded: Vec<Option<Arc<LoadedSegment>>>,
}

fn config_error(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg)
}

impl TieredStore {
    /// Starts an empty tiered store over a fresh segment directory
    /// (created if absent; refused if it already holds a chain — reopen
    /// an existing chain with [`TieredStore::open`]).
    pub fn create(dir: impl AsRef<Path>, config: TierConfig) -> io::Result<TieredStore> {
        if config.spill_threshold == 0 {
            return Err(config_error("spill_threshold must be non-zero"));
        }
        Ok(TieredStore {
            config,
            hot: TraceStore::new(),
            first_hot: 0,
            cold: SegmentLog::create(dir, config.codec)?,
            loaded: Vec::new(),
        })
    }

    /// Reopens a segment directory after a shutdown or crash: recovers
    /// the longest valid chain prefix (see [`SegmentLog::open`]), rebuilds
    /// the interner from the segments' delta tables, and resumes with an
    /// empty hot tail after the recovered events. The recovered segments
    /// stay resident (recovery already read them); call
    /// [`TieredStore::evict_cold`] to drop them to the configured policy.
    pub fn open(
        dir: impl AsRef<Path>,
        config: TierConfig,
    ) -> io::Result<(TieredStore, RecoveryReport)> {
        if config.spill_threshold == 0 {
            return Err(config_error("spill_threshold must be non-zero"));
        }
        let recovered = SegmentLog::open(dir)?;
        let first_hot = recovered.log.next_first_event();
        Ok((
            TieredStore {
                config,
                hot: TraceStore::with_interner(recovered.interner),
                first_hot,
                loaded: recovered
                    .segments
                    .into_iter()
                    .map(Arc::new)
                    .map(Some)
                    .collect(),
                cold: recovered.log,
            },
            recovered.report,
        ))
    }

    /// Total events, sealed and hot.
    pub fn len(&self) -> usize {
        self.first_hot + self.hot.len()
    }

    /// Returns `true` if no event was ever pushed (or recovered).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events still in the hot tail (strictly less than
    /// `spill_threshold` between pushes).
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    /// The spill policy this store runs under.
    pub fn config(&self) -> &TierConfig {
        &self.config
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        self.cold.dir()
    }

    /// Provenance of the sealed segments, in chain order.
    pub fn segments(&self) -> &[SegmentInfo] {
        self.cold.segments()
    }

    /// Total on-disk bytes across the sealed segments.
    pub fn disk_bytes(&self) -> u64 {
        self.cold.disk_bytes()
    }

    /// Approximate resident bytes: the hot tail (events + interner) plus
    /// any cold segments still loaded.
    pub fn resident_bytes(&self) -> usize {
        let cold: usize = self
            .loaded
            .iter()
            .flatten()
            .map(|seg| seg.events.len() * std::mem::size_of::<EventRepr>())
            .sum();
        self.hot.approx_bytes() + cold
    }

    /// Appends one event, sealing the hot tail if it reaches the
    /// threshold. Returns the event's global index.
    pub fn push(&mut self, event: &Event) -> io::Result<usize> {
        let index = self.first_hot + self.hot.push(event);
        if self.hot.len() == self.config.spill_threshold {
            self.seal_hot()?;
        }
        Ok(index)
    }

    /// Appends a slice of events with batch-amortized interning
    /// ([`TraceStore::push_batch`]), sealing as each threshold is
    /// crossed. Returns the global index of the first event (the current
    /// length for an empty slice).
    pub fn push_batch(&mut self, events: &[Event]) -> io::Result<usize> {
        let first = self.len();
        let mut rest = events;
        while !rest.is_empty() {
            let room = self.config.spill_threshold - self.hot.len();
            let take = room.min(rest.len());
            self.hot.push_batch(&rest[..take]);
            rest = &rest[take..];
            if self.hot.len() == self.config.spill_threshold {
                self.seal_hot()?;
            }
        }
        Ok(first)
    }

    /// Seals whatever the hot tail holds (a partial segment) — the
    /// shutdown path, making every event durable.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.hot.is_empty() {
            self.seal_hot()?;
        }
        Ok(())
    }

    /// Drops every resident cold segment; subsequent views re-read them
    /// from disk (checksum-verified).
    pub fn evict_cold(&mut self) {
        for slot in &mut self.loaded {
            *slot = None;
        }
    }

    /// Seals the entire hot tail as the next cold segment and threads the
    /// interner into a fresh hot store (O(1) — the tables move, nothing
    /// is cloned).
    fn seal_hot(&mut self) -> io::Result<()> {
        let sealed = std::mem::take(&mut self.hot);
        let count = sealed.len();
        let snap = sealed.snapshot();
        self.cold.seal(
            snap.interner(),
            count,
            &mut (0..count).map(|i| snap.repr(i)),
        )?;
        self.loaded.push(if self.config.evict_on_seal {
            None
        } else {
            Some(Arc::new(LoadedSegment {
                first_event: self.first_hot,
                events: (0..count).map(|i| snap.repr(i)).collect(),
            }))
        });
        drop(snap);
        self.first_hot += count;
        self.hot = TraceStore::with_interner(sealed.into_interner());
        Ok(())
    }

    /// A [`HistoryRead`] view over the *entire* history, cold and hot.
    ///
    /// All IO happens here (loading any evicted segment, checksums
    /// verified), so the view itself is infallible — checkers never see
    /// an `io::Result`. The view shares segment data through `Arc`s and a
    /// copy-on-write hot snapshot; building one copies no events.
    pub fn view(&mut self) -> io::Result<TieredView> {
        for (i, slot) in self.loaded.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(Arc::new(self.cold.load(i)?));
            }
        }
        Ok(TieredView {
            cold: self
                .loaded
                .iter()
                .map(|s| s.clone().expect("loaded above"))
                .collect(),
            cold_len: self.first_hot,
            hot: self.hot.snapshot(),
        })
    }
}

/// A read-only view spanning the cold segments and the hot tail at some
/// instant, resolving every event through the one global interner.
///
/// Implements [`HistoryRead`], so anything that checks in-memory history
/// checks this unchanged.
#[derive(Debug, Clone)]
pub struct TieredView {
    /// Loaded cold segments, chain order, `first_event`-sorted.
    cold: Vec<Arc<LoadedSegment>>,
    /// Total events across the cold segments.
    cold_len: usize,
    /// The hot tail at view time (carries the global interner reader).
    hot: TraceSnapshot,
}

impl TieredView {
    /// Total events in the view.
    pub fn len(&self) -> usize {
        self.cold_len + self.hot.len()
    }

    /// Returns `true` if the view holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The packed repr at global `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    fn repr(&self, index: usize) -> EventRepr {
        if index >= self.cold_len {
            return self.hot.repr(index - self.cold_len);
        }
        // Segments are first_event-sorted but not uniform (a flushed
        // partial segment can be short), so binary-search the owner.
        let seg = &self.cold[self
            .cold
            .partition_point(|s| s.first_event <= index)
            .checked_sub(1)
            .expect("index precedes the first segment")];
        seg.events[index - seg.first_event]
    }

    /// Decodes the event at global `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn event(&self, index: usize) -> Event {
        let repr = self.repr(index);
        let interner = self.hot.interner();
        decode(
            repr,
            interner.action(repr.action_symbol()).clone(),
            interner.value(repr.value_symbol()).clone(),
        )
    }
}

impl HistoryRead for TieredView {
    fn len(&self) -> usize {
        TieredView::len(self)
    }

    fn event_at(&self, index: usize) -> Event {
        TieredView::event(self, index)
    }

    fn scan_events(&self, f: &mut dyn FnMut(usize, &Event) -> bool) {
        // Walk segment-by-segment so the hot/cold split and the binary
        // search are paid once per segment, not once per event.
        let mut index = 0usize;
        let interner = self.hot.interner();
        for seg in &self.cold {
            for repr in &seg.events {
                let ev = decode(
                    *repr,
                    interner.action(repr.action_symbol()).clone(),
                    interner.value(repr.value_symbol()).clone(),
                );
                if !f(index, &ev) {
                    return;
                }
                index += 1;
            }
        }
        for i in 0..self.hot.len() {
            if !f(index, &self.hot.event(i)) {
                return;
            }
            index += 1;
        }
    }

    fn is_base_start_at(&self, index: usize) -> bool {
        assert!(index < self.len(), "index out of bounds");
        let repr = self.repr(index);
        !repr.is_complete() && repr.role() == crate::store::ROLE_BASE
    }

    fn is_base_completion_at(&self, index: usize) -> bool {
        assert!(index < self.len(), "index out of bounds");
        let repr = self.repr(index);
        repr.is_complete() && repr.role() == crate::store::ROLE_BASE
    }

    fn to_history(&self) -> History {
        let mut events = Vec::with_capacity(self.len());
        self.scan_events(&mut |_, ev| {
            events.push(ev.clone());
            true
        });
        History::from_events(events)
    }
}

/// Recovers a segment directory into a flat in-memory [`TraceStore`] —
/// the reopen path for consumers (the services ledger, the harness trace
/// reader) that want ordinary store semantics over recovered history.
pub fn recover_store(dir: impl AsRef<Path>) -> io::Result<(TraceStore, RecoveryReport)> {
    let recovered = SegmentLog::open(dir)?;
    let mut store = TraceStore::with_interner(recovered.interner);
    for seg in &recovered.segments {
        for repr in &seg.events {
            store
                .push_repr(*repr)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        }
    }
    Ok((store, recovered.report))
}

/// The requests manifest's file name inside a tiered trace directory.
pub const REQUESTS_MANIFEST: &str = "requests.xtrace";

/// Dumps a recorded run as a tiered trace directory: the events sealed
/// as a cold-segment chain (in `spill_threshold` chunks, under
/// `config.codec`) plus a `requests.xtrace` manifest holding the request
/// sequence and the run's provenance `meta` (and zero events).
///
/// [`read_tiered_trace`] is the inverse. Fails if `dir` already holds a
/// chain.
pub fn write_tiered_trace(
    dir: impl AsRef<Path>,
    requests: &[Request],
    snapshot: &TraceSnapshot,
    meta: &[(String, String)],
    config: TierConfig,
) -> io::Result<()> {
    if config.spill_threshold == 0 {
        return Err(config_error("spill_threshold must be non-zero"));
    }
    let dir = dir.as_ref();
    let mut log = SegmentLog::create(dir, config.codec)?;
    let mut at = 0usize;
    while at < snapshot.len() {
        let end = (at + config.spill_threshold).min(snapshot.len());
        log.seal(
            snapshot.interner(),
            end - at,
            &mut (at..end).map(|i| snapshot.repr(i)),
        )?;
        at = end;
    }
    write_trace_file_with_meta(
        dir.join(REQUESTS_MANIFEST),
        requests,
        &TraceStore::new().snapshot(),
        meta,
    )
}

/// Reads a tiered trace directory back into a [`RecordedTrace`]:
/// recovers the segment chain (quarantining any torn tail) and joins it
/// with the `requests.xtrace` manifest.
pub fn read_tiered_trace(dir: impl AsRef<Path>) -> io::Result<(RecordedTrace, RecoveryReport)> {
    let dir = dir.as_ref();
    let (store, report) = recover_store(dir)?;
    let manifest = RecordedTrace::read_from_file(dir.join(REQUESTS_MANIFEST))?;
    if !manifest.store.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "requests manifest must hold no events (they live in the segments)",
        ));
    }
    Ok((
        RecordedTrace {
            requests: manifest.requests,
            store,
            meta: manifest.meta,
        },
        report,
    ))
}

/// Removes a tiered trace directory if present (test/bench hygiene).
pub fn remove_tiered_trace(dir: impl AsRef<Path>) -> io::Result<()> {
    match fs::remove_dir_all(dir) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xability_core::{ActionId, ActionName, Value};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xability-tier-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn events(n: usize) -> Vec<Event> {
        let put = ActionId::base(ActionName::idempotent("put"));
        let cancelable = ActionName::undoable("reserve");
        (0..n as i64)
            .map(|i| {
                let value = Value::pair(Value::from(i / 3), Value::from("payload"));
                match i % 3 {
                    0 => Event::start(put.clone(), value),
                    1 => Event::complete(put.clone(), value),
                    _ => Event::start(ActionId::Cancel(cancelable.clone()), value),
                }
            })
            .collect()
    }

    fn mirror_store(events: &[Event]) -> TraceStore {
        let mut store = TraceStore::new();
        store.push_batch(events);
        store
    }

    #[test]
    fn tiered_view_equals_the_flat_store() {
        for codec in [Codec::None, Codec::Lz] {
            let dir = tmpdir(&format!("equal-{codec}"));
            let evs = events(257);
            let config = TierConfig {
                spill_threshold: 64,
                codec,
                evict_on_seal: true,
            };
            let mut tiered = TieredStore::create(&dir, config).expect("create");
            for (i, ev) in evs.iter().enumerate() {
                assert_eq!(tiered.push(ev).expect("push"), i);
            }
            assert_eq!(tiered.len(), 257);
            assert_eq!(tiered.segments().len(), 4); // 256 sealed, 1 hot
            assert_eq!(tiered.hot_len(), 1);

            let flat = mirror_store(&evs);
            let view = tiered.view().expect("view");
            assert_eq!(view.len(), flat.len());
            for i in 0..view.len() {
                assert_eq!(view.event_at(i), flat.event(i), "event {i}");
                assert_eq!(
                    view.is_base_start_at(i),
                    flat.view().is_base_start_at(i),
                    "base-start {i}"
                );
                assert_eq!(
                    view.is_base_completion_at(i),
                    flat.view().is_base_completion_at(i),
                    "base-completion {i}"
                );
            }
            assert_eq!(view.to_history(), flat.view().to_history());
            fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn push_batch_spills_across_thresholds() {
        let dir = tmpdir("batch");
        let evs = events(300);
        let config = TierConfig {
            spill_threshold: 64,
            codec: Codec::None,
            evict_on_seal: true,
        };
        let mut tiered = TieredStore::create(&dir, config).expect("create");
        assert_eq!(tiered.push_batch(&evs[..10]).expect("batch"), 0);
        assert_eq!(tiered.push_batch(&evs[10..]).expect("batch"), 10);
        assert_eq!(tiered.segments().len(), 4);
        assert_eq!(tiered.hot_len(), 300 - 4 * 64);
        let flat = mirror_store(&evs);
        assert_eq!(
            tiered.view().expect("view").to_history(),
            flat.view().to_history()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_continues_where_the_chain_ended() {
        let dir = tmpdir("reopen");
        let evs = events(100);
        let config = TierConfig {
            spill_threshold: 32,
            codec: Codec::Lz,
            evict_on_seal: true,
        };
        let mut tiered = TieredStore::create(&dir, config).expect("create");
        tiered.push_batch(&evs).expect("push");
        tiered
            .flush()
            .expect("flush makes the 4-event tail durable");
        assert_eq!(tiered.segments().len(), 4); // 32+32+32+4
        drop(tiered);

        let (mut reopened, report) = TieredStore::open(&dir, config).expect("open");
        assert_eq!(report.segments_recovered, 4);
        assert_eq!(report.events_recovered, 100);
        assert_eq!(reopened.len(), 100);
        let flat = mirror_store(&evs);
        assert_eq!(
            reopened.view().expect("view").to_history(),
            flat.view().to_history()
        );
        // And it keeps appending after recovery (partial final segment is
        // fine: segments are first_event-addressed, not uniform).
        let more = events(40);
        reopened.push_batch(&more).expect("append after reopen");
        assert_eq!(reopened.len(), 140);
        let mut both = evs.clone();
        both.extend(more);
        assert_eq!(
            reopened.view().expect("view").to_history(),
            mirror_store(&both).view().to_history()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_reloads_from_disk() {
        let dir = tmpdir("evict");
        let evs = events(128);
        let config = TierConfig {
            spill_threshold: 32,
            codec: Codec::Lz,
            evict_on_seal: false,
        };
        let mut tiered = TieredStore::create(&dir, config).expect("create");
        tiered.push_batch(&evs).expect("push");
        let resident_before = tiered.resident_bytes();
        tiered.evict_cold();
        assert!(tiered.resident_bytes() < resident_before);
        assert_eq!(
            tiered
                .view()
                .expect("view reloads evicted segments")
                .to_history(),
            mirror_store(&evs).view().to_history()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiered_trace_directory_round_trips() {
        let dir = tmpdir("dump");
        let evs = events(90);
        let flat = mirror_store(&evs);
        let requests = vec![
            Request::new(
                ActionId::base(ActionName::idempotent("put")),
                Value::from(1),
            ),
            Request::new(
                ActionId::Cancel(ActionName::undoable("reserve")),
                Value::from(2),
            ),
        ];
        let meta = vec![("scenario".to_string(), "dump-test".to_string())];
        let config = TierConfig {
            spill_threshold: 40,
            codec: Codec::Lz,
            evict_on_seal: true,
        };
        write_tiered_trace(&dir, &requests, &flat.snapshot(), &meta, config).expect("write");
        let (replayed, report) = read_tiered_trace(&dir).expect("read");
        assert_eq!(report.segments_recovered, 3); // 40+40+10
        assert!(report.quarantined.is_empty());
        assert_eq!(replayed.requests, requests);
        assert_eq!(replayed.meta_value("scenario"), Some("dump-test"));
        assert_eq!(replayed.store.view().to_history(), flat.view().to_history());
        remove_tiered_trace(&dir).expect("cleanup");
        assert!(!dir.exists());
    }

    #[test]
    fn zero_threshold_is_rejected() {
        let dir = tmpdir("zero");
        let config = TierConfig {
            spill_threshold: 0,
            codec: Codec::None,
            evict_on_seal: true,
        };
        assert!(TieredStore::create(&dir, config).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
