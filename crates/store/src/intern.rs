//! Symbol interning for action names and values.
//!
//! A trace over millions of events mentions only a handful of distinct
//! [`ActionName`]s and — after request keys — a bounded set of distinct
//! [`Value`]s. The [`Interner`] stores each distinct name/value **once**
//! and hands out dense `u32` symbols; the packed event representation
//! ([`crate::EventRepr`]) then carries two symbols instead of two heap
//! allocations.
//!
//! Symbols are append-only: once assigned, a symbol never changes meaning,
//! so snapshots taken at any time resolve every symbol they can contain.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;

use xability_core::{ActionName, Value};

use crate::log::{AppendLog, LogView};

/// Entries per symbol-table segment. Symbol tables are small (distinct
/// names/values, not events), so segments are modest.
const SYMBOL_SEGMENT: usize = 1024;

/// An append-only interner mapping [`ActionName`]s and [`Value`]s to
/// dense `u32` symbols.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionName, Value};
/// use xability_store::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern_action(&ActionName::idempotent("get"));
/// let b = interner.intern_action(&ActionName::idempotent("get"));
/// assert_eq!(a, b); // same name, same symbol
/// let v = interner.intern_value(&Value::from(42));
/// assert_eq!(interner.value(v), &Value::from(42));
/// ```
#[derive(Debug, Clone)]
pub struct Interner {
    hasher: RandomState,
    actions: AppendLog<ActionName>,
    /// Lookup index keyed by hash; the log is the single authority for
    /// the interned names, so nothing is deep-stored twice. Buckets hold
    /// the (rare) hash collisions.
    action_index: HashMap<u64, Vec<u32>>,
    values: AppendLog<Value>,
    value_index: HashMap<u64, Vec<u32>>,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            hasher: RandomState::new(),
            actions: AppendLog::new(SYMBOL_SEGMENT),
            action_index: HashMap::new(),
            values: AppendLog::new(SYMBOL_SEGMENT),
            value_index: HashMap::new(),
        }
    }

    /// The symbol of `name`, interning it on first sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct names are interned.
    pub fn intern_action(&mut self, name: &ActionName) -> u32 {
        intern(&self.hasher, &mut self.actions, &mut self.action_index, name)
    }

    /// The symbol of `value`, interning it on first sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct values are interned.
    pub fn intern_value(&mut self, value: &Value) -> u32 {
        intern(&self.hasher, &mut self.values, &mut self.value_index, value)
    }

    /// Resolves an action symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn action(&self, sym: u32) -> &ActionName {
        self.actions.get(sym as usize)
    }

    /// Resolves a value symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn value(&self, sym: u32) -> &Value {
        self.values.get(sym as usize)
    }

    /// How many distinct action names have been interned.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// How many distinct values have been interned.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Immutable snapshots of both symbol tables (for a
    /// [`crate::TraceSnapshot`]).
    pub(crate) fn snapshot(&self) -> (LogView<ActionName>, LogView<Value>) {
        (self.actions.snapshot(), self.values.snapshot())
    }

    /// Approximate heap bytes held by the symbol tables: segment storage
    /// plus the per-entry heap behind names and values (each stored once
    /// — the lookup indexes hold only hashes and symbols, counted by
    /// entry size; their exact `HashMap` footprint is implementation
    /// defined).
    pub(crate) fn approx_bytes(&self) -> usize {
        let name_heap: usize = (0..self.actions.len())
            .map(|i| self.actions.get(i).name().len())
            .sum();
        let value_heap: usize = (0..self.values.len())
            .map(|i| value_heap_bytes(self.values.get(i)))
            .sum();
        let index_entries = (self.actions.len() + self.values.len())
            * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>());
        self.actions.segment_bytes() + self.values.segment_bytes() + name_heap + value_heap
            + index_entries
    }
}

/// The one interning routine behind both symbol tables: probe the hash
/// bucket against the log (the single authority for the interned items),
/// appending on a miss.
///
/// # Panics
///
/// Panics if more than `u32::MAX` distinct items are interned.
fn intern<T: std::hash::Hash + Eq + Clone>(
    hasher: &RandomState,
    log: &mut AppendLog<T>,
    index: &mut HashMap<u64, Vec<u32>>,
    item: &T,
) -> u32 {
    let hash = hasher.hash_one(item);
    if let Some(bucket) = index.get(&hash) {
        for &sym in bucket {
            if log.get(sym as usize) == item {
                return sym;
            }
        }
    }
    let sym = u32::try_from(log.len()).expect("more than u32::MAX distinct symbols");
    log.push(item.clone());
    index.entry(hash).or_default().push(sym);
    sym
}

/// Approximate heap bytes owned by a [`Value`] (not counting the inline
/// enum itself): string contents, list/pair element storage, recursively.
///
/// The store's own [`TraceStore::approx_bytes`](crate::TraceStore::approx_bytes)
/// accounting and the `benches/store.rs` owned-`Vec<Event>` baseline use
/// this same estimator, so the bytes-per-event comparison in
/// `BENCH_store.json` cannot silently diverge.
pub fn value_heap_bytes(value: &Value) -> usize {
    match value {
        Value::Nil | Value::Bool(_) | Value::Int(_) => 0,
        Value::Str(s) => s.len(),
        Value::List(items) => {
            items.len() * std::mem::size_of::<Value>()
                + items.iter().map(value_heap_bytes).sum::<usize>()
        }
        Value::Pair(p) => {
            2 * std::mem::size_of::<Value>() + value_heap_bytes(&p.0) + value_heap_bytes(&p.1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern_action(&ActionName::idempotent("a"));
        let b = i.intern_action(&ActionName::undoable("b"));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(i.intern_action(&ActionName::idempotent("a")), 0);
        assert_eq!(i.action_count(), 2);
        assert_eq!(i.action(1), &ActionName::undoable("b"));
    }

    #[test]
    fn kind_distinguishes_names() {
        let mut i = Interner::new();
        let idem = i.intern_action(&ActionName::idempotent("x"));
        let undo = i.intern_action(&ActionName::undoable("x"));
        assert_ne!(idem, undo, "kind is part of the name identity");
    }

    #[test]
    fn values_round_trip() {
        let mut i = Interner::new();
        let vals = [
            Value::Nil,
            Value::from(7),
            Value::from("hello"),
            Value::list([Value::from(1), Value::pair(Value::from("k"), Value::Nil)]),
        ];
        let syms: Vec<u32> = vals.iter().map(|v| i.intern_value(v)).collect();
        for (sym, val) in syms.iter().zip(&vals) {
            assert_eq!(i.value(*sym), val);
        }
        assert_eq!(i.value_count(), vals.len());
    }

    #[test]
    fn heap_estimate_is_monotone() {
        let mut i = Interner::new();
        let before = i.approx_bytes();
        i.intern_value(&Value::from("a fairly long string value"));
        assert!(i.approx_bytes() > before);
    }
}
