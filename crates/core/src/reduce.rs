//! History reduction ⇒ (§3.1, Fig. 4).
//!
//! A reduction step transforms a history into one with the *same side-effect*
//! but fewer (or reordered) events, by exploiting idempotence and
//! undoability:
//!
//! * **Rule (18) — idempotent deduplication.** If an idempotent action
//!   completed successfully, an earlier (possibly partial) attempt with the
//!   same input and output can be erased, and the surviving execution is
//!   compacted to an adjacent `S C` pair with the interleaved events moved in
//!   front of it.
//! * **Rule (19) — cancellation erasure.** An undoable action attempt
//!   followed by a successfully completed cancellation (with no commit of the
//!   same request interleaved, and no earlier start of the same request to
//!   the left) is erased entirely: it appears as if the action never ran.
//! * **Rule (20) — commit deduplication.** Commit actions are idempotent;
//!   duplicate commits of the same request collapse, provided the committed
//!   action itself does not overlap the commit pair.
//!
//! Rule (17), transitivity, is realized by taking the closure of single steps
//! (see [`crate::xable`]).
//!
//! Cancellation actions are idempotent by definition (§3.1), so rule (18)
//! applies to them as well as to base idempotent actions. Commit actions are
//! *also* declared idempotent by the paper, but their deduplication is
//! governed by the dedicated rule (20), whose extra side condition
//! (`(aᵘ, iv) ∉ h′`) would be vacuous if rule (18) also applied to commits;
//! we therefore deduplicate commits exclusively through rule (20).
//!
//! # Window enumeration
//!
//! Each rule rewrites `h₁ • h • h₂` for a window `h` matching an interleaved
//! pattern. The *result* of a step is independent of the exact window
//! boundaries (the prefix `h₁` and the in-window interleaving `h′`
//! concatenate to the same event sequence either way); only the *side
//! conditions* of rules (19) and (20) depend on where the window starts. The
//! enumeration below therefore materializes one step per choice of matched
//! event positions, and checks feasibility — the existence of a window start
//! satisfying the side conditions — analytically instead of iterating over
//! every boundary. This keeps single-step enumeration polynomial.

use std::collections::BTreeSet;
use std::fmt;

use crate::action::ActionId;
use crate::event::Event;
use crate::history::History;
use crate::value::Value;

/// Which reduction rule produced a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionRule {
    /// Rule (18): idempotent-action deduplication / compaction.
    Idempotent,
    /// Rule (19): erasure of a cancelled undoable attempt.
    CancelErasure,
    /// Rule (20): commit deduplication / compaction.
    CommitDedup,
}

impl fmt::Display for ReductionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionRule::Idempotent => write!(f, "rule 18 (idempotent)"),
            ReductionRule::CancelErasure => write!(f, "rule 19 (cancel erasure)"),
            ReductionRule::CommitDedup => write!(f, "rule 20 (commit dedup)"),
        }
    }
}

/// One application of a reduction rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionStep {
    /// The rule applied.
    pub rule: ReductionRule,
    /// Indices of the events erased from the input history (ascending).
    pub removed: Vec<usize>,
    /// The resulting history.
    pub result: History,
}

/// Enumerates every distinct single reduction step `h ⇒ h′` with `h′ ≠ h`.
///
/// The result list is deduplicated by resulting history; among steps yielding
/// the same result, an arbitrary representative is kept.
///
/// # Examples
///
/// ```
/// use xability_core::{reduce, ActionId, ActionName, Event, History, Value};
///
/// let a = ActionId::base(ActionName::idempotent("ping"));
/// // Two identical completed executions: reducible to one.
/// let h: History = [
///     Event::start(a.clone(), Value::Nil),
///     Event::complete(a.clone(), Value::Nil),
///     Event::start(a.clone(), Value::Nil),
///     Event::complete(a.clone(), Value::Nil),
/// ]
/// .into_iter()
/// .collect();
/// let steps = reduce::reduction_steps(&h);
/// assert!(steps.iter().any(|s| s.result.len() == 2));
/// ```
pub fn reduction_steps(h: &History) -> Vec<ReductionStep> {
    let mut steps: Vec<ReductionStep> = Vec::new();
    let mut seen: BTreeSet<History> = BTreeSet::new();
    seen.insert(h.clone());
    let n = h.len();

    let mut push = |rule: ReductionRule,
                    removed: Vec<usize>,
                    result: History,
                    seen: &mut BTreeSet<History>| {
        if seen.insert(result.clone()) {
            steps.push(ReductionStep {
                rule,
                removed,
                result,
            });
        }
    };

    for j in 0..n {
        let (action, out) = match &h[j] {
            Event::Complete(a, out) => (a.clone(), out.clone()),
            Event::Start(..) => continue,
        };

        // ---- Rule (18): idempotent dedup (base idempotent actions and
        // cancellation actions). ----
        if executes_idempotently(&action) {
            for r0 in 0..j {
                let iv = match &h[r0] {
                    Event::Start(a, iv) if a == &action => iv.clone(),
                    _ => continue,
                };
                let s_ev = Event::start(action.clone(), iv.clone());
                let c_ev = Event::complete(action.clone(), out.clone());

                // Empty left match: pure compaction (no event erased).
                let result = compact(h, &[], r0, j, &s_ev, &c_ev);
                push(ReductionRule::Idempotent, vec![], result, &mut seen);

                for l0 in 0..r0 {
                    if h[l0] != s_ev {
                        continue;
                    }
                    // Singleton left match: erase a dangling start.
                    let result = compact(h, &[l0], r0, j, &s_ev, &c_ev);
                    push(ReductionRule::Idempotent, vec![l0], result, &mut seen);
                    // Full left match: erase a completed duplicate (same output).
                    for c1 in (l0 + 1)..j {
                        if c1 == r0 || h[c1] != c_ev {
                            continue;
                        }
                        let mut removed = vec![l0, c1];
                        removed.sort_unstable();
                        let result = compact(h, &removed, r0, j, &s_ev, &c_ev);
                        push(ReductionRule::Idempotent, removed, result, &mut seen);
                    }
                }
            }
        }

        // ---- Rule (19): cancellation erasure. ----
        if let (ActionId::Cancel(base), true) = (&action, out.is_nil()) {
            let au = ActionId::Base(base.clone());
            for r0 in 0..j {
                let iv = match &h[r0] {
                    Event::Start(a, iv) if a == &action => iv.clone(),
                    _ => continue,
                };
                let commit_start = Event::start(ActionId::Commit(base.clone()), iv.clone());
                let au_start = Event::start(au.clone(), iv.clone());

                let first_au_start = (0..n).find(|&q| h[q] == au_start);

                // Empty left match: erase a cancellation that cancelled
                // nothing. The paper's prose ("only matches the empty
                // history if there are no events from a to the left") makes
                // the intent clear: no start of (aᵘ, iv) may precede the
                // cancellation at all. We implement that intended reading
                // (the literal side condition constrains only h₁ and would
                // allow hiding an attempt start in the window interleaving).
                {
                    let au_start_before_cancel = (0..r0).any(|q| h[q] == au_start);
                    let commit_in_window = ((r0 + 1)..j).any(|q| h[q] == commit_start);
                    if !au_start_before_cancel && !commit_in_window {
                        let removed = vec![r0, j];
                        let result = erase(h, &removed);
                        push(ReductionRule::CancelErasure, removed, result, &mut seen);
                    }
                }

                // Left matches: the attempt being cancelled starts the window.
                for l0 in 0..r0 {
                    if h[l0] != au_start {
                        continue;
                    }
                    // Side condition (aᵘ, iv) ∉ h₁: l0 must be the first
                    // start of (aᵘ, iv).
                    if first_au_start != Some(l0) {
                        continue;
                    }
                    // Side condition (aᶜ, iv) ∉ h′: no commit start strictly
                    // inside the window (exclusive of matched positions).
                    let commit_in_junk = ((l0 + 1)..j).any(|q| q != r0 && h[q] == commit_start);
                    if commit_in_junk {
                        continue;
                    }
                    // Singleton left: erase a failed attempt plus its
                    // cancellation.
                    {
                        let mut removed = vec![l0, r0, j];
                        removed.sort_unstable();
                        let result = erase(h, &removed);
                        push(ReductionRule::CancelErasure, removed, result, &mut seen);
                    }
                    // Full left: the attempt completed (any output) before
                    // being cancelled.
                    for c1 in (l0 + 1)..j {
                        if c1 == r0 {
                            continue;
                        }
                        if !h[c1].is_completion_of(&au) {
                            continue;
                        }
                        let mut removed = vec![l0, c1, r0, j];
                        removed.sort_unstable();
                        let result = erase(h, &removed);
                        push(ReductionRule::CancelErasure, removed, result, &mut seen);
                    }
                }
            }
        }

        // ---- Rule (20): commit dedup / compaction. ----
        if let (ActionId::Commit(base), true) = (&action, out.is_nil()) {
            for r0 in 0..j {
                let iv = match &h[r0] {
                    Event::Start(a, iv) if a == &action => iv.clone(),
                    _ => continue,
                };
                let s_ev = Event::start(action.clone(), iv.clone());
                let c_ev = Event::complete(action.clone(), Value::Nil);
                let au_start = Event::start(ActionId::Base(base.clone()), iv.clone());

                // Empty left: compaction. Side condition (aᵘ, iv) ∉ h′:
                // feasible iff some window start i ≤ r0 puts all starts of
                // (aᵘ, iv) at positions ≤ j into the prefix.
                {
                    let last_au_start_le_j = (0..=j)
                        .rev()
                        .find(|&q| q != r0 && q != j && h[q] == au_start);
                    let i_min = last_au_start_le_j.map_or(0, |q| q + 1);
                    if i_min <= r0 {
                        let result = compact(h, &[], r0, j, &s_ev, &c_ev);
                        push(ReductionRule::CommitDedup, vec![], result, &mut seen);
                    }
                }

                for l0 in 0..r0 {
                    if h[l0] != s_ev {
                        continue;
                    }
                    // Side condition: no (aᵘ, iv) start strictly inside the
                    // window.
                    let au_in_junk = ((l0 + 1)..j).any(|q| q != r0 && h[q] == au_start);
                    if au_in_junk {
                        continue;
                    }
                    // Singleton left: erase a dangling commit start.
                    let result = compact(h, &[l0], r0, j, &s_ev, &c_ev);
                    push(ReductionRule::CommitDedup, vec![l0], result, &mut seen);
                    // Full left: erase a completed duplicate commit.
                    for c1 in (l0 + 1)..j {
                        if c1 == r0 || h[c1] != c_ev {
                            continue;
                        }
                        let mut removed = vec![l0, c1];
                        removed.sort_unstable();
                        let result = compact(h, &removed, r0, j, &s_ev, &c_ev);
                        push(ReductionRule::CommitDedup, removed, result, &mut seen);
                    }
                }
            }
        }
    }

    steps
}

/// All distinct one-step successors of `h` under ⇒ (excluding `h` itself).
pub fn successors(h: &History) -> Vec<History> {
    reduction_steps(h).into_iter().map(|s| s.result).collect()
}

/// Returns `true` if the action's *execution* deduplicates under rule (18):
/// base idempotent actions and cancellation actions.
fn executes_idempotently(action: &ActionId) -> bool {
    match action {
        ActionId::Base(name) => name.is_idempotent(),
        ActionId::Cancel(_) => true,
        ActionId::Commit(_) => false, // governed by rule (20)
    }
}

/// Builds the result of a rule-(18)/(20) step: erase `removed`, move the
/// surviving pair (`r0`, `j`) to an adjacent `S C` at the window's end.
fn compact(
    h: &History,
    removed: &[usize],
    r0: usize,
    j: usize,
    s_ev: &Event,
    c_ev: &Event,
) -> History {
    debug_assert!(removed.windows(2).all(|w| w[0] < w[1]));
    let mut events = Vec::with_capacity(h.len() - removed.len());
    for q in 0..=j {
        if q == r0 || q == j || removed.binary_search(&q).is_ok() {
            continue;
        }
        events.push(h[q].clone());
    }
    events.push(s_ev.clone());
    events.push(c_ev.clone());
    for q in (j + 1)..h.len() {
        events.push(h[q].clone());
    }
    History::from_events(events)
}

/// Builds the result of a rule-(19) step: erase `removed` outright.
fn erase(h: &History, removed: &[usize]) -> History {
    h.without_sorted(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn undo(name: &str) -> ActionId {
        ActionId::base(ActionName::undoable(name))
    }

    fn s(a: &ActionId, v: i64) -> Event {
        Event::start(a.clone(), Value::from(v))
    }

    fn c(a: &ActionId, v: i64) -> Event {
        Event::complete(a.clone(), Value::from(v))
    }

    fn cnil(a: &ActionId) -> Event {
        Event::complete(a.clone(), Value::Nil)
    }

    fn hist(events: Vec<Event>) -> History {
        History::from_events(events)
    }

    #[test]
    fn rule_18_removes_duplicate_completed_execution() {
        let a = idem("a");
        let h = hist(vec![s(&a, 1), c(&a, 2), s(&a, 1), c(&a, 2)]);
        let target = hist(vec![s(&a, 1), c(&a, 2)]);
        assert!(successors(&h).contains(&target));
    }

    #[test]
    fn rule_18_removes_dangling_start_before_success() {
        let a = idem("a");
        let h = hist(vec![s(&a, 1), s(&a, 1), c(&a, 2)]);
        let target = hist(vec![s(&a, 1), c(&a, 2)]);
        assert!(successors(&h).contains(&target));
    }

    #[test]
    fn rule_18_requires_equal_outputs() {
        let a = idem("a");
        // Two completed executions with different outputs: a *completed*
        // attempt can only be erased against an equal output, so both
        // completion events survive every step. (A dangling start may still
        // pair with either completion — rule 7's match of a lone start does
        // not constrain the output.)
        let h = hist(vec![s(&a, 1), c(&a, 2), s(&a, 1), c(&a, 3)]);
        for succ in successors(&h) {
            assert_eq!(succ.count_completions(&a), 2, "completion erased: {succ}");
        }
    }

    #[test]
    fn rule_18_requires_equal_inputs() {
        let a = idem("a");
        // Same action, different inputs: distinct logical executions.
        let h = hist(vec![s(&a, 1), c(&a, 9), s(&a, 2), c(&a, 9)]);
        for succ in successors(&h) {
            assert_eq!(succ.len(), h.len());
        }
    }

    #[test]
    fn rule_18_compaction_moves_junk_before_survivor() {
        let a = idem("a");
        let b = idem("b");
        // S(a) S(b) C(a): compaction moves S(b) in front of the pair.
        let h = hist(vec![s(&a, 1), s(&b, 5), c(&a, 2)]);
        let target = hist(vec![s(&b, 5), s(&a, 1), c(&a, 2)]);
        assert!(successors(&h).contains(&target));
    }

    #[test]
    fn rule_18_dangling_start_after_success_is_stuck() {
        let a = idem("a");
        // A retry started after the last completion cannot be erased: the
        // window would have to end at a completion to its right.
        let h = hist(vec![s(&a, 1), c(&a, 2), s(&a, 1)]);
        assert!(successors(&h).is_empty());
    }

    #[test]
    fn rule_18_applies_to_cancellation_actions() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let h = hist(vec![
            s(&cancel, 1),
            cnil(&cancel),
            s(&cancel, 1),
            cnil(&cancel),
        ]);
        let target = hist(vec![s(&cancel, 1), cnil(&cancel)]);
        assert!(successors(&h).contains(&target));
    }

    #[test]
    fn rule_19_erases_cancelled_attempt() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        // Attempt completed, then cancelled.
        let h = hist(vec![s(&u, 1), c(&u, 7), s(&cancel, 1), cnil(&cancel)]);
        assert!(successors(&h).contains(&History::empty()));
    }

    #[test]
    fn rule_19_erases_failed_attempt() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        // Attempt never completed (failed), then cancelled.
        let h = hist(vec![s(&u, 1), s(&cancel, 1), cnil(&cancel)]);
        assert!(successors(&h).contains(&History::empty()));
    }

    #[test]
    fn rule_19_erases_spurious_cancel() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        // A cancellation with no preceding attempt erases alone.
        let h = hist(vec![s(&cancel, 1), cnil(&cancel)]);
        assert!(successors(&h).contains(&History::empty()));
    }

    #[test]
    fn rule_19_blocked_by_interleaved_commit() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        // Commit starts between the attempt and the cancellation: the
        // cancellation may not take effect, so erasure is forbidden.
        let h = hist(vec![
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
            s(&cancel, 1),
            cnil(&cancel),
        ]);
        for succ in successors(&h) {
            // The attempt events must survive every step.
            assert!(
                succ.appears(&u, &Value::from(1)),
                "attempt erased despite commit: {succ}"
            );
        }
    }

    #[test]
    fn rule_19_left_context_forces_leftmost_pair_first() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        // Two attempt/cancel pairs. The right pair cannot be erased first
        // because (aᵘ, iv) appears to its left; the left pair can.
        let h = hist(vec![
            s(&u, 1),
            s(&cancel, 1),
            cnil(&cancel),
            s(&u, 1),
            s(&cancel, 1),
            cnil(&cancel),
        ]);
        let succs = successors(&h);
        // Erasing the left pair leaves the right pair.
        let right_pair = hist(vec![s(&u, 1), s(&cancel, 1), cnil(&cancel)]);
        assert!(succs.contains(&right_pair));
        // No single step can erase both attempts at once, and every
        // successor that erased an attempt keeps at least one cancel pair
        // available for the remaining attempt.
        for succ in &succs {
            assert!(succ.len() >= 3, "two pairs erased in one step: {succ}");
        }
    }

    #[test]
    fn rule_20_dedups_commits() {
        let u = undo("u");
        let commit = u.commit().unwrap();
        let h = hist(vec![
            s(&commit, 1),
            cnil(&commit),
            s(&commit, 1),
            cnil(&commit),
        ]);
        let target = hist(vec![s(&commit, 1), cnil(&commit)]);
        assert!(successors(&h).contains(&target));
    }

    #[test]
    fn rule_20_blocked_by_overlapping_action() {
        let u = undo("u");
        let commit = u.commit().unwrap();
        // The committed action starts between the two commits: dedup
        // would lose the ordering constraint, so it is forbidden.
        let h = hist(vec![
            s(&commit, 1),
            cnil(&commit),
            s(&u, 1),
            s(&commit, 1),
            cnil(&commit),
        ]);
        for succ in successors(&h) {
            assert!(
                succ.count_starts(&commit, &Value::from(1)) >= 2 || succ.len() == h.len(),
                "commit dedup happened across an overlapping action: {succ}"
            );
        }
    }

    #[test]
    fn steps_report_rule_and_removed_indices() {
        let a = idem("a");
        let h = hist(vec![s(&a, 1), s(&a, 1), c(&a, 2)]);
        let steps = reduction_steps(&h);
        let erasing = steps
            .iter()
            .find(|st| st.result.len() == 2)
            .expect("erasing step");
        assert_eq!(erasing.rule, ReductionRule::Idempotent);
        assert_eq!(erasing.removed, vec![0]);
    }

    #[test]
    fn successors_never_return_identity() {
        let a = idem("a");
        let h = hist(vec![s(&a, 1), c(&a, 2)]);
        assert!(!successors(&h).contains(&h));
    }

    #[test]
    fn reduction_never_increases_length() {
        let a = idem("a");
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let h = hist(vec![
            s(&a, 1),
            s(&u, 1),
            c(&a, 2),
            s(&cancel, 1),
            cnil(&cancel),
            s(&a, 1),
            c(&a, 2),
        ]);
        for st in reduction_steps(&h) {
            assert!(st.result.len() <= h.len());
        }
    }

    #[test]
    fn display_of_rules() {
        assert!(format!("{}", ReductionRule::Idempotent).contains("18"));
        assert!(format!("{}", ReductionRule::CancelErasure).contains("19"));
        assert!(format!("{}", ReductionRule::CommitDedup).contains("20"));
    }
}
