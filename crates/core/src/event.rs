//! Events (§2.2).
//!
//! Events mark the start and completion of action executions as seen by the
//! paper's hypothetical observer:
//!
//! ```text
//! e ::= S(a, iv) | C(a, ov)
//! ```
//!
//! Note that, exactly as in the paper, a completion event records the
//! action's *output* value but not its input: the observer sees what an
//! execution produced, not which in-flight attempt it belongs to. Ambiguity
//! in attributing completions to starts is resolved existentially by the
//! pattern matching and reduction machinery.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::action::ActionId;
use crate::value::Value;

/// An observable event: the start or completion of an action execution.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName, Event, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let s = Event::start(a.clone(), Value::from(1));
/// let c = Event::complete(a.clone(), Value::from(42));
/// assert!(s.is_start() && c.is_complete());
/// assert_eq!(s.action(), &a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Event {
    /// `S(a, iv)` — the execution of `a` with input `iv` has started; its
    /// side-effect *may* happen.
    Start(ActionId, Value),
    /// `C(a, ov)` — an execution of `a` has completed successfully with
    /// output `ov`; its side-effect *has* happened.
    Complete(ActionId, Value),
}

impl Event {
    /// Creates a start event `S(a, iv)`.
    pub fn start(action: ActionId, input: Value) -> Self {
        Event::Start(action, input)
    }

    /// Creates a completion event `C(a, ov)`.
    pub fn complete(action: ActionId, output: Value) -> Self {
        Event::Complete(action, output)
    }

    /// The action this event belongs to.
    pub fn action(&self) -> &ActionId {
        match self {
            Event::Start(a, _) | Event::Complete(a, _) => a,
        }
    }

    /// The value carried by the event: the input for a start event, the
    /// output for a completion event.
    pub fn value(&self) -> &Value {
        match self {
            Event::Start(_, v) | Event::Complete(_, v) => v,
        }
    }

    /// Returns `true` for start events.
    pub fn is_start(&self) -> bool {
        matches!(self, Event::Start(..))
    }

    /// Returns `true` for completion events.
    pub fn is_complete(&self) -> bool {
        matches!(self, Event::Complete(..))
    }

    /// Returns `true` if this is the start event `S(action, input)`.
    pub fn is_start_of(&self, action: &ActionId, input: &Value) -> bool {
        matches!(self, Event::Start(a, v) if a == action && v == input)
    }

    /// Returns `true` if this is a completion event of `action` (with any
    /// output).
    pub fn is_completion_of(&self, action: &ActionId) -> bool {
        matches!(self, Event::Complete(a, _) if a == action)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Start(a, iv) => write!(f, "S({a}, {iv})"),
            Event::Complete(a, ov) => write!(f, "C({a}, {ov})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;

    fn act() -> ActionId {
        ActionId::base(ActionName::idempotent("a"))
    }

    #[test]
    fn constructors_and_accessors() {
        let s = Event::start(act(), Value::from(1));
        let c = Event::complete(act(), Value::from(2));
        assert!(s.is_start() && !s.is_complete());
        assert!(c.is_complete() && !c.is_start());
        assert_eq!(s.value(), &Value::from(1));
        assert_eq!(c.value(), &Value::from(2));
        assert_eq!(s.action(), &act());
    }

    #[test]
    fn is_start_of_matches_action_and_input() {
        let s = Event::start(act(), Value::from(1));
        assert!(s.is_start_of(&act(), &Value::from(1)));
        assert!(!s.is_start_of(&act(), &Value::from(2)));
        let other = ActionId::base(ActionName::undoable("a"));
        assert!(!s.is_start_of(&other, &Value::from(1)));
        // Completion events are never starts.
        let c = Event::complete(act(), Value::from(1));
        assert!(!c.is_start_of(&act(), &Value::from(1)));
    }

    #[test]
    fn is_completion_of_ignores_output() {
        let c = Event::complete(act(), Value::from(9));
        assert!(c.is_completion_of(&act()));
        let other = ActionId::base(ActionName::idempotent("b"));
        assert!(!c.is_completion_of(&other));
    }

    #[test]
    fn display_mirrors_paper_notation() {
        let s = Event::start(act(), Value::from(1));
        assert_eq!(format!("{s}"), "S(aⁱ, 1)");
        let c = Event::complete(act(), Value::Nil);
        assert_eq!(format!("{c}"), "C(aⁱ, nil)");
    }
}
