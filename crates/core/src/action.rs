//! Actions, requests and results (§2.1, §3.1).
//!
//! The paper partitions the set `Action` into `Idempotent` and `Undoable`
//! actions. Every undoable action `a` (written `aᵘ`) has an associated
//! *cancellation* action `a⁻¹` and *commit* action `aᶜ`; both take the same
//! input as `a`, return `nil`, and are themselves idempotent.
//!
//! We encode this structure directly: an [`ActionName`] carries its
//! [`ActionKind`] (idempotent or undoable), and an [`ActionId`] identifies
//! either the base action or one of the two derived actions of an undoable
//! base.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Whether a base action is idempotent or undoable (§3.1).
///
/// * An **idempotent** action has the same side-effect whether executed once
///   or several times.
/// * An **undoable** action behaves like a database transaction: it can be
///   rolled back by its cancellation action up to the point where its commit
///   action makes its effect permanent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActionKind {
    /// Member of the paper's `Idempotent` set, written `aⁱ`.
    Idempotent,
    /// Member of the paper's `Undoable` set, written `aᵘ`.
    Undoable,
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionKind::Idempotent => write!(f, "idempotent"),
            ActionKind::Undoable => write!(f, "undoable"),
        }
    }
}

/// The name of a base action, together with its kind.
///
/// Cheap to clone (the name itself is reference counted).
///
/// # Examples
///
/// ```
/// use xability_core::{ActionKind, ActionName};
///
/// let a = ActionName::idempotent("lookup");
/// assert_eq!(a.name(), "lookup");
/// assert_eq!(a.kind(), ActionKind::Idempotent);
///
/// let b = ActionName::undoable("transfer");
/// assert!(b.is_undoable());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActionName {
    name: Arc<str>,
    kind: ActionKind,
}

impl ActionName {
    /// Creates a new action name of the given kind.
    pub fn new(name: impl AsRef<str>, kind: ActionKind) -> Self {
        ActionName {
            name: Arc::from(name.as_ref()),
            kind,
        }
    }

    /// Creates an idempotent action name (`aⁱ`).
    pub fn idempotent(name: impl AsRef<str>) -> Self {
        ActionName::new(name, ActionKind::Idempotent)
    }

    /// Creates an undoable action name (`aᵘ`).
    pub fn undoable(name: impl AsRef<str>) -> Self {
        ActionName::new(name, ActionKind::Undoable)
    }

    /// The textual name of the action.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kind of the action.
    pub fn kind(&self) -> ActionKind {
        self.kind
    }

    /// Returns `true` if the action is idempotent.
    pub fn is_idempotent(&self) -> bool {
        self.kind == ActionKind::Idempotent
    }

    /// Returns `true` if the action is undoable.
    pub fn is_undoable(&self) -> bool {
        self.kind == ActionKind::Undoable
    }
}

impl fmt::Display for ActionName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ActionKind::Idempotent => write!(f, "{}ⁱ", self.name),
            ActionKind::Undoable => write!(f, "{}ᵘ", self.name),
        }
    }
}

/// Identifies an executable action: a base action, or the cancellation /
/// commit action derived from an undoable base action (§3.1).
///
/// The paper writes these `a`, `a⁻¹` and `aᶜ`. Cancellation and commit
/// actions are idempotent by definition, take the same input as their base
/// action, and return `nil`.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName};
///
/// let transfer = ActionName::undoable("transfer");
/// let act = ActionId::base(transfer.clone());
/// let cancel = act.cancel().expect("undoable actions can be cancelled");
/// let commit = act.commit().expect("undoable actions can be committed");
/// assert!(cancel.is_idempotent_action());
/// assert!(commit.is_idempotent_action());
/// assert_eq!(cancel.base_name(), &transfer);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActionId {
    /// The base action `a` itself.
    Base(ActionName),
    /// The cancellation action `a⁻¹` of an undoable base action.
    Cancel(ActionName),
    /// The commit action `aᶜ` of an undoable base action.
    Commit(ActionName),
}

impl ActionId {
    /// Wraps a base action name.
    pub fn base(name: ActionName) -> Self {
        ActionId::Base(name)
    }

    /// The cancellation action of this action, if it is an undoable base
    /// action.
    ///
    /// Returns `None` for idempotent actions and for actions that are already
    /// cancellations or commits.
    pub fn cancel(&self) -> Option<ActionId> {
        match self {
            ActionId::Base(name) if name.is_undoable() => Some(ActionId::Cancel(name.clone())),
            _ => None,
        }
    }

    /// The commit action of this action, if it is an undoable base action.
    pub fn commit(&self) -> Option<ActionId> {
        match self {
            ActionId::Base(name) if name.is_undoable() => Some(ActionId::Commit(name.clone())),
            _ => None,
        }
    }

    /// The base action name this id is derived from.
    pub fn base_name(&self) -> &ActionName {
        match self {
            ActionId::Base(n) | ActionId::Cancel(n) | ActionId::Commit(n) => n,
        }
    }

    /// Returns `true` if *executing* this action is idempotent.
    ///
    /// Base idempotent actions, cancellations, and commits are all
    /// idempotent; only undoable base actions are not.
    pub fn is_idempotent_action(&self) -> bool {
        match self {
            ActionId::Base(name) => name.is_idempotent(),
            ActionId::Cancel(_) | ActionId::Commit(_) => true,
        }
    }

    /// Returns `true` if this is an undoable base action `aᵘ`.
    pub fn is_undoable_base(&self) -> bool {
        matches!(self, ActionId::Base(name) if name.is_undoable())
    }

    /// Returns `true` if this is a cancellation action `a⁻¹`.
    pub fn is_cancel(&self) -> bool {
        matches!(self, ActionId::Cancel(_))
    }

    /// Returns `true` if this is a commit action `aᶜ`.
    pub fn is_commit(&self) -> bool {
        matches!(self, ActionId::Commit(_))
    }
}

impl From<ActionName> for ActionId {
    fn from(name: ActionName) -> Self {
        ActionId::Base(name)
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionId::Base(n) => write!(f, "{n}"),
            ActionId::Cancel(n) => write!(f, "{}⁻¹", n.name()),
            ActionId::Commit(n) => write!(f, "{}ᶜ", n.name()),
        }
    }
}

/// A request: an action name paired with an input value (§2.1, eq. 1).
///
/// The paper writes requests as pairs `(a, v)`.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName, Request, Value};
///
/// let req = Request::new(
///     ActionId::base(ActionName::idempotent("lookup")),
///     Value::from("alice"),
/// );
/// assert_eq!(req.input(), &Value::from("alice"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Request {
    action: ActionId,
    input: Value,
}

impl Request {
    /// Creates a request from an action and an input value.
    pub fn new(action: ActionId, input: Value) -> Self {
        Request { action, input }
    }

    /// The action to invoke.
    pub fn action(&self) -> &ActionId {
        &self.action
    }

    /// The input value of the action.
    pub fn input(&self) -> &Value {
        &self.input
    }

    /// Splits the request into its components.
    pub fn into_parts(self) -> (ActionId, Value) {
        (self.action, self.input)
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.action, self.input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_reported_correctly() {
        let i = ActionName::idempotent("get");
        let u = ActionName::undoable("put");
        assert!(i.is_idempotent() && !i.is_undoable());
        assert!(u.is_undoable() && !u.is_idempotent());
        assert_eq!(i.kind(), ActionKind::Idempotent);
        assert_eq!(u.kind(), ActionKind::Undoable);
    }

    #[test]
    fn cancel_and_commit_only_exist_for_undoable_bases() {
        let i = ActionId::base(ActionName::idempotent("get"));
        assert_eq!(i.cancel(), None);
        assert_eq!(i.commit(), None);

        let u = ActionId::base(ActionName::undoable("put"));
        let c = u.cancel().unwrap();
        let k = u.commit().unwrap();
        assert!(c.is_cancel() && !c.is_commit());
        assert!(k.is_commit() && !k.is_cancel());
        // Derived actions cannot be cancelled or committed again.
        assert_eq!(c.cancel(), None);
        assert_eq!(k.commit(), None);
    }

    #[test]
    fn derived_actions_are_idempotent() {
        let u = ActionId::base(ActionName::undoable("put"));
        assert!(!u.is_idempotent_action());
        assert!(u.is_undoable_base());
        assert!(u.cancel().unwrap().is_idempotent_action());
        assert!(u.commit().unwrap().is_idempotent_action());
    }

    #[test]
    fn base_name_is_shared_by_derived_actions() {
        let name = ActionName::undoable("put");
        let u = ActionId::base(name.clone());
        assert_eq!(u.cancel().unwrap().base_name(), &name);
        assert_eq!(u.commit().unwrap().base_name(), &name);
    }

    #[test]
    fn equality_distinguishes_kind_and_role() {
        let a = ActionName::idempotent("x");
        let b = ActionName::undoable("x");
        assert_ne!(a, b);
        assert_ne!(ActionId::Cancel(b.clone()), ActionId::Commit(b.clone()));
        assert_ne!(ActionId::Base(b.clone()), ActionId::Cancel(b));
    }

    #[test]
    fn request_accessors() {
        let action = ActionId::base(ActionName::idempotent("get"));
        let req = Request::new(action.clone(), Value::from(3));
        assert_eq!(req.action(), &action);
        assert_eq!(req.input(), &Value::from(3));
        let (a, v) = req.into_parts();
        assert_eq!(a, action);
        assert_eq!(v, Value::from(3));
    }

    #[test]
    fn display_formats() {
        let u = ActionId::base(ActionName::undoable("put"));
        assert_eq!(format!("{u}"), "putᵘ");
        assert_eq!(format!("{}", u.cancel().unwrap()), "put⁻¹");
        assert_eq!(format!("{}", u.commit().unwrap()), "putᶜ");
        let i = ActionId::base(ActionName::idempotent("get"));
        assert_eq!(format!("{i}"), "getⁱ");
    }
}
