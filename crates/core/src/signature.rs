//! History signatures (§3.3).
//!
//! A signature of a server-side history is a client-visible triple
//! `(a, iv, ov)` that is *legal* for that history: the history reduces to
//! the failure-free execution of `a` on `iv` producing `ov` (rules 24–25).
//! Because of non-determinism and server-side retry, a history can have
//! multiple signatures (though for histories produced by a correct protocol
//! the output is fixed by result agreement).

use std::collections::BTreeSet;

use crate::action::ActionId;
use crate::event::Event;
use crate::failure_free::eventsof;
use crate::history::History;
use crate::value::Value;
use crate::xable::search::{search_reduction, SearchBudget, SearchResult};

/// A client-visible signature triple `(a, iv, ov)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Signature {
    /// The action submitted.
    pub action: ActionId,
    /// The input value of the request.
    pub input: Value,
    /// The output value returned to the client.
    pub output: Value,
}

/// Computes the signatures of `h` (rules 24–25): all `(a, iv, ov)` such that
/// `h ⇒* eventsof(a, iv, ov)`.
///
/// Candidate actions and inputs are drawn from the start events of `h`, and
/// candidate outputs from its completion events; any triple outside that set
/// trivially cannot be a signature (reduction cannot invent events).
///
/// Searches are bounded by `budget`; a triple whose search exceeds the
/// budget is *omitted*, so on pathological histories the result is a subset
/// of the true signature set.
///
/// # Examples
///
/// ```
/// use xability_core::signature::signatures;
/// use xability_core::xable::SearchBudget;
/// use xability_core::{ActionId, ActionName, Event, History, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let h: History = [
///     Event::start(a.clone(), Value::from(1)),
///     Event::start(a.clone(), Value::from(1)),
///     Event::complete(a.clone(), Value::from(5)),
/// ]
/// .into_iter()
/// .collect();
/// let sigs = signatures(&h, SearchBudget::default());
/// assert_eq!(sigs.len(), 1);
/// assert_eq!(sigs[0].output, Value::from(5));
/// ```
pub fn signatures(h: &History, budget: SearchBudget) -> Vec<Signature> {
    let mut candidates: BTreeSet<(ActionId, Value)> = BTreeSet::new();
    let mut outputs: BTreeSet<(ActionId, Value)> = BTreeSet::new();
    for ev in h.iter() {
        match ev {
            Event::Start(a, iv) => {
                if matches!(a, ActionId::Base(_)) {
                    candidates.insert((a.clone(), iv.clone()));
                }
            }
            Event::Complete(a, ov) => {
                if matches!(a, ActionId::Base(_)) {
                    outputs.insert((a.clone(), ov.clone()));
                }
            }
        }
    }

    let mut result = Vec::new();
    for (action, input) in &candidates {
        for (out_action, output) in &outputs {
            if out_action != action {
                continue;
            }
            let target = eventsof(action, input, output);
            let reached = search_reduction(h, |cand| cand == &target, target.len(), budget);
            if matches!(reached, SearchResult::Reached(_)) {
                result.push(Signature {
                    action: action.clone(),
                    input: input.clone(),
                    output: output.clone(),
                });
            }
        }
    }
    result.sort();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn undo(name: &str) -> ActionId {
        ActionId::base(ActionName::undoable(name))
    }

    #[test]
    fn failure_free_history_has_its_own_signature() {
        let a = idem("a");
        let h = eventsof(&a, &Value::from(1), &Value::from(5));
        let sigs = signatures(&h, SearchBudget::default());
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].action, a);
        assert_eq!(sigs[0].input, Value::from(1));
        assert_eq!(sigs[0].output, Value::from(5));
    }

    #[test]
    fn undoable_history_signature_requires_commit() {
        let u = undo("u");
        // Attempt completed but never committed: no signature.
        let h: History = [
            Event::start(u.clone(), Value::from(1)),
            Event::complete(u.clone(), Value::from(7)),
        ]
        .into_iter()
        .collect();
        assert!(signatures(&h, SearchBudget::default()).is_empty());
        // With the commit, the signature appears.
        let h = eventsof(&u, &Value::from(1), &Value::from(7));
        let sigs = signatures(&h, SearchBudget::default());
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].output, Value::from(7));
    }

    #[test]
    fn empty_history_has_no_signatures() {
        assert!(signatures(&History::empty(), SearchBudget::default()).is_empty());
    }

    #[test]
    fn retried_history_has_single_signature() {
        let a = idem("a");
        let h: History = [
            Event::start(a.clone(), Value::from(1)),
            Event::start(a.clone(), Value::from(1)),
            Event::complete(a.clone(), Value::from(5)),
            Event::start(a.clone(), Value::from(1)),
            Event::complete(a.clone(), Value::from(5)),
        ]
        .into_iter()
        .collect();
        let sigs = signatures(&h, SearchBudget::default());
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].output, Value::from(5));
    }

    #[test]
    fn disagreeing_outputs_yield_no_signature() {
        let a = idem("a");
        let h: History = [
            Event::start(a.clone(), Value::from(1)),
            Event::complete(a.clone(), Value::from(5)),
            Event::start(a.clone(), Value::from(1)),
            Event::complete(a.clone(), Value::from(6)),
        ]
        .into_iter()
        .collect();
        assert!(signatures(&h, SearchBudget::default()).is_empty());
    }
}
