//! Failure-free histories and `eventsof` (§3.2).
//!
//! A failure-free history is one that could have been produced by a
//! failure-free execution of a single state-machine action:
//!
//! ```text
//! eventsof(aᵘ, iv, ov) = S(aᵘ, iv) C(aᵘ, ov) S(aᶜ, iv) C(aᶜ, nil)   (eq. 21)
//! eventsof(aⁱ, iv, ov) = S(aⁱ, iv) C(aⁱ, ov)                        (eq. 22)
//! ```
//!
//! Because actions may be non-deterministic, `FailureFree(a, iv)` is the set
//! of all such histories over every possible output value. The set is
//! infinite in general; we expose a membership test and a constructor for a
//! given output instead of enumerating it.

use crate::action::ActionId;
use crate::event::Event;
use crate::history::History;
use crate::value::Value;

/// `eventsof(a, iv, ov)`: the failure-free history of a single execution of
/// `a` on input `iv` producing output `ov` (eqs. 21–22).
///
/// For an undoable action the history includes the commit of the action; for
/// an idempotent action it is just the start/completion pair.
///
/// # Panics
///
/// Panics if `action` is not a base action (cancellations and commits are
/// not submitted on their own; they only appear inside `eventsof` of their
/// undoable base action).
///
/// # Examples
///
/// ```
/// use xability_core::{failure_free::eventsof, ActionId, ActionName, Value};
///
/// let a = ActionId::base(ActionName::undoable("transfer"));
/// let h = eventsof(&a, &Value::from(1), &Value::from("ok"));
/// assert_eq!(h.len(), 4); // S C S(commit) C(commit)
/// ```
pub fn eventsof(action: &ActionId, input: &Value, output: &Value) -> History {
    match action {
        ActionId::Base(name) if name.is_idempotent() => History::from_events(vec![
            Event::start(action.clone(), input.clone()),
            Event::complete(action.clone(), output.clone()),
        ]),
        ActionId::Base(_) => {
            let commit = action.commit().expect("undoable base actions have commits");
            History::from_events(vec![
                Event::start(action.clone(), input.clone()),
                Event::complete(action.clone(), output.clone()),
                Event::start(commit.clone(), input.clone()),
                Event::complete(commit, Value::Nil),
            ])
        }
        ActionId::Cancel(_) | ActionId::Commit(_) => {
            panic!("eventsof is defined for base actions only, got {action}")
        }
    }
}

/// Membership test for `FailureFree(a, iv)` (§3.2): is `h` equal to
/// `eventsof(a, iv, ov)` for *some* output value `ov`?
///
/// Returns the output value when the history is failure-free.
pub fn failure_free_output(action: &ActionId, input: &Value, h: &History) -> Option<Value> {
    let expected_len = if action.is_undoable_base() { 4 } else { 2 };
    if h.len() != expected_len {
        return None;
    }
    let ov = match &h[1] {
        Event::Complete(a, ov) if a == action => ov.clone(),
        _ => return None,
    };
    if &eventsof(action, input, &ov) == h {
        Some(ov)
    } else {
        None
    }
}

/// Membership test for the failure-free histories of a *sequence* of
/// actions: is `h` the concatenation `eventsof(a₁,iv₁,ov₁) • … •
/// eventsof(aₙ,ivₙ,ovₙ)` for some outputs `ov₁…ovₙ`?
///
/// This is the generalization used by requirement R3 (§4) for request
/// sequences. Returns the output values when the history is failure-free.
pub fn failure_free_sequence_outputs(ops: &[(ActionId, Value)], h: &History) -> Option<Vec<Value>> {
    let mut outputs = Vec::with_capacity(ops.len());
    let mut pos = 0usize;
    for (action, input) in ops {
        let span = if action.is_undoable_base() { 4 } else { 2 };
        if pos + span > h.len() {
            return None;
        }
        let window = h.slice(pos, pos + span);
        let ov = failure_free_output(action, input, &window)?;
        outputs.push(ov);
        pos += span;
    }
    if pos == h.len() {
        Some(outputs)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn undo(name: &str) -> ActionId {
        ActionId::base(ActionName::undoable(name))
    }

    #[test]
    fn eventsof_idempotent_is_start_complete() {
        let a = idem("a");
        let h = eventsof(&a, &Value::from(1), &Value::from(2));
        assert_eq!(
            h.events(),
            &[
                Event::start(a.clone(), Value::from(1)),
                Event::complete(a, Value::from(2)),
            ]
        );
    }

    #[test]
    fn eventsof_undoable_includes_commit() {
        let u = undo("u");
        let commit = u.commit().unwrap();
        let h = eventsof(&u, &Value::from(1), &Value::from(2));
        assert_eq!(
            h.events(),
            &[
                Event::start(u.clone(), Value::from(1)),
                Event::complete(u, Value::from(2)),
                Event::start(commit.clone(), Value::from(1)),
                Event::complete(commit, Value::Nil),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "base actions only")]
    fn eventsof_rejects_derived_actions() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let _ = eventsof(&cancel, &Value::Nil, &Value::Nil);
    }

    #[test]
    fn failure_free_output_accepts_any_output_value() {
        let a = idem("a");
        for ov in [Value::Nil, Value::from(7), Value::from("x")] {
            let h = eventsof(&a, &Value::from(1), &ov);
            assert_eq!(failure_free_output(&a, &Value::from(1), &h), Some(ov));
        }
    }

    #[test]
    fn failure_free_output_rejects_wrong_shapes() {
        let a = idem("a");
        let u = undo("u");
        assert_eq!(
            failure_free_output(&a, &Value::from(1), &History::empty()),
            None
        );
        // Wrong input.
        let h = eventsof(&a, &Value::from(2), &Value::from(9));
        assert_eq!(failure_free_output(&a, &Value::from(1), &h), None);
        // Idempotent shape offered for undoable action.
        let h = eventsof(&a, &Value::from(1), &Value::from(9));
        assert_eq!(failure_free_output(&u, &Value::from(1), &h), None);
        // Extra trailing event.
        let mut h = eventsof(&a, &Value::from(1), &Value::from(9));
        h.push(Event::start(a.clone(), Value::from(1)));
        assert_eq!(failure_free_output(&a, &Value::from(1), &h), None);
    }

    #[test]
    fn sequence_membership() {
        let a = idem("a");
        let u = undo("u");
        let ops = vec![(a.clone(), Value::from(1)), (u.clone(), Value::from(2))];
        let h = eventsof(&a, &Value::from(1), &Value::from(10)).concat(&eventsof(
            &u,
            &Value::from(2),
            &Value::from(20),
        ));
        assert_eq!(
            failure_free_sequence_outputs(&ops, &h),
            Some(vec![Value::from(10), Value::from(20)])
        );
        // Order matters.
        let swapped = eventsof(&u, &Value::from(2), &Value::from(20)).concat(&eventsof(
            &a,
            &Value::from(1),
            &Value::from(10),
        ));
        assert_eq!(failure_free_sequence_outputs(&ops, &swapped), None);
        // Empty op list matches only the empty history.
        assert_eq!(
            failure_free_sequence_outputs(&[], &History::empty()),
            Some(vec![])
        );
        assert_eq!(failure_free_sequence_outputs(&[], &h), None);
    }
}
