//! The x-able service specification (§4): requirements R1–R4 and the
//! vocabulary needed to state them.
//!
//! A replicated service consists of a *sequencer* `S` (the functionality,
//! held by every server process) and an action `submit` used by clients. The
//! service is x-able if:
//!
//! * **R1** — `submit` is idempotent.
//! * **R2** — the client can eventually execute `submit` successfully
//!   (liveness / non-blocking).
//! * **R3** — if the client submits `R₁…Rₙ`, each after the previous
//!   succeeded, the server-side history is x-able with respect to `R₁…Rₙ`
//!   or `R₁…Rₙ₋₁`.
//! * **R4** — a successful `submit(R)` returns a value in
//!   `PossibleReply(S, R)`.
//!
//! The history-level content of R3 is implemented here (over the theory in
//! [`crate::xable`]); the protocol-level validations of R1, R2 and R4 need a
//! running system and live in the `xability-harness` crate, which consumes
//! the [`Requirement`]/[`Violation`] vocabulary defined here.

use std::fmt;

use crate::action::Request;
use crate::history::HistoryRead;
use crate::value::Value;
use crate::xable::{Checker, TieredChecker, Verdict};

/// The four obligations of an x-able service (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requirement {
    /// `submit` is idempotent.
    R1,
    /// `submit` eventually succeeds.
    R2,
    /// The server-side history is x-able w.r.t. the submitted sequence.
    R3,
    /// Replies are possible replies of the state machine.
    R4,
}

impl fmt::Display for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Requirement::R1 => write!(f, "R1 (submit is idempotent)"),
            Requirement::R2 => write!(f, "R2 (submit eventually succeeds)"),
            Requirement::R3 => write!(f, "R3 (server-side history is x-able)"),
            Requirement::R4 => write!(f, "R4 (reply is a possible reply)"),
        }
    }
}

/// A detected violation of one of the requirements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which requirement was violated.
    pub requirement: Requirement,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl Violation {
    /// Creates a violation record.
    pub fn new(requirement: Requirement, detail: impl Into<String>) -> Self {
        Violation {
            requirement,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.requirement, self.detail)
    }
}

/// The sequencer abstraction of §4: maps the `i`-th client request to the
/// sequence of state-machine actions the service must execute for it.
///
/// In the common case a request maps to a single action — the default
/// implementation of [`Sequencer::actions_for`] does exactly that — but the
/// paper allows a request to expand into a sequence of actions.
pub trait Sequencer {
    /// The actions to execute for the `index`-th request (0-based).
    ///
    /// The returned list must be the same for every replica given the same
    /// request position and request (agreement on non-deterministic *results*
    /// is the protocol's job; agreement on the action *list* is the
    /// sequencer's contract).
    fn actions_for(&self, index: usize, request: &Request) -> Vec<Request> {
        let _ = index;
        vec![request.clone()]
    }
}

/// The trivial sequencer: each request is executed as a single action.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdentitySequencer;

impl Sequencer for IdentitySequencer {}

/// An oracle for `PossibleReply(S, R₁…Rₙ)` (§3.4): which reply values are
/// possible for the last request of a sequence, given that the state machine
/// executed the earlier requests.
pub trait PossibleReply {
    /// Returns `true` if `reply` is a possible reply to the last request of
    /// `requests` after the preceding requests executed.
    fn is_possible(&self, requests: &[Request], reply: &Value) -> bool;
}

/// A permissive oracle that accepts every reply; useful as a default when a
/// service has no reply model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnyReply;

impl PossibleReply for AnyReply {
    fn is_possible(&self, _requests: &[Request], _reply: &Value) -> bool {
        true
    }
}

/// Converts an R3 verdict into the harness's violation vocabulary:
/// `Xable` is no violation, `NotXable` is a definite one, and `Unknown` is
/// reported as a violation too (an undecided obligation is not discharged).
pub fn r3_violation(verdict: &Verdict) -> Option<Violation> {
    match verdict {
        Verdict::Xable { .. } => None,
        Verdict::NotXable { reason } => Some(Violation::new(Requirement::R3, reason.clone())),
        Verdict::Unknown { reason } => Some(Violation::new(
            Requirement::R3,
            format!("undecided: {reason}"),
        )),
    }
}

/// Evaluates the history-level part of requirement R3 for a sequencer `S`
/// and a submitted request sequence, using the default [`TieredChecker`]
/// (fast tier, escalating small undecided histories to exhaustive search).
///
/// Expands each request through the sequencer and checks that the
/// server-side history is x-able with respect to the full expanded sequence,
/// or the sequence with the *last request's* actions abandoned.
///
/// # Examples
///
/// ```
/// use xability_core::spec::{check_r3, IdentitySequencer};
/// use xability_core::{failure_free::eventsof, ActionId, ActionName, Request, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let reqs = vec![Request::new(a.clone(), Value::from(1))];
/// let h = eventsof(&a, &Value::from(1), &Value::from(5));
/// assert!(check_r3(&IdentitySequencer, &reqs, &h).is_none());
/// ```
pub fn check_r3<S: Sequencer>(
    sequencer: &S,
    requests: &[Request],
    server_history: &dyn HistoryRead,
) -> Option<Violation> {
    check_r3_with(
        &TieredChecker::default(),
        sequencer,
        requests,
        server_history,
    )
}

/// [`check_r3`] with an explicit decision procedure — any [`Checker`],
/// including a custom-budgeted [`TieredChecker`].
///
/// # Examples
///
/// ```
/// use xability_core::spec::{check_r3_with, IdentitySequencer};
/// use xability_core::xable::FastChecker;
/// use xability_core::{failure_free::eventsof, ActionId, ActionName, Request, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let reqs = vec![Request::new(a.clone(), Value::from(1))];
/// let h = eventsof(&a, &Value::from(1), &Value::from(5));
/// assert!(check_r3_with(&FastChecker::default(), &IdentitySequencer, &reqs, &h).is_none());
/// ```
pub fn check_r3_with<C: Checker + ?Sized, S: Sequencer>(
    checker: &C,
    sequencer: &S,
    requests: &[Request],
    server_history: &dyn HistoryRead,
) -> Option<Violation> {
    let mut expanded: Vec<Request> = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        expanded.extend(sequencer.actions_for(i, r));
    }
    r3_violation(&checker.check_requests_source(server_history, &expanded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionId, ActionName};
    use crate::failure_free::eventsof;

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    #[test]
    fn identity_sequencer_maps_request_to_itself() {
        let r = Request::new(idem("a"), Value::from(1));
        assert_eq!(IdentitySequencer.actions_for(3, &r), vec![r.clone()]);
    }

    #[test]
    fn any_reply_accepts_everything() {
        assert!(AnyReply.is_possible(&[], &Value::Nil));
    }

    #[test]
    fn r3_holds_for_failure_free_history() {
        let a = idem("a");
        let reqs = vec![Request::new(a.clone(), Value::from(1))];
        let h = eventsof(&a, &Value::from(1), &Value::from(5));
        assert_eq!(check_r3(&IdentitySequencer, &reqs, &h), None);
    }

    #[test]
    fn r3_violation_for_duplicated_effect() {
        let a = idem("a");
        let reqs = vec![Request::new(a.clone(), Value::from(1))];
        // Two completions with different outputs: irreducible duplicate.
        let h = eventsof(&a, &Value::from(1), &Value::from(5)).concat(&eventsof(
            &a,
            &Value::from(1),
            &Value::from(6),
        ));
        let v = check_r3(&IdentitySequencer, &reqs, &h).expect("violation");
        assert_eq!(v.requirement, Requirement::R3);
    }

    #[test]
    fn r3_allows_abandoned_last_request() {
        let a = idem("a");
        let b = idem("b");
        let reqs = vec![
            Request::new(a.clone(), Value::from(1)),
            Request::new(b, Value::from(2)),
        ];
        // b never ran at all.
        let h = eventsof(&a, &Value::from(1), &Value::from(5));
        assert_eq!(check_r3(&IdentitySequencer, &reqs, &h), None);
    }

    #[test]
    fn violation_display_mentions_requirement() {
        let v = Violation::new(Requirement::R2, "stalled");
        let text = format!("{v}");
        assert!(text.contains("R2") && text.contains("stalled"));
    }

    #[test]
    fn requirement_display_is_informative() {
        for (r, needle) in [
            (Requirement::R1, "idempotent"),
            (Requirement::R2, "eventually"),
            (Requirement::R3, "x-able"),
            (Requirement::R4, "possible"),
        ] {
            assert!(format!("{r}").contains(needle));
        }
    }
}
