//! The segmented append-only log shared by the checker engine's symbol
//! tables (via [`crate::intern::Interner`]) and the `xability-store`
//! crate's event segments.
//!
//! An [`AppendLog`] grows in fixed-capacity segments. Old segments are
//! never moved or reallocated — appending allocates a fresh segment when
//! the open one fills, so a multi-million-entry log never pays the
//! reallocate-and-copy of a growing `Vec`. Segments are reference
//! counted, which makes a [`LogView`] — an immutable snapshot of the
//! first `len` entries — a handful of `Arc` clones.
//!
//! Snapshots and appends coexist without locks or interior mutability:
//! the only shared-but-still-growing segment is the open tail, and an
//! append that finds its tail aliased by a snapshot copies that one
//! segment (at most `segment_capacity` entries) once and continues in the
//! private copy. Amortized append stays O(1); a snapshot costs
//! O(#segments) pointer clones. Because a [`LogView`] owns `Arc`s to its
//! segments and never observes later appends, a view handed to another
//! thread keeps reading a stable prefix while the owner keeps appending —
//! the snapshot-while-appending guarantee the store and the sharded
//! checker rely on.

use std::sync::Arc;

/// An append-only log of `T`s stored in fixed-capacity segments.
#[derive(Debug, Clone)]
pub struct AppendLog<T> {
    segments: Vec<Arc<Vec<T>>>,
    len: usize,
    segment_capacity: usize,
}

impl<T: Clone> AppendLog<T> {
    /// An empty log with the given segment capacity (entries per segment).
    ///
    /// # Panics
    ///
    /// Panics if `segment_capacity` is zero.
    pub fn new(segment_capacity: usize) -> Self {
        assert!(segment_capacity > 0, "segment capacity must be positive");
        AppendLog {
            segments: Vec::new(),
            len: 0,
            segment_capacity,
        }
    }

    /// The number of entries appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entry has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one entry. Amortized O(1); never moves a closed segment.
    pub fn push(&mut self, item: T) {
        let cap = self.segment_capacity;
        let needs_segment = self.segments.last().map_or(true, |seg| seg.len() == cap);
        if needs_segment {
            self.segments.push(Arc::new(Vec::with_capacity(cap)));
        }
        let tail = self.segments.last_mut().expect("just ensured");
        if let Some(vec) = Arc::get_mut(tail) {
            vec.push(item);
        } else {
            // A snapshot still references the open tail: copy it once
            // (bounded by the segment capacity) and append privately.
            let mut copy = Vec::with_capacity(cap);
            copy.extend(tail.iter().cloned());
            copy.push(item);
            *tail = Arc::new(copy);
        }
        self.len += 1;
    }

    /// The entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> &T {
        assert!(index < self.len, "AppendLog index {index} out of bounds");
        &self.segments[index / self.segment_capacity][index % self.segment_capacity]
    }

    /// An immutable snapshot of the current contents: O(#segments) `Arc`
    /// clones, no entry is copied.
    pub fn snapshot(&self) -> LogView<T> {
        LogView {
            segments: self.segments.clone(),
            len: self.len,
            segment_capacity: self.segment_capacity,
        }
    }

    /// Heap bytes held by the segments (capacity-based, excluding any
    /// per-entry heap allocations behind `T`).
    pub fn segment_bytes(&self) -> usize {
        self.segments
            .iter()
            .map(|seg| seg.capacity() * std::mem::size_of::<T>())
            .sum()
    }
}

/// An immutable snapshot of the first `len` entries of an [`AppendLog`].
///
/// Cloning is O(#segments); the entries themselves are shared with the
/// live log (and with every other view).
#[derive(Debug, Clone)]
pub struct LogView<T> {
    segments: Vec<Arc<Vec<T>>>,
    len: usize,
    segment_capacity: usize,
}

impl<T> LogView<T> {
    /// The number of entries in the snapshot.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn get(&self, index: usize) -> &T {
        assert!(index < self.len, "LogView index {index} out of bounds");
        &self.segments[index / self.segment_capacity][index % self.segment_capacity]
    }

    /// Iterates the snapshot's entries in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_across_segments() {
        let mut log = AppendLog::new(4);
        for i in 0..11usize {
            log.push(i);
        }
        assert_eq!(log.len(), 11);
        assert!(!log.is_empty());
        for i in 0..11usize {
            assert_eq!(*log.get(i), i);
        }
    }

    #[test]
    fn snapshot_is_immutable_under_later_appends() {
        let mut log = AppendLog::new(4);
        for i in 0..6usize {
            log.push(i);
        }
        let snap = log.snapshot();
        for i in 6..20usize {
            log.push(i);
        }
        assert_eq!(snap.len(), 6);
        assert_eq!(
            snap.iter().copied().collect::<Vec<_>>(),
            (0..6).collect::<Vec<_>>()
        );
        // The live log has everything.
        assert_eq!(*log.get(19), 19);
    }

    #[test]
    fn aliased_open_segment_is_copied_once_on_append() {
        let mut log = AppendLog::new(8);
        log.push(1u32);
        let snap = log.snapshot(); // aliases the open segment
        log.push(2); // forces the copy-on-write
        log.push(3); // appends privately, no further copy observable
        assert_eq!(snap.len(), 1);
        assert_eq!(*snap.get(0), 1);
        assert_eq!(
            (0..log.len()).map(|i| *log.get(i)).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_get_respects_snapshot_length() {
        let mut log = AppendLog::new(4);
        log.push(1u32);
        log.push(2);
        let snap = log.snapshot();
        log.push(3);
        // Index 2 exists in the live log but not in the snapshot.
        let _ = snap.get(2);
    }

    #[test]
    fn segment_bytes_counts_capacity() {
        let mut log: AppendLog<u64> = AppendLog::new(4);
        log.push(1);
        assert_eq!(log.segment_bytes(), 4 * 8);
    }

    #[test]
    fn snapshot_reads_concurrently_with_appends() {
        // The snapshot-while-appending guarantee, cross-thread: a view
        // handed to another thread keeps reading its stable prefix while
        // the owner appends past it.
        let mut log = AppendLog::new(16);
        for i in 0..40u64 {
            log.push(i);
        }
        let snap = log.snapshot();
        std::thread::scope(|scope| {
            let reader = scope.spawn(move || (0..snap.len()).map(|i| *snap.get(i)).sum::<u64>());
            for i in 40..400u64 {
                log.push(i);
            }
            assert_eq!(reader.join().expect("reader thread"), (0..40).sum::<u64>());
        });
        assert_eq!(log.len(), 400);
    }
}
