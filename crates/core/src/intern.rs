//! Symbol interning for action names and values.
//!
//! A trace over millions of events mentions only a handful of distinct
//! [`ActionName`]s and — after request keys — a bounded set of distinct
//! [`Value`]s. The [`Interner`] stores each distinct name/value **once**
//! and hands out dense `u32` symbols.
//!
//! Two layers share this type: the `xability-store` crate's packed event
//! representation carries two symbols instead of two heap allocations,
//! and the fast/incremental checker engine ([`crate::xable::fast`]) keys
//! its per-request groups by symbol pairs, so the per-event hot path is a
//! hash probe instead of an owned `(ActionName, Value)` clone plus an
//! ordered-map walk.
//!
//! Symbols are append-only: once assigned, a symbol never changes meaning,
//! so snapshots taken at any time resolve every symbol they can contain.
//! [`Interner::reader`] hands out such a snapshot — an [`InternerReader`]
//! sharing the underlying segments — which other threads can resolve
//! symbols against while the owner keeps interning.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;

use crate::action::ActionName;
use crate::seglog::{AppendLog, LogView};
use crate::value::Value;

/// Entries per symbol-table segment. Symbol tables are small (distinct
/// names/values, not events), so segments are modest.
const SYMBOL_SEGMENT: usize = 1024;

/// An append-only interner mapping [`ActionName`]s and [`Value`]s to
/// dense `u32` symbols.
///
/// # Examples
///
/// ```
/// use xability_core::intern::Interner;
/// use xability_core::{ActionName, Value};
///
/// let mut interner = Interner::new();
/// let a = interner.intern_action(&ActionName::idempotent("get"));
/// let b = interner.intern_action(&ActionName::idempotent("get"));
/// assert_eq!(a, b); // same name, same symbol
/// let v = interner.intern_value(&Value::from(42));
/// assert_eq!(interner.value(v), &Value::from(42));
/// assert_eq!(interner.lookup_value(&Value::from(42)), Some(v));
/// assert_eq!(interner.lookup_value(&Value::from(43)), None); // no insert
/// ```
#[derive(Debug, Clone)]
pub struct Interner {
    hasher: RandomState,
    actions: AppendLog<ActionName>,
    /// Lookup index keyed by hash; the log is the single authority for
    /// the interned names, so nothing is deep-stored twice. Buckets hold
    /// the (rare) hash collisions.
    action_index: HashMap<u64, Vec<u32>>,
    values: AppendLog<Value>,
    value_index: HashMap<u64, Vec<u32>>,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            hasher: RandomState::new(),
            actions: AppendLog::new(SYMBOL_SEGMENT),
            action_index: HashMap::new(),
            values: AppendLog::new(SYMBOL_SEGMENT),
            value_index: HashMap::new(),
        }
    }

    /// The symbol of `name`, interning it on first sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct names are interned.
    pub fn intern_action(&mut self, name: &ActionName) -> u32 {
        intern(
            &self.hasher,
            &mut self.actions,
            &mut self.action_index,
            name,
        )
    }

    /// The symbol of `value`, interning it on first sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct values are interned.
    pub fn intern_value(&mut self, value: &Value) -> u32 {
        intern(&self.hasher, &mut self.values, &mut self.value_index, value)
    }

    /// The symbol of `name` if it has already been interned — a pure
    /// lookup that never inserts (for deciders answering questions about
    /// keys the history may never have mentioned).
    pub fn lookup_action(&self, name: &ActionName) -> Option<u32> {
        lookup(&self.hasher, &self.actions, &self.action_index, name)
    }

    /// The symbol of `value` if it has already been interned — a pure
    /// lookup that never inserts.
    pub fn lookup_value(&self, value: &Value) -> Option<u32> {
        lookup(&self.hasher, &self.values, &self.value_index, value)
    }

    /// Resolves an action symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn action(&self, sym: u32) -> &ActionName {
        self.actions.get(sym as usize)
    }

    /// Resolves a value symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this interner.
    pub fn value(&self, sym: u32) -> &Value {
        self.values.get(sym as usize)
    }

    /// How many distinct action names have been interned.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// How many distinct values have been interned.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// A shared read handle over the current symbol tables: O(#segments)
    /// `Arc` clones, no name or value copied. The reader resolves every
    /// symbol assigned so far and never observes later interning, so it
    /// can be handed to other threads (worker shards, store snapshots)
    /// while the owner keeps appending.
    pub fn reader(&self) -> InternerReader {
        InternerReader {
            actions: self.actions.snapshot(),
            values: self.values.snapshot(),
        }
    }

    /// Approximate heap bytes held by the symbol tables: segment storage
    /// plus the per-entry heap behind names and values (each stored once
    /// — the lookup indexes hold only hashes and symbols, counted by
    /// entry size; their exact `HashMap` footprint is implementation
    /// defined).
    pub fn approx_bytes(&self) -> usize {
        let name_heap: usize = (0..self.actions.len())
            .map(|i| self.actions.get(i).name().len())
            .sum();
        let value_heap: usize = (0..self.values.len())
            .map(|i| value_heap_bytes(self.values.get(i)))
            .sum();
        let index_entries = (self.actions.len() + self.values.len())
            * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>());
        self.actions.segment_bytes()
            + self.values.segment_bytes()
            + name_heap
            + value_heap
            + index_entries
    }
}

/// An immutable, cheaply cloneable snapshot of an [`Interner`]'s symbol
/// tables (see [`Interner::reader`]): resolves symbols without borrowing
/// the live interner, including from other threads.
#[derive(Debug, Clone)]
pub struct InternerReader {
    actions: LogView<ActionName>,
    values: LogView<Value>,
}

impl InternerReader {
    /// Resolves an action symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was assigned after this reader was taken (or not
    /// at all).
    pub fn action(&self, sym: u32) -> &ActionName {
        self.actions.get(sym as usize)
    }

    /// Resolves a value symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was assigned after this reader was taken (or not
    /// at all).
    pub fn value(&self, sym: u32) -> &Value {
        self.values.get(sym as usize)
    }

    /// How many action symbols this reader resolves.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// How many value symbols this reader resolves.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Iterates the interned action names in symbol order.
    pub fn actions(&self) -> impl Iterator<Item = &ActionName> + '_ {
        self.actions.iter()
    }

    /// Iterates the interned values in symbol order.
    pub fn values(&self) -> impl Iterator<Item = &Value> + '_ {
        self.values.iter()
    }
}

/// The one interning routine behind both symbol tables: probe the hash
/// bucket against the log (the single authority for the interned items),
/// appending on a miss.
///
/// # Panics
///
/// Panics if more than `u32::MAX` distinct items are interned.
fn intern<T: std::hash::Hash + Eq + Clone>(
    hasher: &RandomState,
    log: &mut AppendLog<T>,
    index: &mut HashMap<u64, Vec<u32>>,
    item: &T,
) -> u32 {
    let hash = hasher.hash_one(item);
    if let Some(bucket) = index.get(&hash) {
        for &sym in bucket {
            if log.get(sym as usize) == item {
                return sym;
            }
        }
    }
    let sym = u32::try_from(log.len()).expect("more than u32::MAX distinct symbols");
    log.push(item.clone());
    index.entry(hash).or_default().push(sym);
    sym
}

/// The read-only probe behind [`Interner::lookup_action`] /
/// [`Interner::lookup_value`].
fn lookup<T: std::hash::Hash + Eq + Clone>(
    hasher: &RandomState,
    log: &AppendLog<T>,
    index: &HashMap<u64, Vec<u32>>,
    item: &T,
) -> Option<u32> {
    let hash = hasher.hash_one(item);
    index
        .get(&hash)?
        .iter()
        .copied()
        .find(|&sym| log.get(sym as usize) == item)
}

/// Approximate heap bytes owned by a [`Value`] (not counting the inline
/// enum itself): string contents, list/pair element storage, recursively.
///
/// The store's `TraceStore::approx_bytes` accounting and the
/// `benches/store.rs` owned-`Vec<Event>` baseline use this same
/// estimator, so the bytes-per-event comparison in `BENCH_store.json`
/// cannot silently diverge.
pub fn value_heap_bytes(value: &Value) -> usize {
    match value {
        Value::Nil | Value::Bool(_) | Value::Int(_) => 0,
        Value::Str(s) => s.len(),
        Value::List(items) => {
            items.len() * std::mem::size_of::<Value>()
                + items.iter().map(value_heap_bytes).sum::<usize>()
        }
        Value::Pair(p) => {
            2 * std::mem::size_of::<Value>() + value_heap_bytes(&p.0) + value_heap_bytes(&p.1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern_action(&ActionName::idempotent("a"));
        let b = i.intern_action(&ActionName::undoable("b"));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(i.intern_action(&ActionName::idempotent("a")), 0);
        assert_eq!(i.action_count(), 2);
        assert_eq!(i.action(1), &ActionName::undoable("b"));
    }

    #[test]
    fn kind_distinguishes_names() {
        let mut i = Interner::new();
        let idem = i.intern_action(&ActionName::idempotent("x"));
        let undo = i.intern_action(&ActionName::undoable("x"));
        assert_ne!(idem, undo, "kind is part of the name identity");
    }

    #[test]
    fn values_round_trip() {
        let mut i = Interner::new();
        let vals = [
            Value::Nil,
            Value::from(7),
            Value::from("hello"),
            Value::list([Value::from(1), Value::pair(Value::from("k"), Value::Nil)]),
        ];
        let syms: Vec<u32> = vals.iter().map(|v| i.intern_value(v)).collect();
        for (sym, val) in syms.iter().zip(&vals) {
            assert_eq!(i.value(*sym), val);
        }
        assert_eq!(i.value_count(), vals.len());
    }

    #[test]
    fn lookup_never_inserts() {
        let mut i = Interner::new();
        let sym = i.intern_value(&Value::from(7));
        assert_eq!(i.lookup_value(&Value::from(7)), Some(sym));
        assert_eq!(i.lookup_value(&Value::from(8)), None);
        assert_eq!(i.value_count(), 1, "lookup must not intern");
        assert_eq!(i.lookup_action(&ActionName::idempotent("a")), None);
        let a = i.intern_action(&ActionName::idempotent("a"));
        assert_eq!(i.lookup_action(&ActionName::idempotent("a")), Some(a));
        assert_eq!(
            i.lookup_action(&ActionName::undoable("a")),
            None,
            "kind is part of the identity"
        );
    }

    #[test]
    fn reader_is_a_stable_snapshot() {
        let mut i = Interner::new();
        let a = i.intern_action(&ActionName::idempotent("a"));
        let v = i.intern_value(&Value::from(1));
        let reader = i.reader();
        let b = i.intern_action(&ActionName::idempotent("b"));
        assert_eq!(reader.action_count(), 1);
        assert_eq!(reader.value_count(), 1);
        assert_eq!(reader.action(a), &ActionName::idempotent("a"));
        assert_eq!(reader.value(v), &Value::from(1));
        assert_eq!(i.action(b), &ActionName::idempotent("b"));
        assert_eq!(
            reader.actions().collect::<Vec<_>>(),
            vec![&ActionName::idempotent("a")]
        );
        assert_eq!(reader.values().collect::<Vec<_>>(), vec![&Value::from(1)]);
    }

    #[test]
    fn reader_resolves_from_other_threads() {
        let mut i = Interner::new();
        let v = i.intern_value(&Value::from("shared"));
        let reader = i.reader();
        std::thread::scope(|scope| {
            let worker = scope.spawn(move || reader.value(v).clone());
            // The owner keeps interning while the worker resolves.
            i.intern_value(&Value::from("later"));
            assert_eq!(worker.join().expect("worker"), Value::from("shared"));
        });
    }

    #[test]
    fn heap_estimate_is_monotone() {
        let mut i = Interner::new();
        let before = i.approx_bytes();
        i.intern_value(&Value::from("a fairly long string value"));
        assert!(i.approx_bytes() > before);
    }
}
