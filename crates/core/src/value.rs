//! The `Value` domain of the paper (§2.1).
//!
//! The paper posits a set `Value` containing the input and output values of
//! actions. We realize it as a small algebraic data type that is totally
//! ordered and hashable, so that values can serve as deterministic keys in
//! histories, consensus payloads, and deduplication tables.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An element of the paper's `Value` set: inputs and outputs of actions.
///
/// `Value` is deliberately closed (not generic) so that histories produced by
/// different subsystems are directly comparable, and so that the theory crate
/// stays free of type parameters that would leak into every downstream
/// signature.
///
/// # Examples
///
/// ```
/// use xability_core::Value;
///
/// let v = Value::list([Value::from("transfer"), Value::from(250)]);
/// assert_eq!(v.as_list().unwrap().len(), 2);
/// assert_ne!(v, Value::Nil);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub enum Value {
    /// The distinguished `nil` value returned by commit and cancellation
    /// actions (§3.1).
    #[default]
    Nil,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A string.
    Str(String),
    /// An ordered sequence of values.
    List(Vec<Value>),
    /// A key/value pair; maps are encoded as sorted lists of pairs.
    Pair(Box<(Value, Value)>),
}

impl Value {
    /// Builds a list value from an iterator of values.
    ///
    /// # Examples
    ///
    /// ```
    /// use xability_core::Value;
    /// let v = Value::list([Value::from(1), Value::from(2)]);
    /// assert_eq!(v.as_list().unwrap()[1], Value::from(2));
    /// ```
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Value::List(items.into_iter().collect())
    }

    /// Builds a pair value.
    pub fn pair(first: Value, second: Value) -> Self {
        Value::Pair(Box::new((first, second)))
    }

    /// Returns the contained integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the contained list, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the contained pair, if this is a `Pair`.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(p) => Some((&p.0, &p.1)),
            _ => None,
        }
    }

    /// Returns `true` if this value is `Nil`.
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Looks up `key` in a map encoded as a list of pairs.
    ///
    /// Returns the value of the first pair whose first component equals
    /// `key`, or `None` if this value is not a list of pairs containing the
    /// key.
    ///
    /// # Examples
    ///
    /// ```
    /// use xability_core::Value;
    /// let m = Value::list([
    ///     Value::pair(Value::from("amount"), Value::from(250)),
    ///     Value::pair(Value::from("to"), Value::from("alice")),
    /// ]);
    /// assert_eq!(m.lookup(&Value::from("amount")), Some(&Value::from(250)));
    /// assert_eq!(m.lookup(&Value::from("cc")), None);
    /// ```
    pub fn lookup(&self, key: &Value) -> Option<&Value> {
        let items = self.as_list()?;
        items.iter().find_map(|item| match item {
            Value::Pair(p) if &p.0 == key => Some(&p.1),
            _ => None,
        })
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Self {
        Value::pair(a.into(), b.into())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Pair(p) => write!(f, "({}, {})", p.0, p.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_default() {
        assert_eq!(Value::default(), Value::Nil);
        assert!(Value::Nil.is_nil());
        assert!(!Value::Int(0).is_nil());
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(
            Value::from(("k", 1)).as_pair().unwrap().0,
            &Value::from("k")
        );
    }

    #[test]
    fn accessors_reject_wrong_variant() {
        assert_eq!(Value::Nil.as_int(), None);
        assert_eq!(Value::from(1).as_str(), None);
        assert_eq!(Value::from("x").as_bool(), None);
        assert_eq!(Value::from(1).as_list(), None);
        assert_eq!(Value::from(1).as_pair(), None);
    }

    #[test]
    fn lookup_finds_first_matching_pair() {
        let m = Value::list([
            Value::pair(Value::from("a"), Value::from(1)),
            Value::pair(Value::from("a"), Value::from(2)),
            Value::from(99), // non-pair entries are skipped
        ]);
        assert_eq!(m.lookup(&Value::from("a")), Some(&Value::from(1)));
        assert_eq!(m.lookup(&Value::from("b")), None);
        assert_eq!(Value::Nil.lookup(&Value::from("a")), None);
    }

    #[test]
    fn ordering_is_total_and_structural() {
        let mut vs = [
            Value::from("b"),
            Value::Nil,
            Value::from(2),
            Value::from(1),
            Value::from("a"),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Nil);
        // Ints sort before strings (variant order), and within variant by value.
        assert_eq!(vs[1], Value::from(1));
        assert_eq!(vs[2], Value::from(2));
        assert_eq!(vs[3], Value::from("a"));
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Nil,
            Value::from(0),
            Value::from(""),
            Value::list([]),
            Value::pair(Value::Nil, Value::Nil),
        ] {
            assert!(!format!("{v}").is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }
}
