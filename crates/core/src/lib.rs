//! # xability-core — the x-ability theory of replication
//!
//! A from-scratch implementation of the theory of *X-Ability
//! (Exactly-once-ability)* from Frølund & Guerraoui, *"X-Ability: A Theory
//! of Replication"* (PODC 2000).
//!
//! X-ability is a correctness criterion for replicated services: a history
//! of action executions is **x-able** when its externally observable
//! side-effects appear to have happened *exactly once*, even though actions
//! may have been retried, cancelled, or executed concurrently by several
//! replicas. The theory plays the role for replicated programs that
//! linearizability plays for concurrent objects and serializability for
//! transactions.
//!
//! ## Crate layout
//!
//! | Module | Paper section | Contents |
//! |---|---|---|
//! | [`value`] | §2.1 | the `Value` domain of action inputs/outputs |
//! | [`action`] | §2.1, §3.1 | actions, idempotent/undoable kinds, cancel/commit, requests |
//! | [`event`] | §2.2 | start/completion events `S(a,iv)`, `C(a,ov)` |
//! | [`history`] | §2.3, Fig. 3 | event sequences, concatenation, `(a,iv) ∈ h`, `first`/`second` |
//! | [`pattern`] | §2.4, Fig. 1–2 | history patterns and the matching relation ⊨ |
//! | [`reduce`] | §3.1, Fig. 4 | the reduction relation ⇒ (rules 17–20) |
//! | [`failure_free`] | §3.2 | `eventsof` and the `FailureFree` sets |
//! | [`xable`] | §3.2, eq. 23 | the x-able predicate: the [`xable::Checker`] tiers (search, fast, tiered) plus the online [`xable::IncrementalChecker`] |
//! | [`signature`] | §3.3 | history signatures (rules 24–25) |
//! | [`spec`] | §3.4, §4 | `PossibleReply`, sequencers, requirements R1–R4 |
//! | [`seglog`] | — | segmented append-only log with O(#segments) snapshots |
//! | [`intern`] | — | `u32` symbol interning, shared by the checker engine and the trace store |
//!
//! ## Quick start
//!
//! ```
//! use xability_core::xable::{Checker, TieredChecker};
//! use xability_core::{ActionId, ActionName, Event, History, Value};
//!
//! // An idempotent action retried once by a fault-tolerant service:
//! let ping = ActionId::base(ActionName::idempotent("ping"));
//! let history: History = [
//!     Event::start(ping.clone(), Value::Nil),            // attempt 1 (failed)
//!     Event::start(ping.clone(), Value::Nil),            // attempt 2
//!     Event::complete(ping.clone(), Value::from("pong")), // attempt 2 succeeds
//! ]
//! .into_iter()
//! .collect();
//!
//! // The history is x-able: it reduces to a single failure-free execution,
//! // so the retry is invisible to the environment. The tiered checker asks
//! // the polynomial fast tier first and escalates undecided small
//! // histories to the exhaustive search.
//! let verdict = TieredChecker::default().check(&history, &[(ping, Value::Nil)], &[]);
//! assert!(verdict.is_xable());
//! assert_eq!(verdict.outputs(), Some(&[Value::from("pong")][..]));
//! ```
//!
//! To verify a history *while it is being produced*, feed events to the
//! online [`xable::IncrementalChecker`] (`push` is amortized O(1); a
//! verdict is available at every prefix).
//!
//! The companion crates build on this theory: `xability-sim` (deterministic
//! asynchronous system simulation), `xability-consensus` (the consensus
//! objects the paper assumes), `xability-services` (external services with
//! idempotent/undoable side effects), `xability-protocol` (the paper's §5
//! replication algorithm plus primary-backup and active-replication
//! baselines), and `xability-harness` (experiments regenerating every figure
//! of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod event;
pub mod failure_free;
pub mod history;
pub mod intern;
pub mod pattern;
pub mod reduce;
pub mod seglog;
pub mod signature;
pub mod spec;
pub mod value;
pub mod xable;

pub use action::{ActionId, ActionKind, ActionName, Request};
pub use event::Event;
pub use history::{History, HistoryRead, HistoryWindow};
pub use intern::{Interner, InternerReader};
pub use pattern::{InterleavedWitness, Pattern, SimplePattern};
pub use value::Value;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Value>();
        assert_send_sync::<ActionName>();
        assert_send_sync::<ActionId>();
        assert_send_sync::<Request>();
        assert_send_sync::<Event>();
        assert_send_sync::<History>();
        assert_send_sync::<Pattern>();
        assert_send_sync::<SimplePattern>();
    }
}
