//! Histories (§2.3): totally ordered sequences of events.
//!
//! The paper's history syntax is
//!
//! ```text
//! h ::= Λ | e₁…eₙ | h₁ • … • hₙ
//! ```
//!
//! with concatenation `•` concatenating the underlying event sequences
//! (eq. 3), and the appearance predicate `(a, iv) ∈ h` holding when `h`
//! contains the start event `S(a, iv)` (§2.3).

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::action::ActionId;
use crate::event::Event;
use crate::value::Value;

/// Read-only access to a totally ordered event sequence — the checker
/// input abstraction.
///
/// Every x-ability decision procedure is ultimately a function of one
/// event stream, but the stream may live in different representations: an
/// owned [`History`] (the theory's value type), a borrowed window over
/// one ([`HistoryWindow`]), or a compact interned store (the
/// `xability-store` crate's `HistoryView`). `HistoryRead` is the surface
/// the fast and incremental checkers need — length, per-index decode,
/// index-set gathering, and full iteration — so they can run over any of
/// them without the caller materializing a `Vec<Event>` copy first.
///
/// The trait is object safe: checkers accept `&dyn HistoryRead`.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName, Event, History, HistoryRead, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let h: History = [
///     Event::start(a.clone(), Value::from(1)),
///     Event::complete(a, Value::from(42)),
/// ]
/// .into_iter()
/// .collect();
///
/// let source: &dyn HistoryRead = &h;
/// assert_eq!(source.len(), 2);
/// assert!(source.event_at(0).is_start());
/// assert_eq!(source.to_history(), h);
/// ```
pub trait HistoryRead {
    /// The number of events in the sequence.
    fn len(&self) -> usize;

    /// Returns `true` if the sequence is empty (`Λ`).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The event at `index`, decoded to an owned [`Event`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    fn event_at(&self, index: usize) -> Event;

    /// Calls `f` for each event in order with its index, stopping early
    /// when `f` returns `false`.
    ///
    /// Implementations that store events directly pass borrows without
    /// cloning; implementations over packed representations decode each
    /// event once.
    fn scan_events(&self, f: &mut dyn FnMut(usize, &Event) -> bool) {
        for i in 0..self.len() {
            let ev = self.event_at(i);
            if !f(i, &ev) {
                return;
            }
        }
    }

    /// Materializes the sub-history formed by the events at `indices` (in
    /// the order given) — the view-level counterpart of
    /// [`History::select`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    fn gather(&self, indices: &[usize]) -> History {
        indices.iter().map(|&i| self.event_at(i)).collect()
    }

    /// Materializes the whole sequence as an owned [`History`] (for the
    /// search tier, which explores by rewriting owned histories).
    fn to_history(&self) -> History {
        let mut events = Vec::with_capacity(self.len());
        self.scan_events(&mut |_, ev| {
            events.push(ev.clone());
            true
        });
        History::from_events(events)
    }

    /// Returns `true` if the event at `index` is the start of a *base*
    /// action (not a cancellation or commit).
    ///
    /// A structural test the fast checker runs per group index; packed
    /// representations answer it from tag bits without decoding values.
    fn is_base_start_at(&self, index: usize) -> bool {
        matches!(self.event_at(index), Event::Start(ActionId::Base(_), _))
    }

    /// Returns `true` if the event at `index` is the completion of a
    /// *base* action.
    fn is_base_completion_at(&self, index: usize) -> bool {
        matches!(self.event_at(index), Event::Complete(ActionId::Base(_), _))
    }
}

/// A history: a finite sequence of [`Event`]s in observation order.
///
/// Histories are ordinary values: they can be concatenated, sliced, compared,
/// hashed and iterated. The empty history is the paper's `Λ`.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName, Event, History, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let h: History = [
///     Event::start(a.clone(), Value::from(1)),
///     Event::complete(a.clone(), Value::from(42)),
/// ]
/// .into_iter()
/// .collect();
///
/// assert_eq!(h.len(), 2);
/// assert!(h.appears(&a, &Value::from(1))); // (a, 1) ∈ h
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// The empty history `Λ`.
    pub fn empty() -> Self {
        History { events: Vec::new() }
    }

    /// Creates a history from a vector of events.
    pub fn from_events(events: Vec<Event>) -> Self {
        History { events }
    }

    /// The number of events in the history.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if this is the empty history `Λ`.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events of the history, in observation order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates over the events in observation order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// Appends an event to the history.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Concatenation `self • other` (eq. 3).
    ///
    /// # Examples
    ///
    /// ```
    /// use xability_core::History;
    /// let h = History::empty().concat(&History::empty());
    /// assert!(h.is_empty());
    /// ```
    #[must_use]
    pub fn concat(&self, other: &History) -> History {
        let mut events = Vec::with_capacity(self.len() + other.len());
        events.extend_from_slice(&self.events);
        events.extend_from_slice(&other.events);
        History { events }
    }

    /// Concatenates a sequence of histories `h₁ • … • hₙ`.
    pub fn concat_all<'a, I: IntoIterator<Item = &'a History>>(parts: I) -> History {
        let mut events = Vec::new();
        for part in parts {
            events.extend_from_slice(&part.events);
        }
        History { events }
    }

    /// The appearance predicate `(a, iv) ∈ h` (§2.3): `true` iff the history
    /// contains the start event `S(a, iv)`.
    ///
    /// Note that, as in the paper, only *start* events witness appearance;
    /// completion events do not carry the input value.
    pub fn appears(&self, action: &ActionId, input: &Value) -> bool {
        self.events.iter().any(|e| e.is_start_of(action, input))
    }

    /// The event `first(h)` selects (Fig. 3), borrowed: the first event,
    /// or `None` for `Λ`. Use this wherever a view suffices; [`first`]
    /// (returning an owned sub-history) exists for paper fidelity.
    ///
    /// [`first`]: History::first
    pub fn first_event(&self) -> Option<&Event> {
        self.events.first()
    }

    /// The event `second(h)` selects (Fig. 3), borrowed: the second event
    /// of a two-event history, the only event of a one-event history, and
    /// `None` otherwise (mirroring the paper's slightly surprising
    /// `second(e) = e` case for singletons).
    pub fn second_event(&self) -> Option<&Event> {
        match self.events.len() {
            1 => self.events.first(),
            2 => self.events.get(1),
            _ => None,
        }
    }

    /// `first(h)` (Fig. 3): the first event of the history as a (sub-)history,
    /// or `Λ` if the history is empty.
    ///
    /// Materializes a one-event history; prefer [`History::first_event`]
    /// where a borrowed view suffices.
    #[must_use]
    pub fn first(&self) -> History {
        match self.first_event() {
            Some(e) => History::from_events(vec![e.clone()]),
            None => History::empty(),
        }
    }

    /// `second(h)` (Fig. 3): the second event of a two-event history, the
    /// only event of a one-event history, and `Λ` otherwise.
    ///
    /// Materializes a one-event history; prefer [`History::second_event`]
    /// where a borrowed view suffices.
    #[must_use]
    pub fn second(&self) -> History {
        match self.second_event() {
            Some(e) => History::from_events(vec![e.clone()]),
            None => History::empty(),
        }
    }

    /// A zero-copy window over the contiguous range `start..end`, for
    /// checking prefixes or slices without the `Vec<Event>` clone that
    /// [`History::slice`] pays.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, like slice indexing.
    ///
    /// # Examples
    ///
    /// ```
    /// use xability_core::{ActionId, ActionName, Event, History, HistoryRead, Value};
    ///
    /// let a = ActionId::base(ActionName::idempotent("a"));
    /// let h: History = [
    ///     Event::start(a.clone(), Value::from(1)),
    ///     Event::complete(a, Value::from(2)),
    /// ]
    /// .into_iter()
    /// .collect();
    /// let prefix = h.window(0, 1);
    /// assert_eq!(prefix.len(), 1);
    /// assert_eq!(prefix.to_history(), h.slice(0, 1));
    /// ```
    #[must_use]
    pub fn window(&self, start: usize, end: usize) -> HistoryWindow<'_> {
        HistoryWindow {
            events: &self.events[start..end],
        }
    }

    /// Returns the contiguous sub-history `h[start..end]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, like slice indexing.
    #[must_use]
    pub fn slice(&self, start: usize, end: usize) -> History {
        History::from_events(self.events[start..end].to_vec())
    }

    /// Returns the sub-history formed by the events at `indices`
    /// (in the order given).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn select(&self, indices: &[usize]) -> History {
        History::from_events(indices.iter().map(|&i| self.events[i].clone()).collect())
    }

    /// Returns the sub-history of events whose indices are *not* in
    /// `excluded` (which must be sorted ascending).
    #[must_use]
    pub fn without_sorted(&self, excluded: &[usize]) -> History {
        debug_assert!(excluded.windows(2).all(|w| w[0] < w[1]));
        let mut out = Vec::with_capacity(self.len().saturating_sub(excluded.len()));
        let mut ex = excluded.iter().peekable();
        for (i, e) in self.events.iter().enumerate() {
            if ex.peek() == Some(&&i) {
                ex.next();
            } else {
                out.push(e.clone());
            }
        }
        History { events: out }
    }

    /// Counts the start events of `(action, input)`.
    pub fn count_starts(&self, action: &ActionId, input: &Value) -> usize {
        self.events
            .iter()
            .filter(|e| e.is_start_of(action, input))
            .count()
    }

    /// Counts the completion events of `action` (any output).
    pub fn count_completions(&self, action: &ActionId) -> usize {
        self.events
            .iter()
            .filter(|e| e.is_completion_of(action))
            .count()
    }

    /// Consumes the history, returning its events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl HistoryRead for History {
    fn len(&self) -> usize {
        self.events.len()
    }

    fn event_at(&self, index: usize) -> Event {
        self.events[index].clone()
    }

    fn scan_events(&self, f: &mut dyn FnMut(usize, &Event) -> bool) {
        for (i, ev) in self.events.iter().enumerate() {
            if !f(i, ev) {
                return;
            }
        }
    }

    fn gather(&self, indices: &[usize]) -> History {
        self.select(indices)
    }

    fn to_history(&self) -> History {
        self.clone()
    }

    fn is_base_start_at(&self, index: usize) -> bool {
        matches!(&self.events[index], Event::Start(ActionId::Base(_), _))
    }

    fn is_base_completion_at(&self, index: usize) -> bool {
        matches!(&self.events[index], Event::Complete(ActionId::Base(_), _))
    }
}

/// A borrowed, zero-copy window over a contiguous range of a [`History`]
/// (see [`History::window`]). Implements [`HistoryRead`], so every
/// checker accepts it directly.
#[derive(Debug, Clone, Copy)]
pub struct HistoryWindow<'a> {
    events: &'a [Event],
}

impl HistoryWindow<'_> {
    /// The events of the window, in observation order.
    pub fn events(&self) -> &[Event] {
        self.events
    }
}

impl HistoryRead for HistoryWindow<'_> {
    fn len(&self) -> usize {
        self.events.len()
    }

    fn event_at(&self, index: usize) -> Event {
        self.events[index].clone()
    }

    fn scan_events(&self, f: &mut dyn FnMut(usize, &Event) -> bool) {
        for (i, ev) in self.events.iter().enumerate() {
            if !f(i, ev) {
                return;
            }
        }
    }

    fn is_base_start_at(&self, index: usize) -> bool {
        matches!(&self.events[index], Event::Start(ActionId::Base(_), _))
    }

    fn is_base_completion_at(&self, index: usize) -> bool {
        matches!(&self.events[index], Event::Complete(ActionId::Base(_), _))
    }
}

impl Index<usize> for History {
    type Output = Event;

    fn index(&self, index: usize) -> &Event {
        &self.events[index]
    }
}

impl FromIterator<Event> for History {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        History {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<Event> for History {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl IntoIterator for History {
    type Item = Event;
    type IntoIter = std::vec::IntoIter<Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a History {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl From<Vec<Event>> for History {
    fn from(events: Vec<Event>) -> Self {
        History { events }
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Λ");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;

    fn a() -> ActionId {
        ActionId::base(ActionName::idempotent("a"))
    }

    fn b() -> ActionId {
        ActionId::base(ActionName::undoable("b"))
    }

    fn s(action: ActionId, v: i64) -> Event {
        Event::start(action, Value::from(v))
    }

    fn c(action: ActionId, v: i64) -> Event {
        Event::complete(action, Value::from(v))
    }

    #[test]
    fn empty_history_is_lambda() {
        let h = History::empty();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(format!("{h}"), "Λ");
        assert_eq!(h, History::default());
    }

    #[test]
    fn concat_matches_sequence_concatenation() {
        let h1: History = [s(a(), 1), c(a(), 2)].into_iter().collect();
        let h2: History = [s(b(), 3)].into_iter().collect();
        let h = h1.concat(&h2);
        assert_eq!(h.len(), 3);
        assert_eq!(h[0], s(a(), 1));
        assert_eq!(h[2], s(b(), 3));
        // Λ is the identity of •.
        assert_eq!(h1.concat(&History::empty()), h1);
        assert_eq!(History::empty().concat(&h1), h1);
    }

    #[test]
    fn concat_all_folds_left_to_right() {
        let h1: History = [s(a(), 1)].into_iter().collect();
        let h2: History = [s(b(), 2)].into_iter().collect();
        let h3: History = [c(a(), 3)].into_iter().collect();
        let h = History::concat_all([&h1, &h2, &h3]);
        assert_eq!(h.events(), &[s(a(), 1), s(b(), 2), c(a(), 3)]);
    }

    #[test]
    fn appearance_predicate_only_counts_starts() {
        let h: History = [c(a(), 1), s(a(), 1)].into_iter().collect();
        assert!(h.appears(&a(), &Value::from(1)));
        assert!(!h.appears(&a(), &Value::from(2)));
        // A completion alone does not witness appearance.
        let h2: History = [c(a(), 1)].into_iter().collect();
        assert!(!h2.appears(&a(), &Value::from(1)));
    }

    #[test]
    fn first_and_second_match_figure_3() {
        let e1 = s(a(), 1);
        let e2 = c(a(), 2);

        let empty = History::empty();
        assert_eq!(empty.first(), History::empty());
        assert_eq!(empty.second(), History::empty());

        let single: History = [e1.clone()].into_iter().collect();
        assert_eq!(single.first().events(), std::slice::from_ref(&e1));
        // second(e) = e for singleton histories.
        assert_eq!(single.second().events(), std::slice::from_ref(&e1));

        let double: History = [e1.clone(), e2.clone()].into_iter().collect();
        assert_eq!(double.first().events(), std::slice::from_ref(&e1));
        assert_eq!(double.second().events(), std::slice::from_ref(&e2));

        // Histories longer than two events: second is Λ per the paper.
        let triple: History = [e1.clone(), e2.clone(), e1].into_iter().collect();
        assert_eq!(triple.second(), History::empty());
    }

    #[test]
    fn slice_and_select() {
        let h: History = [s(a(), 1), c(a(), 2), s(b(), 3)].into_iter().collect();
        assert_eq!(h.slice(1, 3).events(), &[c(a(), 2), s(b(), 3)]);
        assert_eq!(h.select(&[2, 0]).events(), &[s(b(), 3), s(a(), 1)]);
        assert!(h.slice(1, 1).is_empty());
    }

    #[test]
    fn without_sorted_removes_exactly_those_indices() {
        let h: History = [s(a(), 1), c(a(), 2), s(b(), 3), c(b(), 4)]
            .into_iter()
            .collect();
        let out = h.without_sorted(&[0, 2]);
        assert_eq!(out.events(), &[c(a(), 2), c(b(), 4)]);
        assert_eq!(h.without_sorted(&[]), h);
        assert!(h.without_sorted(&[0, 1, 2, 3]).is_empty());
    }

    #[test]
    fn counting_helpers() {
        let h: History = [s(a(), 1), s(a(), 1), c(a(), 7), s(a(), 2)]
            .into_iter()
            .collect();
        assert_eq!(h.count_starts(&a(), &Value::from(1)), 2);
        assert_eq!(h.count_starts(&a(), &Value::from(2)), 1);
        assert_eq!(h.count_completions(&a()), 1);
        assert_eq!(h.count_completions(&b()), 0);
    }

    #[test]
    fn duplicate_event_values_are_allowed() {
        // Retries produce textually identical events; histories are
        // sequences, not sets.
        let h: History = [s(a(), 1), s(a(), 1)].into_iter().collect();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0], h[1]);
    }

    #[test]
    fn borrowed_first_and_second_match_owned() {
        let e1 = s(a(), 1);
        let e2 = c(a(), 2);
        for events in [
            vec![],
            vec![e1.clone()],
            vec![e1.clone(), e2.clone()],
            vec![e1.clone(), e2, e1],
        ] {
            let h = History::from_events(events);
            assert_eq!(h.first().events(), h.first_event().cloned().as_slice_opt());
            assert_eq!(
                h.second().events(),
                h.second_event().cloned().as_slice_opt()
            );
        }
    }

    /// Helper: an `Option<Event>` as the slice its one-event history holds.
    trait AsSliceOpt {
        fn as_slice_opt(&self) -> &[Event];
    }
    impl AsSliceOpt for Option<Event> {
        fn as_slice_opt(&self) -> &[Event] {
            self.as_ref().map(std::slice::from_ref).unwrap_or(&[])
        }
    }

    #[test]
    fn window_is_a_zero_copy_slice_view() {
        let h: History = [s(a(), 1), c(a(), 2), s(b(), 3)].into_iter().collect();
        let w = h.window(1, 3);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.events(), &h.events()[1..3]);
        assert_eq!(w.to_history(), h.slice(1, 3));
        assert_eq!(w.event_at(0), h[1]);
        assert!(h.window(1, 1).is_empty());
    }

    #[test]
    fn history_read_object_matches_inherent_surface() {
        let h: History = [s(a(), 1), c(a(), 2), s(b(), 3)].into_iter().collect();
        let src: &dyn HistoryRead = &h;
        assert_eq!(src.len(), 3);
        assert_eq!(src.event_at(2), h[2]);
        assert_eq!(src.gather(&[2, 0]), h.select(&[2, 0]));
        assert_eq!(src.to_history(), h);
        assert!(src.is_base_start_at(0) && !src.is_base_start_at(1));
        assert!(src.is_base_completion_at(1) && !src.is_base_completion_at(0));
        let mut seen = Vec::new();
        src.scan_events(&mut |i, ev| {
            seen.push((i, ev.clone()));
            i < 1 // stop after the second event
        });
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[1].1, h[1]);
    }

    #[test]
    fn display_is_never_empty() {
        assert_eq!(format!("{}", History::empty()), "Λ");
        let h: History = [s(a(), 1)].into_iter().collect();
        assert!(format!("{h}").contains("S(aⁱ, 1)"));
    }
}
