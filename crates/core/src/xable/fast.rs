//! The polynomial x-ability engine for protocol-shaped histories.
//!
//! The exhaustive checker ([`super::search`]) explores the whole reduction
//! closure and is exponential in the worst case. Replication protocols,
//! however, produce histories with a lot of structure: every event belongs
//! to the processing of one request, and requests are submitted one after
//! another (§4 considers a single client that submits `Rᵢ₊₁` only after `Rᵢ`
//! succeeds). This engine exploits that structure:
//!
//! 1. **Grouping.** Events are partitioned by `(base action, input)` —
//!    cancellations and commits join the group of their base action. All the
//!    side conditions of reduction rules (18)–(20) relate events of a single
//!    group, so reduction steps never cross groups (only the interleaving
//!    moves).
//! 2. **Per-group decision.** Each group's sub-history is decided by a
//!    (small, bounded) exhaustive search: request groups must reduce to a
//!    failure-free `eventsof` history; groups listed as *erasable* must
//!    reduce to `Λ`.
//! 3. **Ordering.** Request effects must occur in submission order: each
//!    group's first surviving completion must precede the next group's.
//!    For histories whose groups occupy disjoint index ranges this is
//!    equivalent to reducibility to the ordered concatenation of
//!    failure-free histories (reduction is congruent with respect to
//!    concatenation of group blocks, and compaction moves interleaved
//!    events before surviving pairs). For histories with *trailing
//!    duplicates* — deduplicated re-executions or help-commits landing
//!    after a later request began — the strict ordered-concatenation
//!    target is unreachable by construction (rules 18/20 keep the latest
//!    duplicate), so the checker deliberately applies this per-request,
//!    effect-ordered reading; see DESIGN.md §4.3.
//!
//! The engine is shared by two frontends: [`super::FastChecker`] partitions
//! a complete history and decides it in one shot, and
//! [`super::IncrementalChecker`] maintains the partition *online* — one
//! `attribute` step per pushed event — and memoizes the per-group search
//! outcomes in the (crate-private) `GroupCell`s so a verdict at any prefix
//! re-searches only the groups that changed. Both call the same `decide`
//! assembly, so they agree by construction.
//!
//! Soundness is argued in the doc comments above each step and validated by
//! property tests that compare this checker against the exhaustive one on
//! randomly generated histories (`tests/checker_agreement.rs`,
//! `tests/incremental_props.rs`).
//!
//! The free functions [`check`] and [`check_request_sequence`] are the
//! crate's historical entry points, kept as thin deprecated shims over
//! [`super::FastChecker`].

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::action::{ActionId, ActionName, Request};
use crate::event::Event;
use crate::failure_free::failure_free_output;
use crate::history::{History, HistoryRead};
use crate::value::Value;
use crate::xable::checker::{combine_r3_attempts, Checker, FastChecker, Witness};
use crate::xable::search::{search_reduction, SearchBudget, SearchResult};

/// The unified verdict type, re-exported here because this module's
/// historical `Verdict` was the crate's de-facto verdict vocabulary. The
/// canonical path is [`crate::xable::Verdict`].
pub use crate::xable::checker::Verdict;

/// Group key: base action name plus input value.
pub(crate) type GroupKey = (ActionName, Value);

fn key_of(action: &ActionId, input: &Value) -> GroupKey {
    (action.base_name().clone(), input.clone())
}

/// Outcome of the per-group "reduces to a failure-free execution" search,
/// memoized per [`GroupCell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ExecOutcome {
    /// The group reduces to `eventsof(a, iv, output)`; `anchor` is the
    /// index (into the full history) of the group's first surviving base
    /// completion — the moment its side-effect became observable.
    Reduced {
        /// Agreed output of the surviving execution.
        output: Value,
        /// History index of the group's effect anchor.
        anchor: usize,
    },
    /// The whole reachable closure was explored; the group does not reduce.
    Stuck,
    /// The per-group search budget ran out.
    Budget,
}

/// Outcome of the per-group "reduces to `Λ`" search, memoized per
/// [`GroupCell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EraseOutcome {
    /// The group's events reduce to nothing.
    Erases,
    /// The group's events definitely do not erase.
    Stuck,
    /// The per-group search budget ran out.
    Budget,
}

/// One `(base action, input)` group: its event indices in the underlying
/// history plus memoized per-group search outcomes.
///
/// The memos use interior mutability because [`decide`] takes the group map
/// by shared reference: a batch check fills them once, the incremental
/// checker keeps them warm across pushes (invalidating a cell whenever its
/// group gains an event).
#[derive(Debug, Default)]
pub(crate) struct GroupCell {
    /// Indices into the full history, ascending.
    pub(crate) indices: Vec<usize>,
    /// Whether the group contains a completed commit (which never erases).
    pub(crate) has_commit_completion: bool,
    exec: RefCell<Option<ExecOutcome>>,
    erase: RefCell<Option<EraseOutcome>>,
}

impl GroupCell {
    /// Appends an event index, invalidating the memoized outcomes.
    pub(crate) fn push_index(&mut self, index: usize, is_commit_completion: bool) {
        self.indices.push(index);
        self.has_commit_completion |= is_commit_completion;
        *self.exec.borrow_mut() = None;
        *self.erase.borrow_mut() = None;
    }

    /// Whether the group's events reduce to `Λ`, memoized.
    fn erases<H: HistoryRead + ?Sized>(&self, h: &H, budget: SearchBudget) -> EraseOutcome {
        if let Some(outcome) = *self.erase.borrow() {
            return outcome;
        }
        let sub = h.gather(&self.indices);
        let outcome = match search_reduction(&sub, History::is_empty, 0, budget) {
            SearchResult::Reached(_) => EraseOutcome::Erases,
            SearchResult::Exhausted => EraseOutcome::Stuck,
            SearchResult::BudgetExceeded => EraseOutcome::Budget,
        };
        *self.erase.borrow_mut() = Some(outcome);
        outcome
    }

    /// Whether the group's events reduce to a failure-free execution of its
    /// key's action/input, memoized. The target is fully determined by the
    /// group key: the action is `Base(key.0)` and the input is `key.1`
    /// (for round-stamped groups the stamped pair *is* the input, §5.4).
    fn exec<H: HistoryRead + ?Sized>(
        &self,
        h: &H,
        key: &GroupKey,
        budget: SearchBudget,
    ) -> ExecOutcome {
        if let Some(outcome) = self.exec.borrow().clone() {
            return outcome;
        }
        let action = ActionId::base(key.0.clone());
        let input = &key.1;
        let sub = h.gather(&self.indices);
        let min_len = if key.0.is_undoable() { 4 } else { 2 };
        let goal = |cand: &History| failure_free_output(&action, input, cand).is_some();
        let outcome = match search_reduction(&sub, goal, min_len, budget) {
            SearchResult::Reached(witness) => {
                let output = failure_free_output(&action, input, &witness)
                    .expect("goal predicate guarantees failure-free shape");
                // The request's *effect anchor*: the completion of the
                // *surviving* execution. For an undoable request, rule 19
                // only ever erases the group's first remaining start (its
                // side condition demands `(aᵘ, iv) ∉ h₁`), so cancelled
                // attempts are erased strictly left-to-right and the
                // execution that survives into the failure-free target is
                // the *last* attempt: the anchor is the first base
                // completion at or after the group's last base start. A
                // cancelled-then-retried request therefore anchors at the
                // retry's completion, not the undone original's. For an
                // idempotent request (no cancellations) every completion
                // is the same effect and the first one is when it became
                // observable; later ones are deduplicated copies.
                let is_base_completion = |&i: &usize| h.is_base_completion_at(i);
                let surviving_from = if key.0.is_undoable() {
                    self.indices
                        .iter()
                        .rev()
                        .copied()
                        .find(|&i| h.is_base_start_at(i))
                        .unwrap_or(0)
                } else {
                    0
                };
                let anchor = self
                    .indices
                    .iter()
                    .copied()
                    .filter(|&i| i >= surviving_from)
                    .find(is_base_completion)
                    .or_else(|| self.indices.iter().copied().find(is_base_completion))
                    .unwrap_or(self.indices[0]);
                ExecOutcome::Reduced { output, anchor }
            }
            SearchResult::Exhausted => ExecOutcome::Stuck,
            SearchResult::BudgetExceeded => ExecOutcome::Budget,
        };
        *self.exec.borrow_mut() = Some(outcome.clone());
        outcome
    }
}

/// Streaming attribution state: which starts of each action are still open,
/// and the input of each action's most recent start.
///
/// A completion event does not carry the input value. We attribute each
/// completion to the *nearest open start* of its action (the most recent
/// start whose execution has not completed yet). For histories recorded by
/// an atomic observer — such as the service ledger, where a completion
/// immediately follows its start — this attribution is exact. When several
/// distinct inputs are open at a completion the choice is heuristic; the
/// caller remembers the ambiguity and later downgrades a `NotXable` verdict
/// to `Unknown` (a different attribution might have succeeded), while an
/// `Xable` verdict remains sound (it exhibits a concrete witness).
#[derive(Debug, Default)]
pub(crate) struct AttributionState {
    open: BTreeMap<ActionId, OpenStarts>,
    last_start_input: BTreeMap<ActionId, Value>,
}

/// The open starts of one action, with the number of *distinct* open
/// inputs tracked incrementally so a completion's ambiguity test is O(log)
/// instead of a scan over the whole stack (the streaming checker pays
/// this on every completion).
#[derive(Debug, Default)]
struct OpenStarts {
    stack: Vec<Value>,
    multiplicity: BTreeMap<Value, usize>,
}

impl OpenStarts {
    fn push(&mut self, input: Value) {
        *self.multiplicity.entry(input.clone()).or_insert(0) += 1;
        self.stack.push(input);
    }

    fn pop(&mut self) -> Option<Value> {
        let input = self.stack.pop()?;
        if let Some(count) = self.multiplicity.get_mut(&input) {
            *count -= 1;
            if *count == 0 {
                self.multiplicity.remove(&input);
            }
        }
        Some(input)
    }

    /// How many distinct inputs are currently open.
    fn distinct(&self) -> usize {
        self.multiplicity.len()
    }
}

/// Attributes one event to its group, updating the streaming state.
///
/// Returns the event's group key, or `Err(reason)` for a completion whose
/// action has never started (a violation of the event axioms of §2.2 —
/// definitely not x-able, independent of any ambiguity).
pub(crate) fn attribute(
    state: &mut AttributionState,
    ambiguous: &mut bool,
    event: &Event,
    index: usize,
) -> Result<GroupKey, String> {
    match event {
        Event::Start(a, iv) => {
            state.open.entry(a.clone()).or_default().push(iv.clone());
            state.last_start_input.insert(a.clone(), iv.clone());
            Ok(key_of(a, iv))
        }
        Event::Complete(a, _) => {
            let open = state.open.entry(a.clone()).or_default();
            if open.distinct() > 1 {
                *ambiguous = true;
            }
            match open.pop() {
                Some(iv) => Ok(key_of(a, &iv)),
                None => match state.last_start_input.get(a) {
                    // Duplicate completion after all starts closed:
                    // attribute to the most recent start.
                    Some(iv) => {
                        *ambiguous = true;
                        Ok(key_of(a, iv))
                    }
                    None => Err(format!(
                        "completion of {a} at index {index} has no start event (violates the event axioms of §2.2)"
                    )),
                },
            }
        }
    }
}

/// A complete history partitioned into per-`(action, input)` groups.
#[derive(Debug, Default)]
pub(crate) struct Partition {
    /// The groups, keyed by `(base action name, input)`.
    pub(crate) groups: BTreeMap<GroupKey, GroupCell>,
    /// Whether any completion attribution was ambiguous.
    pub(crate) ambiguous: bool,
}

/// Partitions `h` into groups in one pass, or reports the first completion
/// without a start (a definite `NotXable` reason).
pub(crate) fn partition<H: HistoryRead + ?Sized>(h: &H) -> Result<Partition, String> {
    let mut part = Partition::default();
    let mut state = AttributionState::default();
    let mut err: Option<String> = None;
    h.scan_events(&mut |i, ev| {
        match attribute(&mut state, &mut part.ambiguous, ev, i) {
            Ok(key) => {
                let is_commit_completion =
                    matches!(ev, Event::Complete(a, _) if a.is_commit());
                part.groups
                    .entry(key)
                    .or_default()
                    .push_index(i, is_commit_completion);
                true
            }
            Err(reason) => {
                err = Some(reason);
                false
            }
        }
    });
    match err {
        Some(reason) => Err(reason),
        None => Ok(part),
    }
}

/// The assembly: decides x-ability of `h` — already partitioned into
/// `groups` — with respect to the ordered request sequence `ops`,
/// additionally allowing the requests in `erasable` to have left events
/// that reduce to nothing.
///
/// Per-group searches go through the [`GroupCell`] memos, so a caller that
/// keeps the cells warm (the incremental checker, or the two attempts of an
/// R3 question) pays for each group search at most once.
pub(crate) fn decide<H: HistoryRead + ?Sized>(
    h: &H,
    groups: &BTreeMap<GroupKey, GroupCell>,
    ambiguous: bool,
    budget: SearchBudget,
    ops: &[(ActionId, Value)],
    erasable: &[(ActionId, Value)],
) -> Verdict {
    // --- Validate the op list. ---
    let mut op_keys: Vec<GroupKey> = Vec::with_capacity(ops.len());
    let mut seen_keys: BTreeSet<GroupKey> = BTreeSet::new();
    for (action, input) in ops.iter().chain(erasable.iter()) {
        if !matches!(action, ActionId::Base(_)) {
            return Verdict::Unknown {
                reason: format!("request action {action} is not a base action"),
            };
        }
        let key = key_of(action, input);
        if !seen_keys.insert(key.clone()) {
            return Verdict::Unknown {
                reason: format!("duplicate request identity {}/{}", key.0, key.1),
            };
        }
        op_keys.push(key);
    }
    let erasable_keys: BTreeSet<GroupKey> = erasable
        .iter()
        .map(|(a, iv)| key_of(a, iv))
        .collect();

    // When attribution was ambiguous, a negative verdict is unreliable (a
    // different attribution might have succeeded); downgrade it.
    let fail = |reason: String| {
        if ambiguous {
            Verdict::Unknown {
                reason: format!("(after ambiguous completion attribution) {reason}"),
            }
        } else {
            Verdict::NotXable { reason }
        }
    };

    // --- Every group must correspond to a declared request, directly or
    // as a round-stamped transaction of a declared undoable request
    // (§5.4: the round number is part of the action's parameters). ---
    let is_declared = |key: &GroupKey| -> bool {
        if seen_keys.contains(key) {
            return true;
        }
        if !key.0.is_undoable() {
            return false;
        }
        match &key.1 {
            Value::Pair(p) if matches!(p.1, Value::Int(_)) => {
                seen_keys.contains(&(key.0.clone(), p.0.clone()))
            }
            _ => false,
        }
    };
    // Undeclared groups are not automatically violations: a group that
    // reduces to Λ (say, a spurious cancellation that cancelled nothing) is
    // invisible to the reduction target. They are collected here and
    // checked for erasability below.
    let undeclared: Vec<&GroupKey> = groups.keys().filter(|k| !is_declared(k)).collect();

    // The round-stamped groups of an undoable request key.
    let stamped_groups = |base: &ActionName, input: &Value| -> Vec<(&GroupKey, &GroupCell)> {
        groups
            .iter()
            .filter(|(k, _)| {
                &k.0 == base
                    && matches!(&k.1, Value::Pair(p)
                        if &p.0 == input && matches!(p.1, Value::Int(_)))
            })
            .collect()
    };
    let erase_group = |cell: &GroupCell, what: &dyn fmt::Display| -> Option<Verdict> {
        match cell.erases(h, budget) {
            EraseOutcome::Erases => None,
            EraseOutcome::Stuck => Some(fail(format!("{what} left events that do not erase"))),
            EraseOutcome::Budget => Some(Verdict::Unknown {
                reason: format!("per-group search budget exceeded erasing {what}"),
            }),
        }
    };

    // --- Decide each group. ---
    let mut outputs: Vec<Value> = Vec::with_capacity(ops.len());
    let mut anchors: Vec<usize> = Vec::with_capacity(ops.len());
    for ((action, input), key) in ops.iter().zip(op_keys.iter()) {
        let plain = groups.get(key);
        let stamped = if action.is_undoable_base() {
            stamped_groups(action.base_name(), input)
        } else {
            Vec::new()
        };
        let (exec_key, exec_cell): (&GroupKey, &GroupCell) = match (plain, stamped.is_empty()) {
            (Some(_), false) => {
                return Verdict::Unknown {
                    reason: format!(
                        "request ({action}, {input}) has both plain and round-stamped events"
                    ),
                };
            }
            (Some(cell), true) => (key, cell),
            (None, true) => {
                return fail(format!("request ({action}, {input}) was never executed"));
            }
            (None, false) => {
                // Round-stamped transactions: exactly one round commits and
                // must reduce to a failure-free execution; every other round
                // must erase (cancelled rounds).
                let committed: Vec<&(&GroupKey, &GroupCell)> = stamped
                    .iter()
                    .filter(|(_, cell)| cell.has_commit_completion)
                    .collect();
                if committed.len() != 1 {
                    return fail(format!(
                        "request ({action}, {input}) committed in {} rounds (want exactly 1)",
                        committed.len()
                    ));
                }
                let &&(ckey, ccell) = committed.first().expect("length checked");
                for (okey, ocell) in &stamped {
                    if *okey == ckey {
                        continue;
                    }
                    let what = format!("cancelled round {} of ({action}, {input})", okey.1);
                    if let Some(v) = erase_group(ocell, &what) {
                        return v;
                    }
                }
                (ckey, ccell)
            }
        };
        match exec_cell.exec(h, exec_key, budget) {
            ExecOutcome::Reduced { output, anchor } => {
                outputs.push(output);
                anchors.push(anchor);
            }
            ExecOutcome::Stuck => {
                return fail(format!(
                    "events of request ({action}, {input}) do not reduce to a failure-free execution"
                ));
            }
            ExecOutcome::Budget => {
                return Verdict::Unknown {
                    reason: format!(
                        "per-group search budget exceeded for request ({action}, {input})"
                    ),
                };
            }
        }
    }

    for (action, input) in erasable {
        let key = key_of(action, input);
        debug_assert!(erasable_keys.contains(&key));
        let mut all_cells: Vec<&GroupCell> = Vec::new();
        if let Some(cell) = groups.get(&key) {
            all_cells.push(cell);
        }
        if action.is_undoable_base() {
            for (_, cell) in stamped_groups(action.base_name(), input) {
                all_cells.push(cell);
            }
        }
        for cell in all_cells {
            let what = format!("abandoned request ({action}, {input})");
            if let Some(v) = erase_group(cell, &what) {
                return v;
            }
        }
    }

    for key in &undeclared {
        let cell = groups.get(*key).expect("collected from groups");
        let what = format!("undeclared request {}/{}", key.0, key.1);
        if let Some(v) = erase_group(cell, &what) {
            return v;
        }
    }

    // --- Cross-request ordering: effects in submission order. ---
    // The paper's multi-request criterion (reduction to the ordered
    // concatenation of failure-free histories) implicitly assumes the
    // system quiesces between requests: rules 18/20 always keep the
    // *latest* duplicate, so a harmless trailing duplicate (a slow
    // replica's deduplicated re-execution or help-commit landing after the
    // next request started) would make the ordered target unreachable even
    // though every effect happened exactly once and in order. We therefore
    // check the per-request criterion plus *effect order*: each group's
    // first surviving completion — the instant its side-effect became
    // observable — must follow submission order. On histories without
    // trailing duplicates this coincides with the strict criterion (blocks
    // then compact in order); with them, it is the faithful reading of
    // "appears to be executed exactly-once, in order".
    for w in anchors.windows(2) {
        if w[0] >= w[1] {
            return fail("request effects occur out of submission order".to_owned());
        }
    }

    Verdict::Xable {
        witness: Witness::from_outputs(outputs),
    }
}

/// Decides x-ability of `h` with respect to the ordered request sequence
/// `ops`, additionally allowing the requests in `erasable` to have left
/// events that reduce to nothing (the R3 "last request may have been
/// abandoned" case).
///
/// # Examples
///
/// ```
/// use xability_core::xable::fast::check;
/// use xability_core::{ActionId, ActionName, Event, History, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let h: History = [
///     Event::start(a.clone(), Value::from(1)),
///     Event::start(a.clone(), Value::from(1)),
///     Event::complete(a.clone(), Value::from(5)),
/// ]
/// .into_iter()
/// .collect();
/// # #[allow(deprecated)]
/// # {
/// let verdict = check(&h, &[(a, Value::from(1))], &[]);
/// assert!(verdict.is_xable());
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use `xable::FastChecker` (or `TieredChecker`) via the `Checker` trait"
)]
pub fn check(
    h: &History,
    ops: &[(ActionId, Value)],
    erasable: &[(ActionId, Value)],
) -> Verdict {
    FastChecker::default().check(h, ops, erasable)
}

/// The R3 obligation (§4) for a sequence of client requests: the server-side
/// history must be x-able with respect to `R₁…Rₙ` *or* `R₁…Rₙ₋₁` (the last
/// request may have been abandoned if the client failed before retrying).
///
/// # Examples
///
/// ```
/// use xability_core::xable::fast::check_request_sequence;
/// use xability_core::{failure_free::eventsof, ActionId, ActionName, Request, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let h = eventsof(&a, &Value::from(1), &Value::from(5));
/// let requests = vec![Request::new(a, Value::from(1))];
/// # #[allow(deprecated)]
/// # {
/// assert!(check_request_sequence(&h, &requests).is_xable());
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use `Checker::check_requests` on `xable::FastChecker` or `TieredChecker`"
)]
pub fn check_request_sequence(h: &History, requests: &[Request]) -> Verdict {
    FastChecker::default().check_requests(h, requests)
}

/// Batch entry point used by the `FastChecker` frontend and the shims: one
/// partition, then the R3 combination over the shared memo cells.
pub(crate) fn check_requests_batch<H: HistoryRead + ?Sized>(
    h: &H,
    budget: SearchBudget,
    ops: &[(ActionId, Value)],
) -> Verdict {
    match partition(h) {
        Ok(part) => combine_r3_attempts(ops, |ops, erasable| {
            decide(h, &part.groups, part.ambiguous, budget, ops, erasable)
        }),
        Err(reason) => Verdict::NotXable { reason },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;
    use crate::event::Event;
    use crate::failure_free::eventsof;

    fn fast() -> FastChecker {
        FastChecker::default()
    }

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn undo(name: &str) -> ActionId {
        ActionId::base(ActionName::undoable(name))
    }

    fn s(a: &ActionId, v: i64) -> Event {
        Event::start(a.clone(), Value::from(v))
    }

    fn c(a: &ActionId, v: i64) -> Event {
        Event::complete(a.clone(), Value::from(v))
    }

    fn cnil(a: &ActionId) -> Event {
        Event::complete(a.clone(), Value::Nil)
    }

    #[test]
    fn accepts_failure_free_single_request() {
        let a = idem("a");
        let h = eventsof(&a, &Value::from(1), &Value::from(5));
        let v = fast().check(&h, &[(a, Value::from(1))], &[]);
        assert_eq!(v, Verdict::xable(vec![Value::from(5)]));
    }

    #[test]
    fn accepts_retried_idempotent_request() {
        let a = idem("a");
        let h: History = [s(&a, 1), s(&a, 1), c(&a, 5), s(&a, 1), c(&a, 5)]
            .into_iter()
            .collect();
        assert!(fast().check(&h, &[(a, Value::from(1))], &[]).is_xable());
    }

    #[test]
    fn rejects_disagreeing_outputs() {
        let a = idem("a");
        let h: History = [s(&a, 1), c(&a, 5), s(&a, 1), c(&a, 6)].into_iter().collect();
        assert!(fast().check(&h, &[(a, Value::from(1))], &[]).is_not_xable());
    }

    #[test]
    fn rejects_missing_request() {
        let a = idem("a");
        let v = fast().check(&History::empty(), &[(a, Value::from(1))], &[]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn rejects_undeclared_events() {
        let a = idem("a");
        let b = idem("b");
        let h = eventsof(&a, &Value::from(1), &Value::from(5))
            .concat(&eventsof(&b, &Value::from(2), &Value::from(6)));
        let v = fast().check(&h, &[(a, Value::from(1))], &[]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn rejects_completion_without_start() {
        let a = idem("a");
        let h: History = [c(&a, 5)].into_iter().collect();
        let v = fast().check(&h, &[(a, Value::from(1))], &[]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn ambiguous_completion_attribution_is_unknown() {
        let a = idem("a");
        // Two different inputs for the same action plus a completion:
        // attribution is ambiguous.
        let h: History = [s(&a, 1), s(&a, 2), c(&a, 5), c(&a, 5)].into_iter().collect();
        let v = fast().check(
            &h,
            &[(a.clone(), Value::from(1)), (a, Value::from(2))],
            &[],
        );
        assert!(matches!(v, Verdict::Unknown { .. }));
    }

    #[test]
    fn undoable_request_with_cancelled_round_is_xable() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let h: History = [
            s(&u, 1),
            s(&cancel, 1),
            cnil(&cancel),
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
        ]
        .into_iter()
        .collect();
        let v = fast().check(&h, &[(u, Value::from(1))], &[]);
        assert_eq!(v, Verdict::xable(vec![Value::from(7)]));
    }

    #[test]
    fn sequence_in_order_is_xable() {
        let a = idem("a");
        let b = undo("b");
        let h = eventsof(&a, &Value::from(1), &Value::from(5))
            .concat(&eventsof(&b, &Value::from(2), &Value::from(6)));
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        let v = fast().check(&h, &ops, &[]);
        assert_eq!(v, Verdict::xable(vec![Value::from(5), Value::from(6)]));
    }

    #[test]
    fn sequence_out_of_order_is_rejected() {
        let a = idem("a");
        let b = idem("b");
        let h = eventsof(&b, &Value::from(2), &Value::from(6))
            .concat(&eventsof(&a, &Value::from(1), &Value::from(5)));
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        assert!(fast().check(&h, &ops, &[]).is_not_xable());
    }

    #[test]
    fn overlapping_blocks_with_ordered_effects_are_xable() {
        // S(a) S(b) C(a) C(b): b's compaction moves C(a) in front of its
        // pair, reaching the ordered concatenation — and the effect
        // anchors (C(a) before C(b)) agree.
        let a = idem("a");
        let b = idem("b");
        let h: History = [s(&a, 1), s(&b, 2), c(&a, 5), c(&b, 6)].into_iter().collect();
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        assert!(fast().check(&h, &ops, &[]).is_xable());
    }

    #[test]
    fn cancelled_then_retried_after_later_request_is_rejected() {
        // u completed, was cancelled, and was only re-executed (and
        // committed) after b's effect: u's first completion was undone by
        // the cancellation, so its *surviving* effect postdates b's —
        // effects are out of submission order (the search reference
        // agrees; see tests/checker_agreement.rs).
        let u = undo("u");
        let b = idem("b");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let h: History = [
            s(&u, 1),
            c(&u, 7),
            s(&cancel, 1),
            cnil(&cancel),
            s(&b, 2),
            c(&b, 6),
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
        ]
        .into_iter()
        .collect();
        let ops = [(u, Value::from(1)), (b, Value::from(2))];
        assert!(fast().check(&h, &ops, &[]).is_not_xable());
    }

    #[test]
    fn cancelled_then_retried_before_later_request_is_xable() {
        // Same cancel-then-retry shape, but the retry (and commit) lands
        // before b: the surviving effects are in submission order.
        let u = undo("u");
        let b = idem("b");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let h: History = [
            s(&u, 1),
            c(&u, 7),
            s(&cancel, 1),
            cnil(&cancel),
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
            s(&b, 2),
            c(&b, 6),
        ]
        .into_iter()
        .collect();
        let ops = [(u, Value::from(1)), (b, Value::from(2))];
        let v = fast().check(&h, &ops, &[]);
        assert_eq!(v, Verdict::xable(vec![Value::from(7), Value::from(6)]));
    }

    #[test]
    fn trailing_duplicate_after_next_request_is_accepted() {
        // A deduplicated retry of request a lands after b completed; the
        // effects still happened exactly once and in order.
        let a = idem("a");
        let b = idem("b");
        let h: History = [
            s(&a, 1),
            c(&a, 5),
            s(&b, 2),
            c(&b, 6),
            s(&a, 1),
            c(&a, 5),
        ]
        .into_iter()
        .collect();
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        assert!(fast().check(&h, &ops, &[]).is_xable());
    }

    #[test]
    fn erasable_group_may_vanish() {
        let a = idem("a");
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let h = eventsof(&a, &Value::from(1), &Value::from(5)).concat(&History::from_events(
            vec![s(&u, 2), s(&cancel, 2), cnil(&cancel)],
        ));
        let v = fast().check(&h, &[(a, Value::from(1))], &[(u, Value::from(2))]);
        assert_eq!(v, Verdict::xable(vec![Value::from(5)]));
    }

    #[test]
    fn erasable_group_that_committed_is_rejected() {
        let a = idem("a");
        let u = undo("u");
        let h = eventsof(&a, &Value::from(1), &Value::from(5))
            .concat(&eventsof(&u, &Value::from(2), &Value::from(7)));
        // u committed, so its events cannot erase.
        let v = fast().check(&h, &[(a, Value::from(1))], &[(u, Value::from(2))]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn request_sequence_helper_tries_prefix() {
        let a = idem("a");
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let requests = vec![
            Request::new(a.clone(), Value::from(1)),
            Request::new(u.clone(), Value::from(2)),
        ];
        // Last request started but was cancelled and never retried: x-able
        // via the R1…Rₙ₋₁ case.
        let h = eventsof(&a, &Value::from(1), &Value::from(5)).concat(&History::from_events(
            vec![s(&u, 2), s(&cancel, 2), cnil(&cancel)],
        ));
        assert!(fast().check_requests(&h, &requests).is_xable());
        // But a *middle* request cannot be abandoned.
        let requests_rev = vec![
            Request::new(u, Value::from(2)),
            Request::new(a, Value::from(1)),
        ];
        let v = fast().check_requests(&h, &requests_rev);
        assert!(!v.is_xable());
    }

    #[test]
    fn empty_request_sequence_accepts_empty_history() {
        assert!(fast().check_requests(&History::empty(), &[]).is_xable());
    }

    #[test]
    fn view_backed_check_matches_owned() {
        // The engine is generic over `HistoryRead`: a zero-copy window
        // over the full history must decide exactly like the owned value.
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let h: History = [
            s(&u, 1),
            s(&cancel, 1),
            cnil(&cancel),
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
        ]
        .into_iter()
        .collect();
        let ops = [(u, Value::from(1))];
        let owned = fast().check(&h, &ops, &[]);
        let viewed = check_requests_batch(&h.window(0, h.len()), SearchBudget::small(), &ops);
        assert_eq!(owned, viewed);
    }
}
