//! The polynomial x-ability engine for protocol-shaped histories.
//!
//! The exhaustive checker ([`super::search`]) explores the whole reduction
//! closure and is exponential in the worst case. Replication protocols,
//! however, produce histories with a lot of structure: every event belongs
//! to the processing of one request, and requests are submitted one after
//! another (§4 considers a single client that submits `Rᵢ₊₁` only after `Rᵢ`
//! succeeds). This engine exploits that structure:
//!
//! 1. **Grouping.** Events are partitioned by `(base action, input)` —
//!    cancellations and commits join the group of their base action. All the
//!    side conditions of reduction rules (18)–(20) relate events of a single
//!    group, so reduction steps never cross groups (only the interleaving
//!    moves).
//! 2. **Per-group decision.** Each group's sub-history is decided by a
//!    (small, bounded) exhaustive search: request groups must reduce to a
//!    failure-free `eventsof` history; groups listed as *erasable* must
//!    reduce to `Λ`.
//! 3. **Ordering.** Request effects must occur in submission order: each
//!    group's first surviving completion must precede the next group's.
//!    For histories whose groups occupy disjoint index ranges this is
//!    equivalent to reducibility to the ordered concatenation of
//!    failure-free histories (reduction is congruent with respect to
//!    concatenation of group blocks, and compaction moves interleaved
//!    events before surviving pairs). For histories with *trailing
//!    duplicates* — deduplicated re-executions or help-commits landing
//!    after a later request began — the strict ordered-concatenation
//!    target is unreachable by construction (rules 18/20 keep the latest
//!    duplicate), so the checker deliberately applies this per-request,
//!    effect-ordered reading; see DESIGN.md §4.3.
//!
//! The engine is **symbol-keyed**: action names and input values are
//! interned to dense `u32` symbols ([`crate::intern::Interner`] — the same
//! type the `xability-store` crate packs its events with), a group is the
//! symbol pair `(name, input)`, and the per-group state lives in a dense
//! `Vec<GroupCell>` indexed by a dense group symbol. The per-event hot path is
//! therefore a hash probe and a `Vec` push — no per-event `ActionName` or
//! `Value` clone, no ordered-map walk.
//!
//! The engine is shared by two frontends: [`super::FastChecker`] partitions
//! a complete history and decides it in one shot (optionally deciding the
//! groups on parallel worker threads — [`super::FastChecker::check_sharded`]
//! — which is sound because reduction never crosses groups), and
//! [`super::IncrementalChecker`] maintains the partition *online* — one
//! `Engine::observe` step per pushed event — and memoizes the per-group
//! search outcomes in the (crate-private) `GroupCell`s so a verdict at any
//! prefix re-searches only the groups that changed. Both assemble verdicts
//! from the same per-group outcomes and the same message builders, so they
//! agree by construction.
//!
//! Soundness is argued in the doc comments above each step and validated by
//! property tests that compare this checker against the exhaustive one on
//! randomly generated histories (`tests/checker_agreement.rs`,
//! `tests/incremental_props.rs`).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::action::{ActionId, ActionName};
use crate::event::Event;
use crate::failure_free::failure_free_output;
use crate::history::{History, HistoryRead};
use crate::intern::Interner;
use crate::value::Value;
use crate::xable::checker::Witness;
use crate::xable::search::{search_reduction, SearchBudget, SearchResult};

/// The unified verdict type, re-exported here because this module's
/// historical `Verdict` was the crate's de-facto verdict vocabulary. The
/// canonical path is [`crate::xable::Verdict`].
pub use crate::xable::checker::Verdict;

/// Dense index of a `(base action, input)` group in an [`Engine`].
pub(crate) type GroupSym = u32;

/// Interned group key: `(action-name symbol, input-value symbol)`.
pub(crate) type KeySyms = (u32, u32);

const ROLE_BASE: u8 = 0;
const ROLE_CANCEL: u8 = 1;
const ROLE_COMMIT: u8 = 2;

fn role_of(action: &ActionId) -> u8 {
    match action {
        ActionId::Base(_) => ROLE_BASE,
        ActionId::Cancel(_) => ROLE_CANCEL,
        ActionId::Commit(_) => ROLE_COMMIT,
    }
}

/// Outcome of the per-group "reduces to a failure-free execution" search,
/// memoized per [`GroupCell`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ExecOutcome {
    /// The group reduces to `eventsof(a, iv, output)`; `anchor` is the
    /// index (into the full history) of the group's surviving base
    /// completion — the moment its side-effect became observable.
    Reduced {
        /// Agreed output of the surviving execution.
        output: Value,
        /// History index of the group's effect anchor.
        anchor: usize,
    },
    /// The whole reachable closure was explored; the group does not reduce.
    Stuck,
    /// The per-group search budget ran out.
    Budget,
}

/// Outcome of the per-group "reduces to `Λ`" search, memoized per
/// [`GroupCell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EraseOutcome {
    /// The group's events reduce to nothing.
    Erases,
    /// The group's events definitely do not erase.
    Stuck,
    /// The per-group search budget ran out.
    Budget,
}

/// Longest sub-history the idempotent closed form decides; longer groups
/// fall back to the reduction search. 8 covers every protocol-shaped
/// group (a start, a handful of retries, their completions) and keeps the
/// exhaustive closed-form-vs-search test affordable.
const CLOSED_FORM_MAX_LEN: usize = 8;

/// Whether the closed form may replace the search for this budget and
/// sub-history length: the equivalence proof (the exhaustive test below)
/// shows the search never exhausts [`SearchBudget::small`] on gated
/// inputs, so firing only at `>= small()` guarantees the fast path never
/// turns a would-be `Budget` outcome into a decision (or vice versa).
fn closed_form_applies(len: usize, budget: SearchBudget) -> bool {
    let small = SearchBudget::small();
    len <= CLOSED_FORM_MAX_LEN
        && budget.max_expansions >= small.max_expansions
        && budget.max_visited >= small.max_visited
}

/// Closed-form decision of the idempotent per-group *exec* search.
///
/// For the protocol's hot-path groups — every event a base start
/// `S(a, iv)` with the group's input or a base completion `C(a, ·)` of
/// one idempotent action `a` — the only applicable reduction rule is
/// (18), and it admits a closed form (pinned against the real search by
/// the exhaustive `closed_form_matches_search_exhaustively` test):
///
/// * rule (18) erases one matched `S`/`C(out)` duplicate (or a dangling
///   `S`) while preserving a surviving `S C(out)` pair with the *same*
///   output, so the set of distinct completion outputs is invariant;
/// * a leading completion can never be consumed (the erased or surviving
///   start lies strictly left of its pivot completion), and neither can a
///   start trailing the last completion — so a history violating the
///   prefix condition `#starts ≥ #completions`, or not ending in a
///   completion, is frozen short of the goal;
/// * conversely, when every prefix holds at least as many starts as
///   completions, outputs agree, and a completion comes last, erasing the
///   first `S`/first `C` pair against the last pair as pivot reaches
///   `S C` — the failure-free target.
///
/// Returns `None` when the group is not of the gated shape (undoable
/// name, cancel/commit/foreign events, diverging start inputs, too long,
/// or a sub-`small()` budget) — the caller then runs the real search.
fn idempotent_exec_closed_form(
    sub: &History,
    indices: &[usize],
    name: &ActionName,
    input: &Value,
    budget: SearchBudget,
) -> Option<ExecOutcome> {
    if name.is_undoable() || !closed_form_applies(sub.len(), budget) {
        return None;
    }
    let mut open = 0usize;
    let mut prefix_ok = true;
    let mut first_completion: Option<usize> = None;
    let mut output: Option<&Value> = None;
    let mut outputs_agree = true;
    let mut last_is_completion = false;
    for (pos, ev) in sub.iter().enumerate() {
        match ev {
            Event::Start(ActionId::Base(n), iv) if n == name && iv == input => {
                open += 1;
                last_is_completion = false;
            }
            Event::Complete(ActionId::Base(n), out) if n == name => {
                if open == 0 {
                    prefix_ok = false;
                } else {
                    open -= 1;
                }
                match output {
                    None => output = Some(out),
                    Some(o) => outputs_agree &= o == out,
                }
                if first_completion.is_none() {
                    first_completion = Some(pos);
                }
                last_is_completion = true;
            }
            _ => return None,
        }
    }
    match (first_completion, output) {
        (Some(pos), Some(out)) if outputs_agree && last_is_completion && prefix_ok => {
            // Same anchor the search path computes for idempotent groups:
            // the first base completion — the moment the effect became
            // observable (later completions are deduplicated copies).
            Some(ExecOutcome::Reduced {
                output: out.clone(),
                anchor: indices[pos],
            })
        }
        _ => Some(ExecOutcome::Stuck),
    }
}

/// Closed-form decision of the idempotent per-group *erase* search: rule
/// (18) always preserves a surviving `S C` pair, and no other rule
/// applies to a group of base events of one idempotent action — so a
/// non-empty gated group never reduces to `Λ`.
fn idempotent_erase_closed_form(sub: &History, budget: SearchBudget) -> Option<EraseOutcome> {
    if sub.is_empty() {
        // `Λ` is already the goal; the search decides this before its
        // first expansion, with any budget.
        return Some(EraseOutcome::Erases);
    }
    if !closed_form_applies(sub.len(), budget) {
        return None;
    }
    let name = match sub[0].action() {
        ActionId::Base(n) if n.is_idempotent() => n,
        _ => return None,
    };
    let mut input: Option<&Value> = None;
    for ev in sub.iter() {
        match ev {
            Event::Start(ActionId::Base(n), iv) if n == name => match input {
                None => input = Some(iv),
                Some(v) => {
                    if v != iv {
                        return None;
                    }
                }
            },
            Event::Complete(ActionId::Base(n), _) if n == name => {}
            _ => return None,
        }
    }
    Some(EraseOutcome::Stuck)
}

/// The per-group "reduces to a failure-free execution of `(name, input)`"
/// search — a pure function of the group's sub-history, shared verbatim by
/// the memoizing [`GroupCell::exec`] and the sharded worker threads, so
/// sequential and parallel checks compute identical outcomes. Protocol-
/// shaped idempotent groups are decided by
/// [`idempotent_exec_closed_form`] without expanding a single history.
pub(crate) fn run_exec_search<H: HistoryRead + ?Sized>(
    h: &H,
    indices: &[usize],
    name: &ActionName,
    input: &Value,
    budget: SearchBudget,
) -> ExecOutcome {
    let sub = h.gather(indices);
    if let Some(outcome) = idempotent_exec_closed_form(&sub, indices, name, input, budget) {
        return outcome;
    }
    let action = ActionId::base(name.clone());
    let min_len = if name.is_undoable() { 4 } else { 2 };
    let goal = |cand: &History| failure_free_output(&action, input, cand).is_some();
    match search_reduction(&sub, goal, min_len, budget) {
        SearchResult::Reached(witness) => {
            let output = failure_free_output(&action, input, &witness)
                .expect("goal predicate guarantees failure-free shape");
            // The request's *effect anchor*: the completion of the
            // *surviving* execution. For an undoable request, rule 19
            // only ever erases the group's first remaining start (its
            // side condition demands `(aᵘ, iv) ∉ h₁`), so cancelled
            // attempts are erased strictly left-to-right and the
            // execution that survives into the failure-free target is
            // the *last* attempt: the anchor is the first base
            // completion at or after the group's last base start. A
            // cancelled-then-retried request therefore anchors at the
            // retry's completion, not the undone original's. For an
            // idempotent request (no cancellations) every completion
            // is the same effect and the first one is when it became
            // observable; later ones are deduplicated copies.
            let is_base_completion = |&i: &usize| h.is_base_completion_at(i);
            let surviving_from = if name.is_undoable() {
                indices
                    .iter()
                    .rev()
                    .copied()
                    .find(|&i| h.is_base_start_at(i))
                    .unwrap_or(0)
            } else {
                0
            };
            let anchor = indices
                .iter()
                .copied()
                .filter(|&i| i >= surviving_from)
                .find(is_base_completion)
                .or_else(|| indices.iter().copied().find(is_base_completion))
                .unwrap_or(indices[0]);
            ExecOutcome::Reduced { output, anchor }
        }
        SearchResult::Exhausted => ExecOutcome::Stuck,
        SearchResult::BudgetExceeded => ExecOutcome::Budget,
    }
}

/// The per-group "reduces to `Λ`" search — like [`run_exec_search`], the
/// single source of truth for both the memoized and the sharded paths.
pub(crate) fn run_erase_search<H: HistoryRead + ?Sized>(
    h: &H,
    indices: &[usize],
    budget: SearchBudget,
) -> EraseOutcome {
    let sub = h.gather(indices);
    if let Some(outcome) = idempotent_erase_closed_form(&sub, budget) {
        return outcome;
    }
    match search_reduction(&sub, History::is_empty, 0, budget) {
        SearchResult::Reached(_) => EraseOutcome::Erases,
        SearchResult::Exhausted => EraseOutcome::Stuck,
        SearchResult::BudgetExceeded => EraseOutcome::Budget,
    }
}

/// One `(base action, input)` group: its event indices in the underlying
/// history plus memoized per-group search outcomes.
///
/// The memos use interior mutability because [`decide`] takes the engine
/// by shared reference: a batch check fills them once, the incremental
/// checker keeps them warm across pushes (invalidating a cell whenever its
/// group gains an event), and the sharded batch check primes them from
/// worker threads before the sequential assembly reads them.
#[derive(Debug, Default)]
pub(crate) struct GroupCell {
    /// Indices into the full history, ascending.
    pub(crate) indices: Vec<usize>,
    /// Whether the group contains a completed commit (which never erases).
    pub(crate) has_commit_completion: bool,
    exec: RefCell<Option<ExecOutcome>>,
    erase: RefCell<Option<EraseOutcome>>,
}

impl GroupCell {
    /// Appends an event index, invalidating the memoized outcomes.
    pub(crate) fn push_index(&mut self, index: usize, is_commit_completion: bool) {
        self.indices.push(index);
        self.has_commit_completion |= is_commit_completion;
        *self.exec.borrow_mut() = None;
        *self.erase.borrow_mut() = None;
    }

    /// Whether the group's events reduce to `Λ`, memoized.
    pub(crate) fn erases<H: HistoryRead + ?Sized>(
        &self,
        h: &H,
        budget: SearchBudget,
    ) -> EraseOutcome {
        if let Some(outcome) = *self.erase.borrow() {
            return outcome;
        }
        let outcome = run_erase_search(h, &self.indices, budget);
        *self.erase.borrow_mut() = Some(outcome);
        outcome
    }

    /// Whether the group's events reduce to a failure-free execution of its
    /// key's action/input, memoized. The target is fully determined by the
    /// group key: the action is `Base(name)` and the input is the key's
    /// value (for round-stamped groups the stamped pair *is* the input,
    /// §5.4).
    pub(crate) fn exec<H: HistoryRead + ?Sized>(
        &self,
        h: &H,
        name: &ActionName,
        input: &Value,
        budget: SearchBudget,
    ) -> ExecOutcome {
        if let Some(outcome) = self.exec.borrow().clone() {
            return outcome;
        }
        let outcome = run_exec_search(h, &self.indices, name, input, budget);
        *self.exec.borrow_mut() = Some(outcome.clone());
        outcome
    }

    /// Installs an exec outcome computed elsewhere (a sharded worker).
    pub(crate) fn prime_exec(&self, outcome: ExecOutcome) {
        *self.exec.borrow_mut() = Some(outcome);
    }

    /// Installs an erase outcome computed elsewhere (a sharded worker).
    pub(crate) fn prime_erase(&self, outcome: EraseOutcome) {
        *self.erase.borrow_mut() = Some(outcome);
    }
}

/// The open starts of one `(action, role)`, with the number of *distinct*
/// open inputs tracked incrementally so a completion's ambiguity test is
/// O(1) instead of a scan over the whole stack (the streaming checker pays
/// this on every completion). Entries are input-value symbols.
#[derive(Debug, Default)]
struct OpenStarts {
    stack: Vec<u32>,
    multiplicity: Multiplicity,
}

/// Distinct-open-input bookkeeping for one slot. Starts as a short
/// linear-scanned list (a stream usually holds a handful of concurrently
/// open inputs per action, where a scan beats a hash probe on the
/// per-event path) and upgrades to a dense value-symbol-indexed table the
/// first time the list outgrows [`MULTIPLICITY_SMALL_MAX`] — retried
/// requests leak one abandoned open start each, so heavy traces hold
/// *millions* of open inputs and a scan would make attribution quadratic.
#[derive(Debug)]
enum Multiplicity {
    /// `(input symbol, open count)`; order is insertion-driven and never
    /// read — only the entry *count* matters.
    Small(Vec<(u32, usize)>),
    /// `counts[input symbol]` (value symbols are dense interner indices),
    /// with the non-zero entry count maintained alongside.
    Dense { counts: Vec<u32>, distinct: usize },
}

/// Distinct open inputs a slot tracks by linear scan before upgrading to
/// the dense table.
const MULTIPLICITY_SMALL_MAX: usize = 16;

impl Default for Multiplicity {
    fn default() -> Self {
        Multiplicity::Small(Vec::new())
    }
}

impl Multiplicity {
    fn push(&mut self, input: u32) {
        match self {
            Multiplicity::Small(entries) => {
                if let Some(entry) = entries.iter_mut().find(|(v, _)| *v == input) {
                    entry.1 += 1;
                    return;
                }
                if entries.len() < MULTIPLICITY_SMALL_MAX {
                    entries.push((input, 1));
                    return;
                }
                // Upgrade: dense table over value symbols, then insert.
                let top = entries
                    .iter()
                    .map(|&(v, _)| v)
                    .max()
                    .unwrap_or(0)
                    .max(input);
                let mut counts = vec![0u32; top as usize + 1];
                for &(v, n) in entries.iter() {
                    counts[v as usize] = n as u32;
                }
                let distinct = entries.len();
                *self = Multiplicity::Dense { counts, distinct };
                self.push(input);
            }
            Multiplicity::Dense { counts, distinct } => {
                if input as usize >= counts.len() {
                    counts.resize(input as usize + 1, 0);
                }
                counts[input as usize] += 1;
                if counts[input as usize] == 1 {
                    *distinct += 1;
                }
            }
        }
    }

    fn pop(&mut self, input: u32) {
        match self {
            Multiplicity::Small(entries) => {
                if let Some(pos) = entries.iter().position(|(v, _)| *v == input) {
                    entries[pos].1 -= 1;
                    if entries[pos].1 == 0 {
                        entries.swap_remove(pos);
                    }
                }
            }
            Multiplicity::Dense { counts, distinct } => {
                if let Some(count) = counts.get_mut(input as usize) {
                    if *count > 0 {
                        *count -= 1;
                        if *count == 0 {
                            *distinct -= 1;
                        }
                    }
                }
            }
        }
    }

    fn distinct(&self) -> usize {
        match self {
            Multiplicity::Small(entries) => entries.len(),
            Multiplicity::Dense { distinct, .. } => *distinct,
        }
    }
}

impl OpenStarts {
    fn push(&mut self, input: u32) {
        self.multiplicity.push(input);
        self.stack.push(input);
    }

    fn pop(&mut self) -> Option<u32> {
        let input = self.stack.pop()?;
        self.multiplicity.pop(input);
        Some(input)
    }

    /// How many distinct inputs are currently open.
    fn distinct(&self) -> usize {
        self.multiplicity.distinct()
    }
}

/// Streaming attribution state: which starts of each action are still open,
/// and the input of each action's most recent start — all symbol-keyed
/// (`(name symbol, role)` for actions, value symbols for inputs), so one
/// attribution step clones nothing.
///
/// A completion event does not carry the input value. We attribute each
/// completion to the *nearest open start* of its action (the most recent
/// start whose execution has not completed yet). For histories recorded by
/// an atomic observer — such as the service ledger, where a completion
/// immediately follows its start — this attribution is exact. When several
/// distinct inputs are open at a completion the choice is heuristic; the
/// caller remembers the ambiguity and later downgrades a `NotXable` verdict
/// to `Unknown` (a different attribution might have succeeded), while an
/// `Xable` verdict remains sound (it exhibits a concrete witness).
#[derive(Debug, Default)]
struct AttributionState {
    /// Indexed by `name symbol * 3 + role`: action symbols are dense and
    /// the alphabet is small, so the attribution step is an array index —
    /// no hash probe on the per-event path.
    open: Vec<OpenStarts>,
    /// Same indexing; the input symbol of the slot's most recent start.
    last_start_input: Vec<Option<u32>>,
}

impl AttributionState {
    /// The dense slot of `(name symbol, role)`, growing the tables on
    /// first sight of a new action symbol.
    fn slot(&mut self, ns: u32, role: u8) -> usize {
        let slot = ns as usize * 3 + role as usize;
        if slot >= self.open.len() {
            self.open.resize_with(slot + 1, OpenStarts::default);
            self.last_start_input.resize(slot + 1, None);
        }
        slot
    }
}

/// What one [`Engine::observe`] step did — the hooks the incremental
/// checker's dirty tracking needs. Self-contained (the group's key and
/// stamped parent ride along) so tracking needs no engine borrow — which
/// is what lets [`Engine::observe_batch`] stream these to the aggregate
/// while the engine itself is mutably borrowed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Observed {
    /// The group the event was attributed to.
    pub(crate) group: GroupSym,
    /// The group's key symbols.
    pub(crate) key: KeySyms,
    /// The group's round-stamped parent key, if it has the stamped shape.
    pub(crate) stamped_parent: Option<KeySyms>,
    /// Whether this event created the group.
    pub(crate) created: bool,
    /// Whether this event flipped the group's `has_commit_completion`.
    pub(crate) commit_completed: bool,
}

/// The symbol-keyed partition/attribution engine shared by the batch
/// [`super::FastChecker`] and the online [`super::IncrementalChecker`]:
/// the interner, the dense group table, and the streaming attribution
/// state.
#[derive(Debug, Default)]
pub(crate) struct Engine {
    interner: Interner,
    /// `(name symbol, input symbol)` → dense group index.
    group_lookup: HashMap<KeySyms, GroupSym>,
    /// Group index → its key symbols.
    keys: Vec<KeySyms>,
    /// Group index → the `(name, base input)` key symbols of its
    /// round-stamped parent, when the group's name is undoable and its
    /// input has the round-stamped shape `Pair(base input, round)` (§5.4).
    /// The base input is interned when the group is created, so parent
    /// lookups are symbol probes.
    stamped_of: Vec<Option<KeySyms>>,
    /// Group index → its event indices and memoized search outcomes.
    pub(crate) cells: Vec<GroupCell>,
    attribution: AttributionState,
    /// Whether any completion attribution was ambiguous.
    pub(crate) ambiguous: bool,
}

impl Engine {
    /// Builds an engine over a complete source in one pass, or reports the
    /// first completion without a start (a definite `NotXable` reason).
    pub(crate) fn from_source<H: HistoryRead + ?Sized>(h: &H) -> Result<Engine, String> {
        let mut eng = Engine::default();
        let mut err: Option<String> = None;
        h.scan_events(&mut |i, ev| match eng.observe(ev, i) {
            Ok(_) => true,
            Err(reason) => {
                err = Some(reason);
                false
            }
        });
        match err {
            Some(reason) => Err(reason),
            None => Ok(eng),
        }
    }

    /// Consumes one event: one streaming attribution step, one group-cell
    /// append, one memo invalidation — amortized O(1), no name or value
    /// clone (interning clones only on first sight of a distinct symbol).
    ///
    /// Returns what happened (for dirty tracking), or `Err(reason)` for a
    /// completion whose action has never started (a violation of the event
    /// axioms of §2.2 — definitely not x-able, independent of any
    /// ambiguity).
    pub(crate) fn observe(&mut self, event: &Event, index: usize) -> Result<Observed, String> {
        let (key, is_commit_completion) = match event {
            Event::Start(a, iv) => {
                let ns = self.interner.intern_action(a.base_name());
                let vs = self.interner.intern_value(iv);
                self.attribute_start(ns, role_of(a), vs);
                ((ns, vs), false)
            }
            Event::Complete(a, _) => {
                let ns = self.interner.intern_action(a.base_name());
                let vs = self.attribute_completion(ns, role_of(a), a, index)?;
                ((ns, vs), a.is_commit())
            }
        };
        let (group, created) = self.group_of(key);
        Ok(self.record_in_cell(group, key, created, index, is_commit_completion))
    }

    /// Consumes a slice of events observed together — semantically
    /// identical to [`Engine::observe`] on each in order, with the
    /// batch-local memos `TraceStore::push_batch` uses amortizing the
    /// per-event hash probes: an action-symbol memo (a linear scan over
    /// the handful of names a batch carries), a last-input memo (a start
    /// and its retries repeat one value), and a last-group memo (an
    /// `S S C` run lands in one cell). `track` is called once per event,
    /// in order, with `Err` for an orphan completion (which, exactly like
    /// the per-event path, joins no group and stops nothing).
    pub(crate) fn observe_batch(
        &mut self,
        events: &[Event],
        first_index: usize,
        track: &mut dyn FnMut(Result<Observed, String>),
    ) {
        // Capped like the store's memo: overflow names fall back to the
        // interner rather than turning the scan quadratic.
        let mut actions: Vec<(&ActionName, u32)> = Vec::new();
        let mut last_value: Option<(&Value, u32)> = None;
        let mut last_group: Option<(KeySyms, GroupSym)> = None;
        for (offset, event) in events.iter().enumerate() {
            let index = first_index + offset;
            let name = event.action().base_name();
            let ns = match actions.iter().find(|(n, _)| *n == name) {
                Some(&(_, sym)) => sym,
                None => {
                    let sym = self.interner.intern_action(name);
                    if actions.len() < 64 {
                        actions.push((name, sym));
                    }
                    sym
                }
            };
            let (key, is_commit_completion) = match event {
                Event::Start(a, iv) => {
                    let vs = match last_value {
                        Some((v, sym)) if v == iv => sym,
                        _ => {
                            let sym = self.interner.intern_value(iv);
                            last_value = Some((iv, sym));
                            sym
                        }
                    };
                    self.attribute_start(ns, role_of(a), vs);
                    ((ns, vs), false)
                }
                Event::Complete(a, _) => {
                    match self.attribute_completion(ns, role_of(a), a, index) {
                        Ok(vs) => ((ns, vs), a.is_commit()),
                        Err(reason) => {
                            track(Err(reason));
                            continue;
                        }
                    }
                }
            };
            let (group, created) = match last_group {
                Some((k, sym)) if k == key => (sym, false),
                _ => {
                    let (sym, created) = self.group_of(key);
                    last_group = Some((key, sym));
                    (sym, created)
                }
            };
            track(Ok(self.record_in_cell(
                group,
                key,
                created,
                index,
                is_commit_completion,
            )));
        }
    }

    /// Attribution step for a start: opens `(ns, role)` with input `vs`.
    fn attribute_start(&mut self, ns: u32, role: u8, vs: u32) {
        let slot = self.attribution.slot(ns, role);
        self.attribution.open[slot].push(vs);
        self.attribution.last_start_input[slot] = Some(vs);
    }

    /// Attribution step for a completion: the input symbol of the nearest
    /// open start (or of the most recent start, flagging the ambiguity),
    /// or `Err` for an orphan completion.
    fn attribute_completion(
        &mut self,
        ns: u32,
        role: u8,
        a: &ActionId,
        index: usize,
    ) -> Result<u32, String> {
        let slot = self.attribution.slot(ns, role);
        let open = &mut self.attribution.open[slot];
        if open.distinct() > 1 {
            self.ambiguous = true;
        }
        match open.pop() {
            Some(vs) => Ok(vs),
            // Duplicate completion after all starts closed: attribute to
            // the most recent start.
            None => match self.attribution.last_start_input[slot] {
                Some(vs) => {
                    self.ambiguous = true;
                    Ok(vs)
                }
                None => Err(format!(
                    "completion of {a} at index {index} has no start event (violates the event axioms of §2.2)"
                )),
            },
        }
    }

    /// The dense group of `key`, created on first sight.
    fn group_of(&mut self, key: KeySyms) -> (GroupSym, bool) {
        match self.group_lookup.get(&key) {
            Some(&sym) => (sym, false),
            None => {
                let sym = u32::try_from(self.cells.len()).expect("more than u32::MAX groups");
                // Round-stamped shape: intern the base input now so the
                // parent key is a pure symbol probe from then on.
                let stamped = if self.interner.action(key.0).is_undoable() {
                    match self.interner.value(key.1) {
                        Value::Pair(p) if matches!(p.1, Value::Int(_)) => {
                            let base = p.0.clone();
                            Some((key.0, self.interner.intern_value(&base)))
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                self.group_lookup.insert(key, sym);
                self.keys.push(key);
                self.stamped_of.push(stamped);
                self.cells.push(GroupCell::default());
                (sym, true)
            }
        }
    }

    /// Appends the event's index to its group's cell and packages the
    /// self-contained [`Observed`] record.
    fn record_in_cell(
        &mut self,
        group: GroupSym,
        key: KeySyms,
        created: bool,
        index: usize,
        is_commit_completion: bool,
    ) -> Observed {
        let stamped_parent = self.stamped_of[group as usize];
        let cell = &mut self.cells[group as usize];
        let commit_completed = is_commit_completion && !cell.has_commit_completion;
        cell.push_index(index, is_commit_completion);
        Observed {
            group,
            key,
            stamped_parent,
            created,
            commit_completed,
        }
    }

    /// The interner backing the engine's symbols.
    pub(crate) fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable interner access (the incremental checker interns declared
    /// request keys so later group probes are symbol comparisons).
    pub(crate) fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// The number of groups.
    pub(crate) fn group_count(&self) -> usize {
        self.cells.len()
    }

    /// The key symbols of a group.
    pub(crate) fn key(&self, sym: GroupSym) -> KeySyms {
        self.keys[sym as usize]
    }

    /// The group with exactly the key `syms`, if any.
    pub(crate) fn group_with_key(&self, syms: KeySyms) -> Option<GroupSym> {
        self.group_lookup.get(&syms).copied()
    }

    /// The key symbols of `(name, input)` if both are already interned —
    /// a pure probe; an un-interned key cannot match any group.
    pub(crate) fn lookup_key(&self, name: &ActionName, input: &Value) -> Option<KeySyms> {
        let ns = self.interner.lookup_action(name)?;
        let vs = self.interner.lookup_value(input)?;
        Some((ns, vs))
    }

    /// Resolves a group's key to its owned `(name, input)` (for search
    /// targets and messages — off the per-event hot path).
    pub(crate) fn resolve(&self, sym: GroupSym) -> (ActionName, Value) {
        let (ns, vs) = self.keys[sym as usize];
        (
            self.interner.action(ns).clone(),
            self.interner.value(vs).clone(),
        )
    }

    /// The round-stamped children of each parent key, in group-symbol
    /// (first-seen) order — built in one pass over the group table.
    pub(crate) fn stamped_children_index(&self) -> HashMap<KeySyms, Vec<GroupSym>> {
        let mut index: HashMap<KeySyms, Vec<GroupSym>> = HashMap::new();
        for (sym, parent) in self.stamped_of.iter().enumerate() {
            if let Some(parent) = parent {
                index.entry(*parent).or_default().push(sym as GroupSym);
            }
        }
        index
    }
}

// ---------------------------------------------------------------------------
// Verdict message builders, shared by the batch assembly (`decide`) and the
// incremental aggregate so the two produce byte-identical reasons.

pub(crate) fn msg_not_base(action: &ActionId) -> String {
    format!("request action {action} is not a base action")
}

pub(crate) fn msg_duplicate(name: &ActionName, input: &Value) -> String {
    format!("duplicate request identity {name}/{input}")
}

pub(crate) fn msg_plain_and_stamped(action: &ActionId, input: &Value) -> String {
    format!("request ({action}, {input}) has both plain and round-stamped events")
}

pub(crate) fn msg_never_executed(action: &ActionId, input: &Value) -> String {
    format!("request ({action}, {input}) was never executed")
}

pub(crate) fn msg_committed_rounds(action: &ActionId, input: &Value, rounds: usize) -> String {
    format!("request ({action}, {input}) committed in {rounds} rounds (want exactly 1)")
}

pub(crate) fn msg_stuck(action: &ActionId, input: &Value) -> String {
    format!("events of request ({action}, {input}) do not reduce to a failure-free execution")
}

pub(crate) fn msg_exec_budget(action: &ActionId, input: &Value) -> String {
    format!("per-group search budget exceeded for request ({action}, {input})")
}

pub(crate) fn what_cancelled_round(round: &Value, action: &ActionId, input: &Value) -> String {
    format!("cancelled round {round} of ({action}, {input})")
}

pub(crate) fn what_abandoned(action: &ActionId, input: &Value) -> String {
    format!("abandoned request ({action}, {input})")
}

pub(crate) fn what_undeclared(name: &ActionName, input: &Value) -> String {
    format!("undeclared request {name}/{input}")
}

pub(crate) fn msg_not_erasing(what: &dyn fmt::Display) -> String {
    format!("{what} left events that do not erase")
}

pub(crate) fn msg_erase_budget(what: &dyn fmt::Display) -> String {
    format!("per-group search budget exceeded erasing {what}")
}

pub(crate) const MSG_OUT_OF_ORDER: &str = "request effects occur out of submission order";

/// Wraps a definite rejection into the verdict the attribution quality
/// allows: when attribution was ambiguous, a negative verdict is
/// unreliable (a different attribution might have succeeded), so it is
/// downgraded to `Unknown`.
pub(crate) fn fail_verdict(ambiguous: bool, reason: String) -> Verdict {
    if ambiguous {
        Verdict::Unknown {
            reason: format!("(after ambiguous completion attribution) {reason}"),
        }
    } else {
        Verdict::NotXable { reason }
    }
}

// ---------------------------------------------------------------------------
// The batch assembly.

/// The assembly: decides x-ability of `h` — already partitioned into the
/// engine's groups — with respect to the ordered request sequence `ops`,
/// additionally allowing the requests in `erasable` to have left events
/// that reduce to nothing.
///
/// Per-group searches go through the [`GroupCell`] memos, so a caller that
/// keeps the cells warm (the incremental checker, the two attempts of an
/// R3 question, or a sharded pre-pass) pays for each group search at most
/// once.
pub(crate) fn decide<H: HistoryRead + ?Sized>(
    h: &H,
    eng: &Engine,
    budget: SearchBudget,
    ops: &[(ActionId, Value)],
    erasable: &[(ActionId, Value)],
) -> Verdict {
    // --- Validate the op list. ---
    let mut seen: HashSet<(&ActionName, &Value)> = HashSet::new();
    for (action, input) in ops.iter().chain(erasable.iter()) {
        if !matches!(action, ActionId::Base(_)) {
            return Verdict::Unknown {
                reason: msg_not_base(action),
            };
        }
        if !seen.insert((action.base_name(), input)) {
            return Verdict::Unknown {
                reason: msg_duplicate(action.base_name(), input),
            };
        }
    }

    let fail = |reason: String| fail_verdict(eng.ambiguous, reason);
    let stamped_children = eng.stamped_children_index();

    // --- Every group must correspond to a declared request, directly or
    // as a round-stamped transaction of a declared undoable request
    // (§5.4: the round number is part of the action's parameters).
    // Undeclared groups are not automatically violations: a group that
    // reduces to Λ (say, a spurious cancellation that cancelled nothing) is
    // invisible to the reduction target; they are checked for erasability
    // below. ---
    let mut declared_groups: HashSet<GroupSym> = HashSet::new();
    for (action, input) in ops.iter().chain(erasable.iter()) {
        let Some(key) = eng.lookup_key(action.base_name(), input) else {
            continue;
        };
        if let Some(sym) = eng.group_with_key(key) {
            declared_groups.insert(sym);
        }
        if action.is_undoable_base() {
            if let Some(children) = stamped_children.get(&key) {
                declared_groups.extend(children.iter().copied());
            }
        }
    }

    let erase_group = |cell: &GroupCell, what: &dyn fmt::Display| -> Option<Verdict> {
        match cell.erases(h, budget) {
            EraseOutcome::Erases => None,
            EraseOutcome::Stuck => Some(fail(msg_not_erasing(what))),
            EraseOutcome::Budget => Some(Verdict::Unknown {
                reason: msg_erase_budget(what),
            }),
        }
    };

    // --- Decide each group. ---
    let mut outputs: Vec<Value> = Vec::with_capacity(ops.len());
    let mut anchors: Vec<usize> = Vec::with_capacity(ops.len());
    for (action, input) in ops.iter() {
        let key = eng.lookup_key(action.base_name(), input);
        let plain = key.and_then(|k| eng.group_with_key(k));
        let stamped: &[GroupSym] = if action.is_undoable_base() {
            key.and_then(|k| stamped_children.get(&k))
                .map(Vec::as_slice)
                .unwrap_or(&[])
        } else {
            &[]
        };
        let exec_sym: GroupSym = match (plain, stamped.is_empty()) {
            (Some(_), false) => {
                return Verdict::Unknown {
                    reason: msg_plain_and_stamped(action, input),
                };
            }
            (Some(sym), true) => sym,
            (None, true) => {
                return fail(msg_never_executed(action, input));
            }
            (None, false) => {
                // Round-stamped transactions: exactly one round commits and
                // must reduce to a failure-free execution; every other round
                // must erase (cancelled rounds).
                let committed: Vec<GroupSym> = stamped
                    .iter()
                    .copied()
                    .filter(|&sym| eng.cells[sym as usize].has_commit_completion)
                    .collect();
                if committed.len() != 1 {
                    return fail(msg_committed_rounds(action, input, committed.len()));
                }
                let committed = committed[0];
                for &sym in stamped {
                    if sym == committed {
                        continue;
                    }
                    let round = eng.interner().value(eng.key(sym).1);
                    let what = what_cancelled_round(round, action, input);
                    if let Some(v) = erase_group(&eng.cells[sym as usize], &what) {
                        return v;
                    }
                }
                committed
            }
        };
        let (exec_name, exec_input) = eng.resolve(exec_sym);
        match eng.cells[exec_sym as usize].exec(h, &exec_name, &exec_input, budget) {
            ExecOutcome::Reduced { output, anchor } => {
                outputs.push(output);
                anchors.push(anchor);
            }
            ExecOutcome::Stuck => {
                return fail(msg_stuck(action, input));
            }
            ExecOutcome::Budget => {
                return Verdict::Unknown {
                    reason: msg_exec_budget(action, input),
                };
            }
        }
    }

    for (action, input) in erasable {
        let key = eng.lookup_key(action.base_name(), input);
        let mut all_cells: Vec<GroupSym> = Vec::new();
        if let Some(sym) = key.and_then(|k| eng.group_with_key(k)) {
            all_cells.push(sym);
        }
        if action.is_undoable_base() {
            if let Some(children) = key.and_then(|k| stamped_children.get(&k)) {
                all_cells.extend(children.iter().copied());
            }
        }
        for sym in all_cells {
            let what = what_abandoned(action, input);
            if let Some(v) = erase_group(&eng.cells[sym as usize], &what) {
                return v;
            }
        }
    }

    for sym in 0..eng.group_count() as GroupSym {
        if declared_groups.contains(&sym) {
            continue;
        }
        let (ns, vs) = eng.key(sym);
        let what = what_undeclared(eng.interner().action(ns), eng.interner().value(vs));
        if let Some(v) = erase_group(&eng.cells[sym as usize], &what) {
            return v;
        }
    }

    // --- Cross-request ordering: effects in submission order. ---
    // The paper's multi-request criterion (reduction to the ordered
    // concatenation of failure-free histories) implicitly assumes the
    // system quiesces between requests: rules 18/20 always keep the
    // *latest* duplicate, so a harmless trailing duplicate (a slow
    // replica's deduplicated re-execution or help-commit landing after the
    // next request started) would make the ordered target unreachable even
    // though every effect happened exactly once and in order. We therefore
    // check the per-request criterion plus *effect order*: each group's
    // first surviving completion — the instant its side-effect became
    // observable — must follow submission order. On histories without
    // trailing duplicates this coincides with the strict criterion (blocks
    // then compact in order); with them, it is the faithful reading of
    // "appears to be executed exactly-once, in order".
    for w in anchors.windows(2) {
        if w[0] >= w[1] {
            return fail(MSG_OUT_OF_ORDER.to_owned());
        }
    }

    Verdict::Xable {
        witness: Witness::from_outputs(outputs),
    }
}

/// Batch entry point used by the `FastChecker` frontend: one partition,
/// then the R3 combination over the shared memo cells.
pub(crate) fn check_requests_batch<H: HistoryRead + ?Sized>(
    h: &H,
    budget: SearchBudget,
    ops: &[(ActionId, Value)],
) -> Verdict {
    match Engine::from_source(h) {
        Ok(eng) => crate::xable::checker::combine_r3_attempts(ops, |ops, erasable| {
            decide(h, &eng, budget, ops, erasable)
        }),
        Err(reason) => Verdict::NotXable { reason },
    }
}

// ---------------------------------------------------------------------------
// The sharded batch path.

/// Which per-group search a sharded worker should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SearchKind {
    Exec,
    Erase,
}

/// One unit of sharded work: everything a worker needs to run one
/// per-group search. The engine itself is not `Sync` (the memo cells use
/// `RefCell`), but the borrowed indices/key data is — so jobs carry
/// borrows for the duration of the scope instead of deep-cloning every
/// group's index vector.
#[derive(Debug, Clone, Copy)]
struct ShardJob<'a> {
    sym: GroupSym,
    kind: SearchKind,
    indices: &'a [usize],
    /// The group's resolved key — the exec search target.
    name: &'a ActionName,
    input: &'a Value,
}

/// The outcome a worker hands back for one job.
#[derive(Debug)]
enum ShardOutcome {
    Exec(ExecOutcome),
    Erase(EraseOutcome),
}

/// Plans which searches `decide(h, eng, budget, ops, erasable)` could
/// consult, as shard jobs. The plan may be a superset of what the
/// sequential assembly actually reads (the assembly early-returns on the
/// first failure); running the extras is harmless because every search is
/// a pure, deterministic function of its group's sub-history.
fn plan_searches<'a>(
    eng: &'a Engine,
    ops: &[(ActionId, Value)],
    erasable: &[(ActionId, Value)],
    jobs: &mut Vec<ShardJob<'a>>,
    planned: &mut HashSet<(GroupSym, SearchKind)>,
) {
    let stamped_children = eng.stamped_children_index();
    let mut declared_groups: HashSet<GroupSym> = HashSet::new();
    let mut push = |sym: GroupSym, kind: SearchKind| {
        if planned.insert((sym, kind)) {
            let (ns, vs) = eng.key(sym);
            jobs.push(ShardJob {
                sym,
                kind,
                indices: &eng.cells[sym as usize].indices,
                name: eng.interner().action(ns),
                input: eng.interner().value(vs),
            });
        }
    };
    for (action, input) in ops.iter().chain(erasable.iter()) {
        if !matches!(action, ActionId::Base(_)) {
            continue;
        }
        let Some(key) = eng.lookup_key(action.base_name(), input) else {
            continue;
        };
        if let Some(sym) = eng.group_with_key(key) {
            declared_groups.insert(sym);
        }
        if action.is_undoable_base() {
            if let Some(children) = stamped_children.get(&key) {
                declared_groups.extend(children.iter().copied());
            }
        }
    }
    for (action, input) in ops {
        if !matches!(action, ActionId::Base(_)) {
            continue;
        }
        let Some(key) = eng.lookup_key(action.base_name(), input) else {
            continue;
        };
        let plain = eng.group_with_key(key);
        let stamped: &[GroupSym] = if action.is_undoable_base() {
            stamped_children.get(&key).map(Vec::as_slice).unwrap_or(&[])
        } else {
            &[]
        };
        match (plain, stamped.is_empty()) {
            (Some(sym), true) => push(sym, SearchKind::Exec),
            (None, false) => {
                let committed: Vec<GroupSym> = stamped
                    .iter()
                    .copied()
                    .filter(|&sym| eng.cells[sym as usize].has_commit_completion)
                    .collect();
                if committed.len() == 1 {
                    for &sym in stamped {
                        if sym == committed[0] {
                            push(sym, SearchKind::Exec);
                        } else {
                            push(sym, SearchKind::Erase);
                        }
                    }
                }
            }
            _ => {}
        }
    }
    for (action, input) in erasable {
        if !matches!(action, ActionId::Base(_)) {
            continue;
        }
        let Some(key) = eng.lookup_key(action.base_name(), input) else {
            continue;
        };
        if let Some(sym) = eng.group_with_key(key) {
            push(sym, SearchKind::Erase);
        }
        if action.is_undoable_base() {
            if let Some(children) = stamped_children.get(&key) {
                for &sym in children {
                    push(sym, SearchKind::Erase);
                }
            }
        }
    }
    for sym in 0..eng.group_count() as GroupSym {
        if !declared_groups.contains(&sym) {
            push(sym, SearchKind::Erase);
        }
    }
}

/// Runs the planned searches on `workers` (≥ 2) scoped threads and primes
/// the engine's memo cells with the outcomes, so a subsequent [`decide`]
/// is pure assembly. Jobs are split round-robin; since every search is a
/// deterministic pure function, the merge is independent of scheduling and
/// the final verdict is identical to the sequential one.
fn run_sharded<H: HistoryRead + Sync + ?Sized>(
    h: &H,
    eng: &Engine,
    budget: SearchBudget,
    jobs: &[ShardJob<'_>],
    workers: usize,
) {
    let workers = workers.min(jobs.len()).max(1);
    let outcomes: Vec<(GroupSym, SearchKind, ShardOutcome)> = if workers <= 1 {
        jobs.iter().map(|job| run_job(h, budget, job)).collect()
    } else {
        let mut results: Vec<Vec<(GroupSym, SearchKind, ShardOutcome)>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                handles.push(scope.spawn(move || {
                    jobs.iter()
                        .skip(w)
                        .step_by(workers)
                        .map(|job| run_job(h, budget, job))
                        .collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                results.push(handle.join().expect("shard worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    };
    for (sym, kind, outcome) in outcomes {
        let cell = &eng.cells[sym as usize];
        match (kind, outcome) {
            (SearchKind::Exec, ShardOutcome::Exec(o)) => cell.prime_exec(o),
            (SearchKind::Erase, ShardOutcome::Erase(o)) => cell.prime_erase(o),
            _ => unreachable!("job kind and outcome kind always match"),
        }
    }
}

fn run_job<H: HistoryRead + ?Sized>(
    h: &H,
    budget: SearchBudget,
    job: &ShardJob<'_>,
) -> (GroupSym, SearchKind, ShardOutcome) {
    let outcome = match job.kind {
        SearchKind::Exec => {
            ShardOutcome::Exec(run_exec_search(h, job.indices, job.name, job.input, budget))
        }
        SearchKind::Erase => ShardOutcome::Erase(run_erase_search(h, job.indices, budget)),
    };
    (job.sym, job.kind, outcome)
}

/// The sharded batch check behind [`super::FastChecker::check_sharded`]:
/// partition sequentially (one cheap pass), run the per-group searches on
/// `workers` scoped threads, then assemble sequentially over the warm
/// memos. Returns exactly what the sequential check returns; `workers <= 1`
/// *is* the sequential check (no plan, no eager searches — the assembly's
/// early returns skip whatever it never needs).
pub(crate) fn check_sharded<H: HistoryRead + Sync + ?Sized>(
    h: &H,
    budget: SearchBudget,
    ops: &[(ActionId, Value)],
    erasable: &[(ActionId, Value)],
    workers: usize,
) -> Verdict {
    let eng = match Engine::from_source(h) {
        Ok(eng) => eng,
        Err(reason) => return Verdict::NotXable { reason },
    };
    if workers > 1 {
        let mut jobs = Vec::new();
        let mut planned = HashSet::new();
        plan_searches(&eng, ops, erasable, &mut jobs, &mut planned);
        run_sharded(h, &eng, budget, &jobs, workers);
    }
    decide(h, &eng, budget, ops, erasable)
}

/// The sharded R3 check behind
/// [`super::FastChecker::check_requests_sharded`]: the search plan is the
/// union over both R3 attempts (full sequence; prefix with the last
/// request erasable), so the whole question parallelizes in one wave.
/// `workers <= 1` is the plain sequential R3 check.
pub(crate) fn check_requests_sharded<H: HistoryRead + Sync + ?Sized>(
    h: &H,
    budget: SearchBudget,
    ops: &[(ActionId, Value)],
    workers: usize,
) -> Verdict {
    let eng = match Engine::from_source(h) {
        Ok(eng) => eng,
        Err(reason) => return Verdict::NotXable { reason },
    };
    if workers > 1 {
        let mut jobs = Vec::new();
        let mut planned = HashSet::new();
        plan_searches(&eng, ops, &[], &mut jobs, &mut planned);
        if let Some((last, prefix)) = ops.split_last() {
            plan_searches(
                &eng,
                prefix,
                std::slice::from_ref(last),
                &mut jobs,
                &mut planned,
            );
        }
        run_sharded(h, &eng, budget, &jobs, workers);
    }
    crate::xable::checker::combine_r3_attempts(ops, |ops, erasable| {
        decide(h, &eng, budget, ops, erasable)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionName, Request};
    use crate::event::Event;
    use crate::failure_free::eventsof;
    use crate::xable::checker::{Checker, FastChecker};

    fn fast() -> FastChecker {
        FastChecker::default()
    }

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn undo(name: &str) -> ActionId {
        ActionId::base(ActionName::undoable(name))
    }

    fn s(a: &ActionId, v: i64) -> Event {
        Event::start(a.clone(), Value::from(v))
    }

    fn c(a: &ActionId, v: i64) -> Event {
        Event::complete(a.clone(), Value::from(v))
    }

    fn cnil(a: &ActionId) -> Event {
        Event::complete(a.clone(), Value::Nil)
    }

    /// The closed form's soundness proof by enumeration: over *every*
    /// sequence up to [`CLOSED_FORM_MAX_LEN`] events drawn from
    /// `{S(a,k), C(a,o1), C(a,o2)}` — the entire gated input class modulo
    /// value identity — the closed form must agree exactly with the real
    /// reduction search on both the exec and the erase question, anchors
    /// and outputs included. Equality also proves the search never
    /// exhausts [`SearchBudget::small`] in the gated regime (a `Budget`
    /// outcome would mismatch the closed form's decision).
    #[test]
    fn closed_form_matches_search_exhaustively() {
        let name = ActionName::idempotent("a");
        let action = ActionId::base(name.clone());
        let input = Value::from(7);
        let alphabet = [
            Event::start(action.clone(), input.clone()),
            Event::complete(action.clone(), Value::from(1)),
            Event::complete(action.clone(), Value::from(2)),
        ];
        let budget = SearchBudget::small();
        let mut checked = 0usize;
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(picks) = stack.pop() {
            let sub: History = picks.iter().map(|&i| alphabet[i].clone()).collect();
            let indices: Vec<usize> = (0..sub.len()).collect();

            let fast_exec = run_exec_search(&sub, &indices, &name, &input, budget);
            let goal = |cand: &History| failure_free_output(&action, &input, cand).is_some();
            let search_exec = match search_reduction(&sub, goal, 2, budget) {
                SearchResult::Reached(witness) => {
                    let output = failure_free_output(&action, &input, &witness)
                        .expect("goal predicate guarantees failure-free shape");
                    let anchor = (0..sub.len())
                        .find(|&i| sub.is_base_completion_at(i))
                        .expect("a reached idempotent group has a completion");
                    ExecOutcome::Reduced { output, anchor }
                }
                SearchResult::Exhausted => ExecOutcome::Stuck,
                SearchResult::BudgetExceeded => ExecOutcome::Budget,
            };
            assert_eq!(fast_exec, search_exec, "exec closed form diverges on {sub}");

            let fast_erase = run_erase_search(&sub, &indices, budget);
            let search_erase = match search_reduction(&sub, History::is_empty, 0, budget) {
                SearchResult::Reached(_) => EraseOutcome::Erases,
                SearchResult::Exhausted => EraseOutcome::Stuck,
                SearchResult::BudgetExceeded => EraseOutcome::Budget,
            };
            assert_eq!(
                fast_erase, search_erase,
                "erase closed form diverges on {sub}"
            );

            checked += 1;
            if picks.len() < CLOSED_FORM_MAX_LEN {
                for next in 0..alphabet.len() {
                    let mut longer = picks.clone();
                    longer.push(next);
                    stack.push(longer);
                }
            }
        }
        // Σ_{l=0..8} 3^l — the whole gated class was enumerated.
        assert_eq!(checked, 9_841);
    }

    /// Groups the closed form must *refuse* (falling back to the search):
    /// undoable names, cancel/commit events, foreign inputs, over-long
    /// groups, and sub-`small()` budgets.
    #[test]
    fn closed_form_gate_rejects_ungated_shapes() {
        let a = idem("a");
        let small = SearchBudget::small();
        // An undoable group decides through the search (and still works).
        let u_name = ActionName::undoable("u");
        let u = ActionId::base(u_name.clone());
        let commit = u.commit().expect("undoable actions have a commit form");
        let h: History = [
            s(&u, 1),
            c(&u, 5),
            Event::start(commit.clone(), Value::from(1)),
            cnil(&commit),
        ]
        .into_iter()
        .collect();
        let indices: Vec<usize> = (0..h.len()).collect();
        assert!(matches!(
            run_exec_search(&h, &indices, &u_name, &Value::from(1), small),
            ExecOutcome::Reduced { .. }
        ));
        // A foreign start input in an idempotent group: gate refuses, the
        // search still answers (here: stuck — the goal needs input 1).
        let name = ActionName::idempotent("a");
        let h: History = [s(&a, 2), c(&a, 5)].into_iter().collect();
        assert!(idempotent_exec_closed_form(&h, &[0, 1], &name, &Value::from(1), small).is_none());
        assert_eq!(
            run_exec_search(&h, &[0, 1], &name, &Value::from(1), small),
            ExecOutcome::Stuck
        );
        // Over-long groups and starved budgets are not closed-formed.
        let long: History = (0..CLOSED_FORM_MAX_LEN + 1).map(|_| s(&a, 1)).collect();
        let all: Vec<usize> = (0..long.len()).collect();
        assert!(idempotent_exec_closed_form(&long, &all, &name, &Value::from(1), small).is_none());
        let starved = SearchBudget {
            max_expansions: 10,
            max_visited: 10,
        };
        let h: History = [s(&a, 1), c(&a, 5)].into_iter().collect();
        assert!(
            idempotent_exec_closed_form(&h, &[0, 1], &name, &Value::from(1), starved).is_none()
        );
        assert!(idempotent_erase_closed_form(&h, starved).is_none());
        // Mixed-input erase groups fall back too.
        let mixed: History = [s(&a, 1), s(&a, 2)].into_iter().collect();
        assert!(idempotent_erase_closed_form(&mixed, small).is_none());
        assert_eq!(
            run_erase_search(&mixed, &[0, 1], small),
            EraseOutcome::Stuck
        );
    }

    #[test]
    fn accepts_failure_free_single_request() {
        let a = idem("a");
        let h = eventsof(&a, &Value::from(1), &Value::from(5));
        let v = fast().check(&h, &[(a, Value::from(1))], &[]);
        assert_eq!(v, Verdict::xable(vec![Value::from(5)]));
    }

    #[test]
    fn accepts_retried_idempotent_request() {
        let a = idem("a");
        let h: History = [s(&a, 1), s(&a, 1), c(&a, 5), s(&a, 1), c(&a, 5)]
            .into_iter()
            .collect();
        assert!(fast().check(&h, &[(a, Value::from(1))], &[]).is_xable());
    }

    #[test]
    fn rejects_disagreeing_outputs() {
        let a = idem("a");
        let h: History = [s(&a, 1), c(&a, 5), s(&a, 1), c(&a, 6)]
            .into_iter()
            .collect();
        assert!(fast().check(&h, &[(a, Value::from(1))], &[]).is_not_xable());
    }

    #[test]
    fn rejects_missing_request() {
        let a = idem("a");
        let v = fast().check(&History::empty(), &[(a, Value::from(1))], &[]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn rejects_undeclared_events() {
        let a = idem("a");
        let b = idem("b");
        let h = eventsof(&a, &Value::from(1), &Value::from(5)).concat(&eventsof(
            &b,
            &Value::from(2),
            &Value::from(6),
        ));
        let v = fast().check(&h, &[(a, Value::from(1))], &[]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn rejects_completion_without_start() {
        let a = idem("a");
        let h: History = [c(&a, 5)].into_iter().collect();
        let v = fast().check(&h, &[(a, Value::from(1))], &[]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn ambiguous_completion_attribution_is_unknown() {
        let a = idem("a");
        // Two different inputs for the same action plus a completion:
        // attribution is ambiguous.
        let h: History = [s(&a, 1), s(&a, 2), c(&a, 5), c(&a, 5)]
            .into_iter()
            .collect();
        let v = fast().check(&h, &[(a.clone(), Value::from(1)), (a, Value::from(2))], &[]);
        assert!(matches!(v, Verdict::Unknown { .. }));
    }

    #[test]
    fn undoable_request_with_cancelled_round_is_xable() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let h: History = [
            s(&u, 1),
            s(&cancel, 1),
            cnil(&cancel),
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
        ]
        .into_iter()
        .collect();
        let v = fast().check(&h, &[(u, Value::from(1))], &[]);
        assert_eq!(v, Verdict::xable(vec![Value::from(7)]));
    }

    #[test]
    fn sequence_in_order_is_xable() {
        let a = idem("a");
        let b = undo("b");
        let h = eventsof(&a, &Value::from(1), &Value::from(5)).concat(&eventsof(
            &b,
            &Value::from(2),
            &Value::from(6),
        ));
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        let v = fast().check(&h, &ops, &[]);
        assert_eq!(v, Verdict::xable(vec![Value::from(5), Value::from(6)]));
    }

    #[test]
    fn sequence_out_of_order_is_rejected() {
        let a = idem("a");
        let b = idem("b");
        let h = eventsof(&b, &Value::from(2), &Value::from(6)).concat(&eventsof(
            &a,
            &Value::from(1),
            &Value::from(5),
        ));
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        assert!(fast().check(&h, &ops, &[]).is_not_xable());
    }

    #[test]
    fn overlapping_blocks_with_ordered_effects_are_xable() {
        // S(a) S(b) C(a) C(b): b's compaction moves C(a) in front of its
        // pair, reaching the ordered concatenation — and the effect
        // anchors (C(a) before C(b)) agree.
        let a = idem("a");
        let b = idem("b");
        let h: History = [s(&a, 1), s(&b, 2), c(&a, 5), c(&b, 6)]
            .into_iter()
            .collect();
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        assert!(fast().check(&h, &ops, &[]).is_xable());
    }

    #[test]
    fn cancelled_then_retried_after_later_request_is_rejected() {
        // u completed, was cancelled, and was only re-executed (and
        // committed) after b's effect: u's first completion was undone by
        // the cancellation, so its *surviving* effect postdates b's —
        // effects are out of submission order (the search reference
        // agrees; see tests/checker_agreement.rs).
        let u = undo("u");
        let b = idem("b");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let h: History = [
            s(&u, 1),
            c(&u, 7),
            s(&cancel, 1),
            cnil(&cancel),
            s(&b, 2),
            c(&b, 6),
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
        ]
        .into_iter()
        .collect();
        let ops = [(u, Value::from(1)), (b, Value::from(2))];
        assert!(fast().check(&h, &ops, &[]).is_not_xable());
    }

    #[test]
    fn cancelled_then_retried_before_later_request_is_xable() {
        // Same cancel-then-retry shape, but the retry (and commit) lands
        // before b: the surviving effects are in submission order.
        let u = undo("u");
        let b = idem("b");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let h: History = [
            s(&u, 1),
            c(&u, 7),
            s(&cancel, 1),
            cnil(&cancel),
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
            s(&b, 2),
            c(&b, 6),
        ]
        .into_iter()
        .collect();
        let ops = [(u, Value::from(1)), (b, Value::from(2))];
        let v = fast().check(&h, &ops, &[]);
        assert_eq!(v, Verdict::xable(vec![Value::from(7), Value::from(6)]));
    }

    #[test]
    fn trailing_duplicate_after_next_request_is_accepted() {
        // A deduplicated retry of request a lands after b completed; the
        // effects still happened exactly once and in order.
        let a = idem("a");
        let b = idem("b");
        let h: History = [s(&a, 1), c(&a, 5), s(&b, 2), c(&b, 6), s(&a, 1), c(&a, 5)]
            .into_iter()
            .collect();
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        assert!(fast().check(&h, &ops, &[]).is_xable());
    }

    #[test]
    fn erasable_group_may_vanish() {
        let a = idem("a");
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let h = eventsof(&a, &Value::from(1), &Value::from(5)).concat(&History::from_events(vec![
            s(&u, 2),
            s(&cancel, 2),
            cnil(&cancel),
        ]));
        let v = fast().check(&h, &[(a, Value::from(1))], &[(u, Value::from(2))]);
        assert_eq!(v, Verdict::xable(vec![Value::from(5)]));
    }

    #[test]
    fn erasable_group_that_committed_is_rejected() {
        let a = idem("a");
        let u = undo("u");
        let h = eventsof(&a, &Value::from(1), &Value::from(5)).concat(&eventsof(
            &u,
            &Value::from(2),
            &Value::from(7),
        ));
        // u committed, so its events cannot erase.
        let v = fast().check(&h, &[(a, Value::from(1))], &[(u, Value::from(2))]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn request_sequence_helper_tries_prefix() {
        let a = idem("a");
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let requests = vec![
            Request::new(a.clone(), Value::from(1)),
            Request::new(u.clone(), Value::from(2)),
        ];
        // Last request started but was cancelled and never retried: x-able
        // via the R1…Rₙ₋₁ case.
        let h = eventsof(&a, &Value::from(1), &Value::from(5)).concat(&History::from_events(vec![
            s(&u, 2),
            s(&cancel, 2),
            cnil(&cancel),
        ]));
        assert!(fast().check_requests(&h, &requests).is_xable());
        // But a *middle* request cannot be abandoned.
        let requests_rev = vec![
            Request::new(u, Value::from(2)),
            Request::new(a, Value::from(1)),
        ];
        let v = fast().check_requests(&h, &requests_rev);
        assert!(!v.is_xable());
    }

    #[test]
    fn empty_request_sequence_accepts_empty_history() {
        assert!(fast().check_requests(&History::empty(), &[]).is_xable());
    }

    #[test]
    fn view_backed_check_matches_owned() {
        // The engine is generic over `HistoryRead`: a zero-copy window
        // over the full history must decide exactly like the owned value.
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let h: History = [
            s(&u, 1),
            s(&cancel, 1),
            cnil(&cancel),
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
        ]
        .into_iter()
        .collect();
        let ops = [(u, Value::from(1))];
        let owned = fast().check(&h, &ops, &[]);
        let viewed = fast().check_source(&h.window(0, h.len()), &ops, &[]);
        assert_eq!(owned, viewed);
    }

    #[test]
    fn round_stamped_rounds_decide_like_the_old_key_scheme() {
        // One cancelled round, one committed round, stamped as
        // Pair(input, round) — the §5.4 shape the protocol produces.
        let u = undo("xfer");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let key = Value::from("r0");
        let iv1 = Value::pair(key.clone(), Value::from(1));
        let iv2 = Value::pair(key.clone(), Value::from(2));
        let h: History = [
            Event::start(u.clone(), iv1.clone()),
            Event::start(cancel.clone(), iv1.clone()),
            Event::complete(cancel.clone(), Value::Nil),
            Event::start(u.clone(), iv2.clone()),
            Event::complete(u.clone(), Value::from("ok")),
            Event::start(commit.clone(), iv2.clone()),
            Event::complete(commit.clone(), Value::Nil),
        ]
        .into_iter()
        .collect();
        let v = fast().check(&h, &[(u.clone(), key.clone())], &[]);
        assert_eq!(v, Verdict::xable(vec![Value::from("ok")]));
        // Declaring the request erasable erases both rounds… except the
        // committed one cannot erase. (The cancelled round leaves an open
        // base start, so attribution is ambiguous and the rejection is
        // reported as `Unknown` rather than a definite negative.)
        let v = fast().check(&h, &[], &[(u, key)]);
        assert!(!v.is_xable());
    }

    #[test]
    fn sharded_check_matches_sequential_for_any_worker_count() {
        let u = undo("u");
        let b = idem("b");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        // An x-able trace, a not-x-able one, and one undeclared tail.
        let xable: History = [
            s(&u, 1),
            s(&cancel, 1),
            cnil(&cancel),
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
            s(&b, 2),
            c(&b, 6),
        ]
        .into_iter()
        .collect();
        let bad: History = [s(&b, 2), c(&b, 6), c(&b, 9)].into_iter().collect();
        let undeclared: History = [s(&b, 2), c(&b, 6), s(&idem("junk"), 3), c(&idem("junk"), 3)]
            .into_iter()
            .collect();
        let checker = fast();
        for h in [&xable, &bad, &undeclared] {
            let ops = [(u.clone(), Value::from(1)), (b.clone(), Value::from(2))];
            let sequential = checker.check(h, &ops, &[]);
            for workers in [1, 2, 8] {
                assert_eq!(
                    checker.check_sharded(h, &ops, &[], workers),
                    sequential,
                    "workers={workers}"
                );
            }
        }
    }
}
