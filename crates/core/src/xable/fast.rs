//! A polynomial x-ability checker for protocol-shaped histories.
//!
//! The exhaustive checker ([`super::search`]) explores the whole reduction
//! closure and is exponential in the worst case. Replication protocols,
//! however, produce histories with a lot of structure: every event belongs
//! to the processing of one request, and requests are submitted one after
//! another (§4 considers a single client that submits `Rᵢ₊₁` only after `Rᵢ`
//! succeeds). This checker exploits that structure:
//!
//! 1. **Grouping.** Events are partitioned by `(base action, input)` —
//!    cancellations and commits join the group of their base action. All the
//!    side conditions of reduction rules (18)–(20) relate events of a single
//!    group, so reduction steps never cross groups (only the interleaving
//!    moves).
//! 2. **Per-group decision.** Each group's sub-history is decided by a
//!    (small, bounded) exhaustive search: request groups must reduce to a
//!    failure-free `eventsof` history; groups listed as *erasable* must
//!    reduce to `Λ`.
//! 3. **Ordering.** Request effects must occur in submission order: each
//!    group's first surviving completion must precede the next group's.
//!    For histories whose groups occupy disjoint index ranges this is
//!    equivalent to reducibility to the ordered concatenation of
//!    failure-free histories (reduction is congruent with respect to
//!    concatenation of group blocks, and compaction moves interleaved
//!    events before surviving pairs). For histories with *trailing
//!    duplicates* — deduplicated re-executions or help-commits landing
//!    after a later request began — the strict ordered-concatenation
//!    target is unreachable by construction (rules 18/20 keep the latest
//!    duplicate), so the checker deliberately applies this per-request,
//!    effect-ordered reading; see DESIGN.md §4.3.
//!
//! Soundness is argued in the doc comments above each step and validated by
//! property tests that compare this checker against the exhaustive one on
//! randomly generated histories (`tests/checker_agreement.rs`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::action::{ActionId, ActionName, Request};
use crate::failure_free::failure_free_output;
use crate::history::History;
use crate::value::Value;
use crate::xable::search::{search_reduction, SearchBudget, SearchResult};

/// The answer of the fast checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The history is x-able; `outputs[i]` is the agreed output of the
    /// `i`-th request.
    XAble {
        /// Output value of each surviving request, in request order.
        outputs: Vec<Value>,
    },
    /// The history is definitely not x-able.
    NotXAble {
        /// Human-readable explanation of the first violation found.
        reason: String,
    },
    /// The history falls outside the checker's class (or a per-group search
    /// ran out of budget); use the exhaustive checker.
    Unknown {
        /// Why the checker could not decide.
        reason: String,
    },
}

impl Verdict {
    /// Returns `true` if the verdict is [`Verdict::XAble`].
    pub fn is_xable(&self) -> bool {
        matches!(self, Verdict::XAble { .. })
    }

    /// Returns `true` if the verdict is [`Verdict::NotXAble`].
    pub fn is_not_xable(&self) -> bool {
        matches!(self, Verdict::NotXAble { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::XAble { outputs } => write!(f, "x-able ({} outputs)", outputs.len()),
            Verdict::NotXAble { reason } => write!(f, "not x-able: {reason}"),
            Verdict::Unknown { reason } => write!(f, "unknown: {reason}"),
        }
    }
}

/// Group key: base action name plus input value.
type GroupKey = (ActionName, Value);

fn key_of(action: &ActionId, input: &Value) -> GroupKey {
    (action.base_name().clone(), input.clone())
}

/// Decides x-ability of `h` with respect to the ordered request sequence
/// `ops`, additionally allowing the requests in `erasable` to have left
/// events that reduce to nothing (the R3 "last request may have been
/// abandoned" case).
///
/// # Examples
///
/// ```
/// use xability_core::xable::fast::{check, Verdict};
/// use xability_core::{ActionId, ActionName, Event, History, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let h: History = [
///     Event::start(a.clone(), Value::from(1)),
///     Event::start(a.clone(), Value::from(1)),
///     Event::complete(a.clone(), Value::from(5)),
/// ]
/// .into_iter()
/// .collect();
/// let verdict = check(&h, &[(a, Value::from(1))], &[]);
/// assert!(verdict.is_xable());
/// ```
pub fn check(
    h: &History,
    ops: &[(ActionId, Value)],
    erasable: &[(ActionId, Value)],
) -> Verdict {
    // --- Validate the op list. ---
    let mut op_keys: Vec<GroupKey> = Vec::with_capacity(ops.len());
    let mut seen_keys: BTreeSet<GroupKey> = BTreeSet::new();
    for (action, input) in ops.iter().chain(erasable.iter()) {
        if !matches!(action, ActionId::Base(_)) {
            return Verdict::Unknown {
                reason: format!("request action {action} is not a base action"),
            };
        }
        let key = key_of(action, input);
        if !seen_keys.insert(key.clone()) {
            return Verdict::Unknown {
                reason: format!("duplicate request identity {}/{}", key.0, key.1),
            };
        }
        op_keys.push(key);
    }
    let erasable_keys: BTreeSet<GroupKey> = erasable
        .iter()
        .map(|(a, iv)| key_of(a, iv))
        .collect();

    // --- Attribute completions to inputs. ---
    // A completion event does not carry the input value. We attribute each
    // completion to the *nearest open start* of its action (the most recent
    // start whose execution has not completed yet). For histories recorded
    // by an atomic observer — such as the service ledger, where a
    // completion immediately follows its start — this attribution is exact.
    // When several distinct inputs are open at a completion the choice is
    // heuristic; we then remember the ambiguity and later downgrade a
    // NotXAble verdict to Unknown (a different attribution might have
    // succeeded), while an XAble verdict remains sound (it exhibits a
    // concrete witness).
    let mut ambiguous = false;
    let mut open: BTreeMap<ActionId, Vec<Value>> = BTreeMap::new();
    let mut last_start_input: BTreeMap<ActionId, Value> = BTreeMap::new();
    let mut groups: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
    for (i, ev) in h.iter().enumerate() {
        let key = match ev {
            crate::event::Event::Start(a, iv) => {
                open.entry(a.clone()).or_default().push(iv.clone());
                last_start_input.insert(a.clone(), iv.clone());
                key_of(a, iv)
            }
            crate::event::Event::Complete(a, _) => {
                let stack = open.entry(a.clone()).or_default();
                let distinct: BTreeSet<&Value> = stack.iter().collect();
                if distinct.len() > 1 {
                    ambiguous = true;
                }
                match stack.pop() {
                    Some(iv) => key_of(a, &iv),
                    None => match last_start_input.get(a) {
                        // Duplicate completion after all starts closed:
                        // attribute to the most recent start.
                        Some(iv) => {
                            ambiguous = true;
                            key_of(a, iv)
                        }
                        None => {
                            return Verdict::NotXAble {
                                reason: format!(
                                    "completion of {a} at index {i} has no start event (violates the event axioms of §2.2)"
                                ),
                            };
                        }
                    },
                }
            }
        };
        groups.entry(key).or_default().push(i);
    }

    // When attribution was ambiguous, a negative verdict is unreliable (a
    // different attribution might have succeeded); downgrade it.
    let fail = |reason: String| {
        if ambiguous {
            Verdict::Unknown {
                reason: format!("(after ambiguous completion attribution) {reason}"),
            }
        } else {
            Verdict::NotXAble { reason }
        }
    };

    // --- Every group must correspond to a declared request, directly or
    // as a round-stamped transaction of a declared undoable request
    // (§5.4: the round number is part of the action's parameters). ---
    let is_declared = |key: &GroupKey| -> bool {
        if seen_keys.contains(key) {
            return true;
        }
        if !key.0.is_undoable() {
            return false;
        }
        match &key.1 {
            Value::Pair(p) if matches!(p.1, Value::Int(_)) => {
                seen_keys.contains(&(key.0.clone(), p.0.clone()))
            }
            _ => false,
        }
    };
    // Undeclared groups are not automatically violations: a group that
    // reduces to Λ (say, a spurious cancellation that cancelled nothing) is
    // invisible to the reduction target. They are collected here and
    // checked for erasability below.
    let undeclared: Vec<GroupKey> = groups
        .keys()
        .filter(|k| !is_declared(k))
        .cloned()
        .collect();

    // The round-stamped groups of an undoable request key.
    let stamped_groups = |base: &ActionName, input: &Value| -> Vec<(GroupKey, Vec<usize>)> {
        groups
            .iter()
            .filter(|(k, _)| {
                &k.0 == base
                    && matches!(&k.1, Value::Pair(p)
                        if &p.0 == input && matches!(p.1, Value::Int(_)))
            })
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    };
    // Does a group contain a completed commit (which can never erase)?
    let has_commit_completion = |indices: &[usize]| -> bool {
        indices.iter().any(|&i| {
            matches!(&h[i], crate::event::Event::Complete(a, _) if a.is_commit())
        })
    };
    let erase_group = |indices: &[usize], what: &dyn fmt::Display| -> Option<Verdict> {
        let sub = h.select(indices);
        match search_reduction(&sub, History::is_empty, 0, SearchBudget::small()) {
            SearchResult::Reached(_) => None,
            SearchResult::Exhausted => Some(Verdict::NotXAble {
                reason: format!("{what} left events that do not erase"),
            }),
            SearchResult::BudgetExceeded => Some(Verdict::Unknown {
                reason: format!("per-group search budget exceeded erasing {what}"),
            }),
        }
    };

    // --- Decide each group. ---
    let mut outputs: Vec<Value> = Vec::with_capacity(ops.len());
    let mut anchors: Vec<usize> = Vec::with_capacity(ops.len());
    for ((action, input), key) in ops.iter().zip(op_keys.iter()) {
        let plain = groups.get(key);
        let stamped = if action.is_undoable_base() {
            stamped_groups(action.base_name(), input)
        } else {
            Vec::new()
        };
        let (exec_indices, exec_input): (Vec<usize>, Value) = match (plain, stamped.is_empty()) {
            (Some(_), false) => {
                return Verdict::Unknown {
                    reason: format!(
                        "request ({action}, {input}) has both plain and round-stamped events"
                    ),
                };
            }
            (Some(indices), true) => (indices.clone(), input.clone()),
            (None, true) => {
                return fail(format!("request ({action}, {input}) was never executed"));
            }
            (None, false) => {
                // Round-stamped transactions: exactly one round commits and
                // must reduce to a failure-free execution; every other round
                // must erase (cancelled rounds).
                let committed: Vec<&(GroupKey, Vec<usize>)> = stamped
                    .iter()
                    .filter(|(_, indices)| has_commit_completion(indices))
                    .collect();
                if committed.len() != 1 {
                    return fail(format!(
                        "request ({action}, {input}) committed in {} rounds (want exactly 1)",
                        committed.len()
                    ));
                }
                let (ckey, cindices) = committed[0];
                for (okey, oindices) in &stamped {
                    if okey == ckey {
                        continue;
                    }
                    let what = format!("cancelled round {} of ({action}, {input})", okey.1);
                    if let Some(v) = erase_group(oindices, &what) {
                        return match v {
                            Verdict::NotXAble { reason } => fail(reason),
                            other => other,
                        };
                    }
                }
                (cindices.clone(), ckey.1.clone())
            }
        };
        let sub = h.select(&exec_indices);
        let min_len = if action.is_undoable_base() { 4 } else { 2 };
        let goal = |cand: &History| failure_free_output(action, &exec_input, cand).is_some();
        match search_reduction(&sub, goal, min_len, SearchBudget::small()) {
            SearchResult::Reached(witness) => {
                let ov = failure_free_output(action, &exec_input, &witness)
                    .expect("goal predicate guarantees failure-free shape");
                outputs.push(ov);
            }
            SearchResult::Exhausted => {
                return fail(format!(
                    "events of request ({action}, {input}) do not reduce to a failure-free execution"
                ));
            }
            SearchResult::BudgetExceeded => {
                return Verdict::Unknown {
                    reason: format!(
                        "per-group search budget exceeded for request ({action}, {input})"
                    ),
                };
            }
        }
        // The request's *effect anchor*: the first completion of the base
        // action within the surviving execution — the moment its
        // side-effect became observable.
        let anchor = exec_indices
            .iter()
            .copied()
            .find(|&i| matches!(&h[i], crate::event::Event::Complete(a, _) if matches!(a, ActionId::Base(_))))
            .unwrap_or(exec_indices[0]);
        anchors.push(anchor);
    }

    for (action, input) in erasable {
        let key = key_of(action, input);
        debug_assert!(erasable_keys.contains(&key));
        let mut all_groups: Vec<Vec<usize>> = Vec::new();
        if let Some(indices) = groups.get(&key) {
            all_groups.push(indices.clone());
        }
        if action.is_undoable_base() {
            for (_, indices) in stamped_groups(action.base_name(), input) {
                all_groups.push(indices);
            }
        }
        for indices in all_groups {
            let what = format!("abandoned request ({action}, {input})");
            if let Some(v) = erase_group(&indices, &what) {
                return match v {
                    Verdict::NotXAble { reason } => fail(reason),
                    other => other,
                };
            }
        }
    }

    for key in &undeclared {
        let indices = groups.get(key).expect("collected from groups");
        let what = format!("undeclared request {}/{}", key.0, key.1);
        if let Some(v) = erase_group(indices, &what) {
            return match v {
                Verdict::NotXAble { reason } => fail(reason),
                other => other,
            };
        }
    }

    // --- Cross-request ordering: effects in submission order. ---
    // The paper's multi-request criterion (reduction to the ordered
    // concatenation of failure-free histories) implicitly assumes the
    // system quiesces between requests: rules 18/20 always keep the
    // *latest* duplicate, so a harmless trailing duplicate (a slow
    // replica's deduplicated re-execution or help-commit landing after the
    // next request started) would make the ordered target unreachable even
    // though every effect happened exactly once and in order. We therefore
    // check the per-request criterion plus *effect order*: each group's
    // first surviving completion — the instant its side-effect became
    // observable — must follow submission order. On histories without
    // trailing duplicates this coincides with the strict criterion (blocks
    // then compact in order); with them, it is the faithful reading of
    // "appears to be executed exactly-once, in order".
    for w in anchors.windows(2) {
        if w[0] >= w[1] {
            return fail("request effects occur out of submission order".to_owned());
        }
    }

    Verdict::XAble { outputs }
}

/// The R3 obligation (§4) for a sequence of client requests: the server-side
/// history must be x-able with respect to `R₁…Rₙ` *or* `R₁…Rₙ₋₁` (the last
/// request may have been abandoned if the client failed before retrying).
///
/// Tries the full sequence first, then the prefix with the last request
/// erasable. [`Verdict::Unknown`] propagates only if neither attempt gives a
/// definite positive.
pub fn check_request_sequence(h: &History, requests: &[Request]) -> Verdict {
    let ops: Vec<(ActionId, Value)> = requests
        .iter()
        .map(|r| (r.action().clone(), r.input().clone()))
        .collect();
    let full = check(h, &ops, &[]);
    if full.is_xable() {
        return full;
    }
    if ops.is_empty() {
        return full;
    }
    let (last, prefix) = ops.split_last().expect("non-empty checked");
    let partial = check(h, prefix, std::slice::from_ref(last));
    if partial.is_xable() {
        return partial;
    }
    // Prefer a definite negative; otherwise report the more informative
    // indefinite answer.
    match (&full, &partial) {
        (Verdict::NotXAble { .. }, Verdict::NotXAble { .. }) => full,
        (Verdict::Unknown { .. }, _) => full,
        (_, Verdict::Unknown { .. }) => partial,
        _ => full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;
    use crate::event::Event;
    use crate::failure_free::eventsof;

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn undo(name: &str) -> ActionId {
        ActionId::base(ActionName::undoable(name))
    }

    fn s(a: &ActionId, v: i64) -> Event {
        Event::start(a.clone(), Value::from(v))
    }

    fn c(a: &ActionId, v: i64) -> Event {
        Event::complete(a.clone(), Value::from(v))
    }

    fn cnil(a: &ActionId) -> Event {
        Event::complete(a.clone(), Value::Nil)
    }

    #[test]
    fn accepts_failure_free_single_request() {
        let a = idem("a");
        let h = eventsof(&a, &Value::from(1), &Value::from(5));
        let v = check(&h, &[(a, Value::from(1))], &[]);
        assert_eq!(
            v,
            Verdict::XAble {
                outputs: vec![Value::from(5)]
            }
        );
    }

    #[test]
    fn accepts_retried_idempotent_request() {
        let a = idem("a");
        let h: History = [s(&a, 1), s(&a, 1), c(&a, 5), s(&a, 1), c(&a, 5)]
            .into_iter()
            .collect();
        assert!(check(&h, &[(a, Value::from(1))], &[]).is_xable());
    }

    #[test]
    fn rejects_disagreeing_outputs() {
        let a = idem("a");
        let h: History = [s(&a, 1), c(&a, 5), s(&a, 1), c(&a, 6)].into_iter().collect();
        assert!(check(&h, &[(a, Value::from(1))], &[]).is_not_xable());
    }

    #[test]
    fn rejects_missing_request() {
        let a = idem("a");
        let v = check(&History::empty(), &[(a, Value::from(1))], &[]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn rejects_undeclared_events() {
        let a = idem("a");
        let b = idem("b");
        let h = eventsof(&a, &Value::from(1), &Value::from(5))
            .concat(&eventsof(&b, &Value::from(2), &Value::from(6)));
        let v = check(&h, &[(a, Value::from(1))], &[]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn rejects_completion_without_start() {
        let a = idem("a");
        let h: History = [c(&a, 5)].into_iter().collect();
        let v = check(&h, &[(a, Value::from(1))], &[]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn ambiguous_completion_attribution_is_unknown() {
        let a = idem("a");
        // Two different inputs for the same action plus a completion:
        // attribution is ambiguous.
        let h: History = [s(&a, 1), s(&a, 2), c(&a, 5), c(&a, 5)].into_iter().collect();
        let v = check(
            &h,
            &[(a.clone(), Value::from(1)), (a, Value::from(2))],
            &[],
        );
        assert!(matches!(v, Verdict::Unknown { .. }));
    }

    #[test]
    fn undoable_request_with_cancelled_round_is_xable() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let h: History = [
            s(&u, 1),
            s(&cancel, 1),
            cnil(&cancel),
            s(&u, 1),
            c(&u, 7),
            s(&commit, 1),
            cnil(&commit),
        ]
        .into_iter()
        .collect();
        let v = check(&h, &[(u, Value::from(1))], &[]);
        assert_eq!(
            v,
            Verdict::XAble {
                outputs: vec![Value::from(7)]
            }
        );
    }

    #[test]
    fn sequence_in_order_is_xable() {
        let a = idem("a");
        let b = undo("b");
        let h = eventsof(&a, &Value::from(1), &Value::from(5))
            .concat(&eventsof(&b, &Value::from(2), &Value::from(6)));
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        let v = check(&h, &ops, &[]);
        assert_eq!(
            v,
            Verdict::XAble {
                outputs: vec![Value::from(5), Value::from(6)]
            }
        );
    }

    #[test]
    fn sequence_out_of_order_is_rejected() {
        let a = idem("a");
        let b = idem("b");
        let h = eventsof(&b, &Value::from(2), &Value::from(6))
            .concat(&eventsof(&a, &Value::from(1), &Value::from(5)));
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        assert!(check(&h, &ops, &[]).is_not_xable());
    }

    #[test]
    fn overlapping_blocks_with_ordered_effects_are_xable() {
        // S(a) S(b) C(a) C(b): b's compaction moves C(a) in front of its
        // pair, reaching the ordered concatenation — and the effect
        // anchors (C(a) before C(b)) agree.
        let a = idem("a");
        let b = idem("b");
        let h: History = [s(&a, 1), s(&b, 2), c(&a, 5), c(&b, 6)].into_iter().collect();
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        assert!(check(&h, &ops, &[]).is_xable());
    }

    #[test]
    fn trailing_duplicate_after_next_request_is_accepted() {
        // A deduplicated retry of request a lands after b completed; the
        // effects still happened exactly once and in order.
        let a = idem("a");
        let b = idem("b");
        let h: History = [
            s(&a, 1),
            c(&a, 5),
            s(&b, 2),
            c(&b, 6),
            s(&a, 1),
            c(&a, 5),
        ]
        .into_iter()
        .collect();
        let ops = [(a, Value::from(1)), (b, Value::from(2))];
        assert!(check(&h, &ops, &[]).is_xable());
    }

    #[test]
    fn erasable_group_may_vanish() {
        let a = idem("a");
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let h = eventsof(&a, &Value::from(1), &Value::from(5)).concat(&History::from_events(
            vec![s(&u, 2), s(&cancel, 2), cnil(&cancel)],
        ));
        let v = check(&h, &[(a, Value::from(1))], &[(u, Value::from(2))]);
        assert_eq!(
            v,
            Verdict::XAble {
                outputs: vec![Value::from(5)]
            }
        );
    }

    #[test]
    fn erasable_group_that_committed_is_rejected() {
        let a = idem("a");
        let u = undo("u");
        let h = eventsof(&a, &Value::from(1), &Value::from(5))
            .concat(&eventsof(&u, &Value::from(2), &Value::from(7)));
        // u committed, so its events cannot erase.
        let v = check(&h, &[(a, Value::from(1))], &[(u, Value::from(2))]);
        assert!(v.is_not_xable());
    }

    #[test]
    fn request_sequence_helper_tries_prefix() {
        let a = idem("a");
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let requests = vec![
            Request::new(a.clone(), Value::from(1)),
            Request::new(u.clone(), Value::from(2)),
        ];
        // Last request started but was cancelled and never retried: x-able
        // via the R1…Rₙ₋₁ case.
        let h = eventsof(&a, &Value::from(1), &Value::from(5)).concat(&History::from_events(
            vec![s(&u, 2), s(&cancel, 2), cnil(&cancel)],
        ));
        assert!(check_request_sequence(&h, &requests).is_xable());
        // But a *middle* request cannot be abandoned.
        let requests_rev = vec![
            Request::new(u, Value::from(2)),
            Request::new(a, Value::from(1)),
        ];
        let v = check_request_sequence(&h, &requests_rev);
        assert!(!v.is_xable());
    }

    #[test]
    fn empty_request_sequence_accepts_empty_history() {
        assert!(check_request_sequence(&History::empty(), &[]).is_xable());
    }

    #[test]
    fn verdict_display() {
        let v = Verdict::XAble { outputs: vec![] };
        assert!(format!("{v}").contains("x-able"));
        let v = Verdict::NotXAble {
            reason: "boom".into(),
        };
        assert!(format!("{v}").contains("boom"));
    }
}
