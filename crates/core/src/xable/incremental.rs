//! Online x-ability checking: decide R3 *while* the history is being
//! produced.
//!
//! The batch checkers re-partition and re-search a complete history on
//! every call — fine after a run, wasteful during one. The
//! [`IncrementalChecker`] maintains the fast checker's state machine
//! online:
//!
//! * [`push`](IncrementalChecker::push) consumes one event in amortized
//!   O(1): a single streaming attribution step
//!   ([`attribute`](super::fast)) appends the event's index to its
//!   `(base action, input)` group and invalidates only that group's
//!   memoized search outcomes.
//! * [`declare`](IncrementalChecker::declare) appends an expected request
//!   to the R3 sequence (requests arrive over time too: the client submits
//!   `Rᵢ₊₁` only after `Rᵢ` succeeded).
//! * [`verdict`](IncrementalChecker::verdict) answers the R3 question for
//!   the *current prefix* at any moment. Per-group searches are memoized
//!   in the group cells, so a verdict after `k` new events re-searches at
//!   most the groups those `k` events touched; everything else is a memo
//!   hit. The assembly itself is O(#groups).
//!
//! Because push-side attribution and verdict-side assembly are the *same
//! code* the batch [`super::FastChecker`] runs (`attribute` / `decide` in
//! [`super::fast`]), the incremental verdict at any prefix equals
//! `FastChecker::check_requests` on that prefix **by construction**; the
//! property tests in `tests/incremental_props.rs` verify the equality
//! prefix by prefix on random histories.
//!
//! The per-group state carried online and the reason cross-group reduction
//! never occurs (rules 18–20 relate events of one group only) are spelled
//! out in DESIGN.md §4.3.
//!
//! # Examples
//!
//! ```
//! use xability_core::xable::IncrementalChecker;
//! use xability_core::{ActionId, ActionName, Event, Value};
//!
//! let get = ActionId::base(ActionName::idempotent("get"));
//! let mut checker = IncrementalChecker::new();
//! checker.declare(get.clone(), Value::from(1));
//!
//! checker.push(Event::start(get.clone(), Value::from(1)));
//! assert!(!checker.verdict().is_xable()); // started, not yet completed
//!
//! checker.push(Event::complete(get, Value::from(42)));
//! assert!(checker.verdict().is_xable()); // the prefix is now x-able
//! ```

use std::collections::BTreeMap;

use crate::action::{ActionId, Request};
use crate::event::Event;
use crate::history::{History, HistoryRead};
use crate::value::Value;
use crate::xable::checker::{combine_r3_attempts, Verdict};
use crate::xable::fast::{attribute, decide, AttributionState, GroupCell, GroupKey};
use crate::xable::search::SearchBudget;

/// The storage-free core of the online checker: attribution state, the
/// per-group partition with warm memo cells, and the declared request
/// sequence — everything the incremental verdict needs *except* the
/// events themselves.
///
/// An `IncrementalState` is a **cursor** over an event stream that lives
/// elsewhere: [`observe`](IncrementalState::observe) consumes the next
/// event (amortized O(1)) and advances the cursor, and
/// [`verdict_over`](IncrementalState::verdict_over) answers the R3
/// question against any [`HistoryRead`] holding the consumed prefix —
/// typically the shared `TraceStore` a ledger records into, so the
/// monitor never owns a second copy of the trace. The self-contained
/// [`IncrementalChecker`] wraps one of these around an owned [`History`].
///
/// # Examples
///
/// ```
/// use xability_core::xable::IncrementalState;
/// use xability_core::{ActionId, ActionName, Event, History, Value};
///
/// let get = ActionId::base(ActionName::idempotent("get"));
/// let mut shared = History::empty(); // stand-in for a shared store
/// let mut monitor = IncrementalState::new();
/// monitor.declare(get.clone(), Value::from(1));
///
/// for event in [
///     Event::start(get.clone(), Value::from(1)),
///     Event::complete(get, Value::from(42)),
/// ] {
///     monitor.observe(&event); // O(1), no event copy retained
///     shared.push(event);
/// }
/// assert!(monitor.verdict_over(&shared).is_xable());
/// ```
#[derive(Debug)]
pub struct IncrementalState {
    budget: SearchBudget,
    requests: Vec<(ActionId, Value)>,
    attribution: AttributionState,
    ambiguous: bool,
    /// First completion observed without any start of its action — a
    /// permanent violation of the event axioms (§2.2).
    orphan: Option<String>,
    groups: BTreeMap<GroupKey, GroupCell>,
    /// Cursor position: how many events of the underlying stream have
    /// been consumed.
    consumed: usize,
}

impl Default for IncrementalState {
    fn default() -> Self {
        IncrementalState::new()
    }
}

impl IncrementalState {
    /// An empty state with the fast tier's default per-group budget.
    pub fn new() -> Self {
        IncrementalState::with_budget(SearchBudget::small())
    }

    /// An empty state with an explicit per-group search budget.
    pub fn with_budget(budget: SearchBudget) -> Self {
        IncrementalState {
            budget,
            requests: Vec::new(),
            attribution: AttributionState::default(),
            ambiguous: false,
            orphan: None,
            groups: BTreeMap::new(),
            consumed: 0,
        }
    }

    /// Appends an expected request to the declared R3 sequence.
    pub fn declare(&mut self, action: ActionId, input: Value) {
        self.requests.push((action, input));
    }

    /// Appends an expected [`Request`] to the declared R3 sequence.
    pub fn declare_request(&mut self, request: &Request) {
        self.declare(request.action().clone(), request.input().clone());
    }

    /// Consumes the next event of the stream, in amortized O(1): one
    /// attribution step, one group-cell append, one memo invalidation.
    /// The event itself is not retained — only its index joins the
    /// partition.
    pub fn observe(&mut self, event: &Event) {
        let index = self.consumed;
        match attribute(&mut self.attribution, &mut self.ambiguous, event, index) {
            Ok(key) => {
                let is_commit_completion =
                    matches!(event, Event::Complete(a, _) if a.is_commit());
                self.groups
                    .entry(key)
                    .or_default()
                    .push_index(index, is_commit_completion);
            }
            Err(reason) => {
                if self.orphan.is_none() {
                    self.orphan = Some(reason);
                }
            }
        }
        self.consumed += 1;
    }

    /// The cursor position: how many events have been consumed.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Returns `true` if no event has been consumed yet.
    pub fn is_empty(&self) -> bool {
        self.consumed == 0
    }

    /// The declared request sequence.
    pub fn requests(&self) -> &[(ActionId, Value)] {
        &self.requests
    }

    /// The R3 verdict for the consumed prefix, read from `h` — the stream
    /// this state has been observing, which must hold exactly the
    /// [`consumed`](IncrementalState::consumed) events in order.
    ///
    /// Equals `FastChecker::new(budget).check_requests` on that prefix
    /// and [`requests()`](Self::requests), for the budget this state was
    /// built with.
    pub fn verdict_over<H: HistoryRead + ?Sized>(&self, h: &H) -> Verdict {
        debug_assert_eq!(
            h.len(),
            self.consumed,
            "verdict_over: the source must hold exactly the consumed prefix"
        );
        if let Some(reason) = &self.orphan {
            return Verdict::NotXable {
                reason: reason.clone(),
            };
        }
        combine_r3_attempts(&self.requests, |ops, erasable| {
            decide(h, &self.groups, self.ambiguous, self.budget, ops, erasable)
        })
    }

    /// The verdict for an explicit `(ops, erasable)` question over the
    /// consumed prefix held by `h`, bypassing the declared sequence and
    /// the R3 last-request fallback. Equals `FastChecker::new(budget).check`
    /// on that prefix.
    pub fn verdict_for_over<H: HistoryRead + ?Sized>(
        &self,
        h: &H,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
    ) -> Verdict {
        debug_assert_eq!(
            h.len(),
            self.consumed,
            "verdict_for_over: the source must hold exactly the consumed prefix"
        );
        if let Some(reason) = &self.orphan {
            return Verdict::NotXable {
                reason: reason.clone(),
            };
        }
        decide(h, &self.groups, self.ambiguous, self.budget, ops, erasable)
    }
}

/// An online R3 checker: push events as they are observed, declare
/// requests as they are submitted, ask for a verdict at any prefix.
///
/// Equivalent to running [`super::FastChecker`]'s `check_requests` on the
/// full current prefix, but with the partition maintained incrementally
/// and per-group search outcomes cached across pushes.
///
/// This is the self-contained flavour: it owns its copy of the consumed
/// prefix. When the events already live in a shared store (the service
/// ledger's `TraceStore`), use the storage-free [`IncrementalState`]
/// directly and keep a single copy of the trace.
#[derive(Debug, Default)]
pub struct IncrementalChecker {
    state: IncrementalState,
    history: History,
}

impl IncrementalChecker {
    /// An empty checker with the fast tier's default per-group budget.
    pub fn new() -> Self {
        IncrementalChecker::with_budget(SearchBudget::small())
    }

    /// An empty checker with an explicit per-group search budget.
    pub fn with_budget(budget: SearchBudget) -> Self {
        IncrementalChecker {
            state: IncrementalState::with_budget(budget),
            history: History::empty(),
        }
    }

    /// Appends an expected request to the declared R3 sequence.
    pub fn declare(&mut self, action: ActionId, input: Value) {
        self.state.declare(action, input);
    }

    /// Appends an expected [`Request`] to the declared R3 sequence.
    pub fn declare_request(&mut self, request: &Request) {
        self.state.declare_request(request);
    }

    /// Consumes one observed event, in amortized O(1): one attribution
    /// step, one group-cell append, one memo invalidation.
    pub fn push(&mut self, event: Event) {
        self.state.observe(&event);
        self.history.push(event);
    }

    /// Consumes a sequence of observed events.
    pub fn push_all<I: IntoIterator<Item = Event>>(&mut self, events: I) {
        for event in events {
            self.push(event);
        }
    }

    /// The number of events consumed so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Returns `true` if no event has been consumed yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The prefix consumed so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The declared request sequence.
    pub fn requests(&self) -> &[(ActionId, Value)] {
        self.state.requests()
    }

    /// The R3 verdict for the current prefix and declared request
    /// sequence: x-able with respect to `R₁…Rₙ` or `R₁…Rₙ₋₁`.
    ///
    /// Equals `FastChecker::new(budget).check_requests` on
    /// ([`history()`](Self::history), [`requests()`](Self::requests)) for
    /// the budget this checker was built with (the default `FastChecker`
    /// budget when built via [`IncrementalChecker::new`]).
    pub fn verdict(&self) -> Verdict {
        self.state.verdict_over(&self.history)
    }

    /// The verdict for an explicit `(ops, erasable)` question over the
    /// current prefix, bypassing the declared sequence and the R3
    /// last-request fallback. Equals `FastChecker::new(budget).check` on
    /// the prefix, for the budget this checker was built with.
    pub fn verdict_for(
        &self,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
    ) -> Verdict {
        self.state.verdict_for_over(&self.history, ops, erasable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;
    use crate::xable::checker::{Checker, FastChecker};

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn undo(name: &str) -> ActionId {
        ActionId::base(ActionName::undoable(name))
    }

    fn s(a: &ActionId, v: i64) -> Event {
        Event::start(a.clone(), Value::from(v))
    }

    fn c(a: &ActionId, v: i64) -> Event {
        Event::complete(a.clone(), Value::from(v))
    }

    fn cnil(a: &ActionId) -> Event {
        Event::complete(a.clone(), Value::Nil)
    }

    /// Batch verdict over the checker's own prefix, for agreement checks.
    fn batch(inc: &IncrementalChecker) -> Verdict {
        let requests: Vec<Request> = inc
            .requests()
            .iter()
            .map(|(a, iv)| Request::new(a.clone(), iv.clone()))
            .collect();
        FastChecker::default().check_requests(inc.history(), &requests)
    }

    #[test]
    fn empty_checker_with_no_requests_is_xable() {
        let inc = IncrementalChecker::new();
        assert!(inc.is_empty());
        assert!(inc.verdict().is_xable());
    }

    #[test]
    fn verdict_evolves_across_a_retried_request() {
        let a = idem("a");
        let ops = [(a.clone(), Value::from(1))];
        let mut inc = IncrementalChecker::new();
        inc.declare(a.clone(), Value::from(1));
        // Strictly (no abandonment fallback), an unexecuted request is not
        // x-able; under R3 the last request may always be abandoned.
        assert!(!inc.verdict_for(&ops, &[]).is_xable());
        assert!(inc.verdict().is_xable(), "R3 allows an unsubmitted last request");

        inc.push(s(&a, 1));
        assert!(!inc.verdict_for(&ops, &[]).is_xable(), "started, not completed");

        inc.push(s(&a, 1));
        inc.push(c(&a, 5));
        let v = inc.verdict();
        assert!(v.is_xable(), "{v}");
        assert_eq!(v.outputs(), Some(&[Value::from(5)][..]));

        // A duplicate completion with a *different* output breaks it for
        // good: the group can neither reduce nor erase.
        inc.push(s(&a, 1));
        inc.push(c(&a, 6));
        assert!(!inc.verdict().is_xable());
    }

    #[test]
    fn declared_sequence_supports_last_request_abandonment() {
        let a = idem("a");
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let mut inc = IncrementalChecker::new();
        inc.declare_request(&Request::new(a.clone(), Value::from(1)));
        inc.push(s(&a, 1));
        inc.push(c(&a, 5));
        assert!(inc.verdict().is_xable());

        // Second request starts, gets cancelled, never retried: the R3
        // fallback (last request abandoned) keeps the prefix x-able.
        inc.declare_request(&Request::new(u.clone(), Value::from(2)));
        inc.push(Event::start(u.clone(), Value::from(2)));
        inc.push(Event::start(cancel.clone(), Value::from(2)));
        inc.push(cnil(&cancel));
        let v = inc.verdict();
        assert!(v.is_xable(), "{v}");
        assert_eq!(v, batch(&inc));
    }

    #[test]
    fn orphan_completion_is_permanently_not_xable() {
        let a = idem("a");
        let mut inc = IncrementalChecker::new();
        inc.declare(a.clone(), Value::from(1));
        inc.push(c(&a, 5)); // completion with no start
        assert!(inc.verdict().is_not_xable());
        assert_eq!(inc.verdict(), batch(&inc));
        // Later legitimate events do not cure the axiom violation.
        inc.push(s(&a, 1));
        inc.push(c(&a, 5));
        assert!(inc.verdict().is_not_xable());
        assert_eq!(inc.verdict(), batch(&inc));
    }

    #[test]
    fn agrees_with_batch_at_every_prefix_of_a_protocol_trace() {
        // An undoable request with a cancelled round, then an idempotent
        // request, with a trailing deduplicated retry of the first.
        let u = undo("xfer");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let b = idem("get");
        let events = vec![
            s(&u, 1),
            Event::start(cancel.clone(), Value::from(1)),
            cnil(&cancel),
            s(&u, 1),
            c(&u, 7),
            Event::start(commit.clone(), Value::from(1)),
            cnil(&commit),
            s(&b, 2),
            c(&b, 9),
            s(&b, 2),
            c(&b, 9), // trailing duplicate
        ];
        let mut inc = IncrementalChecker::new();
        inc.declare(u, Value::from(1));
        inc.declare(b, Value::from(2));
        for ev in events {
            inc.push(ev);
            assert_eq!(inc.verdict(), batch(&inc), "prefix {}", inc.len());
        }
        assert!(inc.verdict().is_xable());
    }

    #[test]
    fn verdict_for_matches_fast_check() {
        let a = idem("a");
        let mut inc = IncrementalChecker::new();
        inc.push_all([s(&a, 1), c(&a, 5)]);
        let ops = [(a, Value::from(1))];
        assert_eq!(
            inc.verdict_for(&ops, &[]),
            FastChecker::default().check(inc.history(), &ops, &[])
        );
    }

    #[test]
    fn storage_free_state_agrees_with_owned_checker() {
        // An IncrementalState observing the same stream as an owned
        // IncrementalChecker, with the events living in one shared
        // History, must produce identical verdicts at every prefix.
        let u = undo("xfer");
        let cancel = u.cancel().unwrap();
        let b = idem("get");
        let events = [
            s(&u, 1),
            Event::start(cancel.clone(), Value::from(1)),
            cnil(&cancel),
            s(&b, 2),
            c(&b, 9),
        ];
        let mut shared = History::empty();
        let mut state = IncrementalState::new();
        let mut owned = IncrementalChecker::new();
        for who in [&u, &b] {
            state.declare(who.clone(), Value::from(if *who == u { 1 } else { 2 }));
            owned.declare(who.clone(), Value::from(if *who == u { 1 } else { 2 }));
        }
        assert!(state.is_empty());
        for ev in events {
            state.observe(&ev);
            owned.push(ev.clone());
            shared.push(ev);
            assert_eq!(state.consumed(), shared.len());
            assert_eq!(state.verdict_over(&shared), owned.verdict());
            assert_eq!(state.requests(), owned.requests());
        }
        let ops = [(b.clone(), Value::from(2))];
        let erasable = [(u.clone(), Value::from(1))];
        assert_eq!(
            state.verdict_for_over(&shared, &ops, &erasable),
            owned.verdict_for(&ops, &erasable)
        );
    }

    #[test]
    fn memoization_is_invalidated_by_new_group_events() {
        let a = idem("a");
        let mut inc = IncrementalChecker::new();
        inc.declare(a.clone(), Value::from(1));
        inc.push_all([s(&a, 1), c(&a, 5)]);
        assert!(inc.verdict().is_xable()); // memoizes the group as reduced
        inc.push_all([s(&a, 1), c(&a, 6)]); // disagreeing retry
        assert!(inc.verdict().is_not_xable(), "stale memo would say x-able");
    }
}
