//! Online x-ability checking: decide R3 *while* the history is being
//! produced.
//!
//! The batch checkers re-partition and re-search a complete history on
//! every call — fine after a run, wasteful during one. The
//! [`IncrementalChecker`] maintains the fast checker's state machine
//! online:
//!
//! * [`push`](IncrementalChecker::push) consumes one event in amortized
//!   O(1): a single streaming attribution step (`Engine::observe` in
//!   [`super::fast`]) appends the event's index to its symbol-keyed
//!   `(base action, input)` group, invalidates only that group's memoized
//!   search outcomes, and marks the requests watching the group *dirty*.
//! * [`declare`](IncrementalChecker::declare) appends an expected request
//!   to the R3 sequence (requests arrive over time too: the client submits
//!   `Rᵢ₊₁` only after `Rᵢ` succeeded).
//! * [`verdict`](IncrementalChecker::verdict) answers the R3 question for
//!   the *current prefix* at any moment — in **O(dirty groups)**, not
//!   O(all groups): the checker maintains an aggregate verdict (per-request
//!   decisions, the first failing request, the set of undeclared groups
//!   that fail to erase, and the effect-order violations between adjacent
//!   requests) and a verdict call re-decides only the requests whose
//!   groups were touched since the last call. In steady state — events
//!   arriving for the newest request while earlier requests sit clean —
//!   that is amortized O(1) bookkeeping per verdict plus the cost of
//!   materializing the answer.
//!
//! Because push-side attribution, per-group searches, and the verdict
//! messages are the *same code* the batch [`super::FastChecker`] runs
//! (the engine and message builders in [`super::fast`]), the incremental
//! verdict at any prefix equals `FastChecker::check_requests` on that
//! prefix **by construction**; the property tests in
//! `tests/incremental_props.rs` and `tests/checker_scaling.rs` verify the
//! equality prefix by prefix on random and protocol-shaped histories.
//!
//! The per-group state carried online, the dirty-set/aggregate invariant,
//! and the reason cross-group reduction never occurs (rules 18–20 relate
//! events of one group only) are spelled out in DESIGN.md §4.3.
//!
//! # Examples
//!
//! ```
//! use xability_core::xable::IncrementalChecker;
//! use xability_core::{ActionId, ActionName, Event, Value};
//!
//! let get = ActionId::base(ActionName::idempotent("get"));
//! let mut checker = IncrementalChecker::new();
//! checker.declare(get.clone(), Value::from(1));
//!
//! checker.push(Event::start(get.clone(), Value::from(1)));
//! assert!(!checker.verdict().is_xable()); // started, not yet completed
//!
//! checker.push(Event::complete(get, Value::from(42)));
//! assert!(checker.verdict().is_xable()); // the prefix is now x-able
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use xability_obs::{Counter, Histogram, Obs};

use crate::action::{ActionId, Request};
use crate::event::Event;
use crate::history::{History, HistoryRead};
use crate::value::Value;
use crate::xable::checker::{combine_r3_attempts, Verdict, Witness};
use crate::xable::fast::{
    fail_verdict, msg_committed_rounds, msg_duplicate, msg_erase_budget, msg_exec_budget,
    msg_never_executed, msg_not_base, msg_not_erasing, msg_plain_and_stamped, msg_stuck,
    what_abandoned, what_cancelled_round, what_undeclared, Engine, EraseOutcome, ExecOutcome,
    GroupSym, KeySyms, MSG_OUT_OF_ORDER,
};
use crate::xable::search::SearchBudget;

/// Which declared requests read a group's decision — the fan-out of one
/// dirty group. A group is *plain* for the request whose key equals the
/// group key, and/or a *round-stamped transaction* of the undoable request
/// whose key equals the group's stamped parent; a group watched by neither
/// is undeclared and must erase.
#[derive(Debug, Default, Clone, Copy)]
struct Watchers {
    plain_op: Option<usize>,
    stamped_op: Option<usize>,
}

impl Watchers {
    fn is_undeclared(&self) -> bool {
        self.plain_op.is_none() && self.stamped_op.is_none()
    }
}

/// The cached decision of one declared request.
#[derive(Debug, Default)]
struct OpEntry {
    /// The group whose key equals the request key, if it exists.
    plain: Option<GroupSym>,
    /// The round-stamped transaction groups of this (undoable) request,
    /// in group-symbol (first-seen) order.
    stamped: Vec<GroupSym>,
    /// How many stamped transactions have a commit completion.
    committed: usize,
    /// The memoized decision (recomputed only while the request is dirty).
    state: OpState,
}

#[derive(Debug, Default, Clone)]
enum OpState {
    /// Not yet computed (freshly declared).
    #[default]
    Pending,
    /// The request's events reduce to a failure-free execution.
    Ok { output: Value, anchor: usize },
    /// The request fails (or is undecidable) for this reason; the message
    /// is materialized lazily so clean verdicts never format strings.
    Bad(OpFail),
}

impl OpState {
    fn anchor(&self) -> Option<usize> {
        match self {
            OpState::Ok { anchor, .. } => Some(*anchor),
            _ => None,
        }
    }
}

/// Why a request's decision is not `Ok` — enough to regenerate the exact
/// message the batch assembly would produce.
#[derive(Debug, Clone, Copy)]
enum OpFail {
    NeverExecuted,
    /// Both plain and round-stamped events exist (→ `Unknown`).
    PlainAndStamped,
    /// `n != 1` rounds committed.
    CommittedRounds(usize),
    /// A cancelled round's events do not erase.
    RoundNotErasing(GroupSym),
    /// A cancelled round's erase search ran out of budget (→ `Unknown`).
    RoundEraseBudget(GroupSym),
    /// The executing group does not reduce to a failure-free execution.
    Stuck,
    /// The executing group's search ran out of budget (→ `Unknown`).
    ExecBudget,
}

/// How an undeclared group fails to erase.
#[derive(Debug, Clone, Copy)]
enum EraseFail {
    Stuck,
    Budget,
}

/// The maintained aggregate behind O(dirty) verdicts. The invariant — the
/// reason a verdict may skip every clean request — is:
///
/// > For every request not in `dirty_ops`, `entries[op].state` equals what
/// > the batch assembly would compute for that request on the current
/// > prefix; for every group not in `dirty_undeclared` that no request
/// > watches, `undeclared_fail` records exactly whether (and how) its
/// > erase search fails; and `order_bad` holds exactly the adjacent
/// > request pairs whose effect anchors are out of submission order.
///
/// Pushing an event touches one group and therefore dirties at most two
/// requests (its plain watcher and its stamped watcher) or one undeclared
/// group; a verdict drains the dirty sets and re-decides only those.
#[derive(Debug, Default)]
struct Aggregate {
    /// Per-request interned key (`None` for a non-base declared action).
    op_keys: Vec<Option<KeySyms>>,
    /// Request key → request index (first declarer; duplicates trip
    /// `declare_invalid`).
    op_lookup: HashMap<KeySyms, usize>,
    /// Undoable request key → request index, for adopting round-stamped
    /// transaction groups as they appear.
    stamped_parents: HashMap<KeySyms, usize>,
    /// Every round-stamped-shaped group per parent key (declared or not),
    /// in group-symbol order — so a late-declared undoable request adopts
    /// its existing rounds.
    stamped_children: HashMap<KeySyms, Vec<GroupSym>>,
    /// Per-request cached decisions, index-aligned with the declared
    /// sequence.
    entries: Vec<OpEntry>,
    /// Sticky first declaration-validation failure (non-base action or
    /// duplicate identity) — mirrors the batch op-list validation.
    declare_invalid: Option<String>,
    /// Per-group watcher fan-out, index-aligned with the engine's groups.
    watchers: Vec<Watchers>,
    /// Requests whose groups changed since the last verdict.
    dirty_ops: BTreeSet<usize>,
    /// Unwatched groups that changed since the last verdict.
    dirty_undeclared: BTreeSet<GroupSym>,
    /// Unwatched groups currently failing to erase (ascending symbol order
    /// = the batch assembly's iteration order).
    undeclared_fail: BTreeMap<GroupSym, EraseFail>,
    /// Requests whose state is `Bad` (ascending = first failure wins, as
    /// in the batch per-request loop).
    failing_ops: BTreeSet<usize>,
    /// Indices `i ≥ 1` where both anchors are defined and
    /// `anchor[i-1] >= anchor[i]`.
    order_bad: BTreeSet<usize>,
}

impl Aggregate {
    /// Records what one observed event did to the partition. The record
    /// is self-contained (key and stamped parent ride along), so tracking
    /// borrows nothing from the engine — which is what lets the batch
    /// path stream records out of `Engine::observe_batch` while the
    /// engine is mutably borrowed.
    fn track(&mut self, obs: crate::xable::fast::Observed) {
        let sym = obs.group;
        if obs.created {
            let mut w = Watchers::default();
            let key = obs.key;
            if let Some(&op) = self.op_lookup.get(&key) {
                w.plain_op = Some(op);
                self.entries[op].plain = Some(sym);
            }
            if let Some(parent) = obs.stamped_parent {
                self.stamped_children.entry(parent).or_default().push(sym);
                if let Some(&op) = self.stamped_parents.get(&parent) {
                    w.stamped_op = Some(op);
                    // New symbols are assigned in ascending order, so the
                    // per-request round list stays sorted.
                    self.entries[op].stamped.push(sym);
                }
            }
            self.watchers.push(w);
        }
        let w = self.watchers[sym as usize];
        if obs.commit_completed {
            if let Some(op) = w.stamped_op {
                self.entries[op].committed += 1;
            }
        }
        if let Some(op) = w.plain_op {
            self.dirty_ops.insert(op);
        }
        if let Some(op) = w.stamped_op {
            self.dirty_ops.insert(op);
        }
        if w.is_undeclared() {
            self.dirty_undeclared.insert(sym);
        }
    }

    /// Re-derives the order-violation membership of the adjacent pairs
    /// around `op` after its anchor may have changed.
    fn refresh_order_pairs(&mut self, op: usize) {
        for i in [op, op + 1] {
            if i == 0 || i >= self.entries.len() {
                continue;
            }
            let bad = match (
                self.entries[i - 1].state.anchor(),
                self.entries[i].state.anchor(),
            ) {
                (Some(prev), Some(next)) => prev >= next,
                _ => false,
            };
            if bad {
                self.order_bad.insert(i);
            } else {
                self.order_bad.remove(&i);
            }
        }
    }
}

/// One partition worker's decision for a single group — an installable
/// memo entry for [`IncrementalState::absorb_primes`]. Opaque: carries
/// the group symbol, the group's event count when the outcomes were
/// computed (the staleness guard), and the search outcomes themselves.
#[derive(Debug, Clone)]
pub struct GroupPrime {
    sym: GroupSym,
    /// The group's event count at compute time: absorbing is refused when
    /// the receiving cell has grown past it.
    upto: usize,
    exec: Option<ExecOutcome>,
    erase: Option<EraseOutcome>,
}

/// The storage-free core of the online checker: the symbol-keyed engine
/// (attribution state plus per-group partition with warm memo cells), the
/// declared request sequence, and the dirty-tracked aggregate verdict —
/// everything the incremental verdict needs *except* the events
/// themselves.
///
/// An `IncrementalState` is a **cursor** over an event stream that lives
/// elsewhere: [`observe`](IncrementalState::observe) consumes the next
/// event (amortized O(1)) and advances the cursor, and
/// [`verdict_over`](IncrementalState::verdict_over) answers the R3
/// question against any [`HistoryRead`] holding the consumed prefix —
/// typically the shared `TraceStore` a ledger records into, so the
/// monitor never owns a second copy of the trace. The self-contained
/// [`IncrementalChecker`] wraps one of these around an owned [`History`].
///
/// # Examples
///
/// ```
/// use xability_core::xable::IncrementalState;
/// use xability_core::{ActionId, ActionName, Event, History, Value};
///
/// let get = ActionId::base(ActionName::idempotent("get"));
/// let mut shared = History::empty(); // stand-in for a shared store
/// let mut monitor = IncrementalState::new();
/// monitor.declare(get.clone(), Value::from(1));
///
/// for event in [
///     Event::start(get.clone(), Value::from(1)),
///     Event::complete(get, Value::from(42)),
/// ] {
///     monitor.observe(&event); // O(1), no event copy retained
///     shared.push(event);
/// }
/// assert!(monitor.verdict_over(&shared).is_xable());
/// ```
#[derive(Debug)]
pub struct IncrementalState {
    budget: SearchBudget,
    requests: Vec<(ActionId, Value)>,
    engine: Engine,
    /// First completion observed without any start of its action — a
    /// permanent violation of the event axioms (§2.2).
    orphan: Option<String>,
    /// Cursor position: how many events of the underlying stream have
    /// been consumed.
    consumed: usize,
    /// Interior mutability: a verdict drains the dirty sets and refreshes
    /// the cached per-request decisions, which is logically a cache fill
    /// behind the `&self` query API.
    agg: RefCell<Aggregate>,
    obs: CheckerObs,
}

/// Checker-engine instruments: inert by default (every handle is a noop),
/// bound to a shared registry by [`IncrementalState::attach_obs`]. All
/// handles are atomics, so recording works through the `&self` verdict
/// path.
#[derive(Debug, Default)]
struct CheckerObs {
    /// Dirty undeclared-group set size at each refresh.
    dirty_undeclared: Histogram,
    /// Dirty request set size at each refresh.
    dirty_ops: Histogram,
    /// Refresh passes (one per verdict/decision query).
    refreshes: Counter,
    /// Verdict assemblies.
    verdicts: Counter,
    /// Fast-tier budget exhaustions while erasing undeclared groups — each
    /// is a question the fast tier gave up on (the answer a batch caller
    /// would escalate to the search tier).
    erase_budget_escalations: Counter,
    /// Per-request decisions lost to a search-budget exhaustion (exec or
    /// cancelled-round erase).
    op_budget_escalations: Counter,
}

impl CheckerObs {
    fn bind(obs: &Obs) -> Self {
        CheckerObs {
            dirty_undeclared: obs.histogram("checker.dirty_undeclared"),
            dirty_ops: obs.histogram("checker.dirty_ops"),
            refreshes: obs.counter("checker.refreshes"),
            verdicts: obs.counter("checker.verdicts"),
            erase_budget_escalations: obs.counter("checker.erase_budget_escalations"),
            op_budget_escalations: obs.counter("checker.op_budget_escalations"),
        }
    }
}

impl Default for IncrementalState {
    fn default() -> Self {
        IncrementalState::new()
    }
}

impl IncrementalState {
    /// An empty state with the fast tier's default per-group budget.
    pub fn new() -> Self {
        IncrementalState::with_budget(SearchBudget::small())
    }

    /// An empty state with an explicit per-group search budget.
    pub fn with_budget(budget: SearchBudget) -> Self {
        IncrementalState {
            budget,
            requests: Vec::new(),
            engine: Engine::default(),
            orphan: None,
            consumed: 0,
            agg: RefCell::new(Aggregate::default()),
            obs: CheckerObs::default(),
        }
    }

    /// Binds this checker's instruments (dirty-set size histograms,
    /// refresh/verdict counters, budget-escalation counters) to a shared
    /// metrics registry. Inert (noop handles) until called.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = CheckerObs::bind(obs);
    }

    /// Appends an expected request to the declared R3 sequence, wiring
    /// any groups that already belong to it (a request may be declared
    /// after its first events were observed) into the aggregate.
    pub fn declare(&mut self, action: ActionId, input: Value) {
        let agg = self.agg.get_mut();
        let idx = agg.entries.len();
        agg.entries.push(OpEntry::default());
        agg.dirty_ops.insert(idx);
        if !matches!(action, ActionId::Base(_)) {
            if agg.declare_invalid.is_none() {
                agg.declare_invalid = Some(msg_not_base(&action));
            }
            agg.op_keys.push(None);
            self.requests.push((action, input));
            return;
        }
        let key = (
            self.engine.interner_mut().intern_action(action.base_name()),
            self.engine.interner_mut().intern_value(&input),
        );
        agg.op_keys.push(Some(key));
        if agg.op_lookup.contains_key(&key) {
            if agg.declare_invalid.is_none() {
                agg.declare_invalid = Some(msg_duplicate(action.base_name(), &input));
            }
            self.requests.push((action, input));
            return;
        }
        agg.op_lookup.insert(key, idx);
        if let Some(sym) = self.engine.group_with_key(key) {
            agg.entries[idx].plain = Some(sym);
            agg.watchers[sym as usize].plain_op = Some(idx);
            agg.dirty_undeclared.remove(&sym);
            agg.undeclared_fail.remove(&sym);
        }
        if action.is_undoable_base() {
            agg.stamped_parents.insert(key, idx);
            if let Some(children) = agg.stamped_children.get(&key).cloned() {
                for sym in children {
                    agg.watchers[sym as usize].stamped_op = Some(idx);
                    agg.entries[idx].stamped.push(sym);
                    if self.engine.cells[sym as usize].has_commit_completion {
                        agg.entries[idx].committed += 1;
                    }
                    agg.dirty_undeclared.remove(&sym);
                    agg.undeclared_fail.remove(&sym);
                }
            }
        }
        self.requests.push((action, input));
    }

    /// Appends an expected [`Request`] to the declared R3 sequence.
    pub fn declare_request(&mut self, request: &Request) {
        self.declare(request.action().clone(), request.input().clone());
    }

    /// Consumes the next event of the stream, in amortized O(1): one
    /// attribution step, one group-cell append, one memo invalidation,
    /// one dirty mark. The event itself is not retained — only its index
    /// joins the partition.
    pub fn observe(&mut self, event: &Event) {
        let index = self.consumed;
        match self.engine.observe(event, index) {
            Ok(obs) => self.agg.get_mut().track(obs),
            Err(reason) => {
                if self.orphan.is_none() {
                    self.orphan = Some(reason);
                }
            }
        }
        self.consumed += 1;
    }

    /// Consumes a slice of events in one pass — the batch counterpart of
    /// [`IncrementalState::observe`], byte-identical in every later
    /// verdict (pinned by the `observe_batch` proptests).
    ///
    /// The whole slice runs through [`Engine::observe_batch`]'s
    /// batch-local symbol/group memos (one hash probe per *distinct*
    /// name/input/group in the batch instead of several per event), the
    /// aggregate is borrowed once per batch instead of once per event,
    /// and consecutive events of one group collapse to a single
    /// dirty-mark (re-marking a dirty group is a no-op, so skipping the
    /// repeat is free and exact).
    pub fn observe_batch(&mut self, events: &[Event]) {
        let agg = self.agg.get_mut();
        let orphan = &mut self.orphan;
        let mut last_group: Option<crate::xable::fast::GroupSym> = None;
        self.engine
            .observe_batch(events, self.consumed, &mut |result| match result {
                Ok(obs) => {
                    // Group creation and commit completion mutate watcher
                    // and committed-count state; a repeat event of the
                    // group just tracked would only re-insert the same
                    // dirty marks.
                    if obs.created || obs.commit_completed || last_group != Some(obs.group) {
                        agg.track(obs);
                        last_group = Some(obs.group);
                    }
                }
                Err(reason) => {
                    if orphan.is_none() {
                        *orphan = Some(reason);
                    }
                }
            });
        self.consumed += events.len();
    }

    /// Decides every changed group of one symbol-mod partition and
    /// returns the outcomes as installable [`GroupPrime`]s — the decide
    /// half of the pipelined monitor (DESIGN.md §12).
    ///
    /// `exported` is the caller-owned export cursor: per-group event
    /// counts at the previous export, grown on demand. A group is decided
    /// when it belongs to the `shard`-of-`shards` partition (`sym % shards
    /// == shard` — the same partition as `FastChecker::check_sharded`) and
    /// its event count moved past the cursor. Watched groups get an exec
    /// outcome; every changed group gets an erase outcome (a superset of
    /// what a verdict can ask — cancelled rounds, undeclared groups, and
    /// the abandoned-last-request fallback all erase). `h` must hold the
    /// consumed prefix; it may extend past it (the searches gather only
    /// the indices the groups hold, all inside the prefix).
    pub fn export_primes<H: HistoryRead + ?Sized>(
        &self,
        h: &H,
        shard: usize,
        shards: usize,
        exported: &mut Vec<usize>,
    ) -> Vec<GroupPrime> {
        debug_assert!(shards > 0 && shard < shards, "export_primes: bad shard");
        let agg = self.agg.borrow();
        let count = self.engine.group_count();
        if exported.len() < count {
            exported.resize(count, 0);
        }
        let mut primes = Vec::new();
        let mut sym = shard;
        while sym < count {
            let cell = &self.engine.cells[sym];
            let len = cell.indices.len();
            if len > exported[sym] {
                exported[sym] = len;
                let w = agg.watchers[sym];
                let exec = if w.plain_op.is_some() || w.stamped_op.is_some() {
                    let (name, input) = self.engine.resolve(sym as GroupSym);
                    Some(cell.exec(h, &name, &input, self.budget))
                } else {
                    None
                };
                let erase = Some(cell.erases(h, self.budget));
                primes.push(GroupPrime {
                    sym: sym as GroupSym,
                    upto: len,
                    exec,
                    erase,
                });
            }
            sym += shards;
        }
        primes
    }

    /// Installs group decisions computed by a partition worker (another
    /// `IncrementalState` cursor over the **same stream**, with the
    /// **same budget**) into this state's memo cells. Returns how many
    /// primes were installed; a prime whose group gained events since it
    /// was computed is stale and skipped — the memo is recomputed on
    /// demand instead.
    ///
    /// Priming is pure cache-warming: the memoized searches are pure
    /// functions of the group's event indices (equal counts over one
    /// stream ⇒ equal index sets) and the budget, so verdicts after an
    /// absorb are byte-identical to verdicts without it.
    pub fn absorb_primes(&self, primes: &[GroupPrime]) -> usize {
        let mut installed = 0;
        for prime in primes {
            let Some(cell) = self.engine.cells.get(prime.sym as usize) else {
                continue;
            };
            if cell.indices.len() != prime.upto {
                continue;
            }
            if let Some(exec) = &prime.exec {
                cell.prime_exec(exec.clone());
            }
            if let Some(erase) = prime.erase {
                cell.prime_erase(erase);
            }
            installed += 1;
        }
        installed
    }

    /// The cursor position: how many events have been consumed.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Returns `true` if no event has been consumed yet.
    pub fn is_empty(&self) -> bool {
        self.consumed == 0
    }

    /// The declared request sequence.
    pub fn requests(&self) -> &[(ActionId, Value)] {
        &self.requests
    }

    /// Drains the dirty sets: re-runs the erase check of each touched
    /// undeclared group and the decision of each touched request, all
    /// through the warm memo cells. O(dirty), independent of the total
    /// group count.
    fn refresh<H: HistoryRead + ?Sized>(&self, h: &H) {
        let mut agg = self.agg.borrow_mut();
        let agg = &mut *agg;
        self.obs.refreshes.inc();
        self.obs
            .dirty_undeclared
            .record(agg.dirty_undeclared.len() as u64);
        self.obs.dirty_ops.record(agg.dirty_ops.len() as u64);
        while let Some(sym) = agg.dirty_undeclared.pop_first() {
            match self.engine.cells[sym as usize].erases(h, self.budget) {
                EraseOutcome::Erases => {
                    agg.undeclared_fail.remove(&sym);
                }
                EraseOutcome::Stuck => {
                    agg.undeclared_fail.insert(sym, EraseFail::Stuck);
                }
                EraseOutcome::Budget => {
                    self.obs.erase_budget_escalations.inc();
                    agg.undeclared_fail.insert(sym, EraseFail::Budget);
                }
            }
        }
        while let Some(op) = agg.dirty_ops.pop_first() {
            let state = self.compute_op_state(&agg.entries[op], h);
            if matches!(
                state,
                OpState::Bad(OpFail::ExecBudget) | OpState::Bad(OpFail::RoundEraseBudget(_))
            ) {
                self.obs.op_budget_escalations.inc();
            }
            let failing = matches!(state, OpState::Bad(_));
            agg.entries[op].state = state;
            if failing {
                agg.failing_ops.insert(op);
            } else {
                agg.failing_ops.remove(&op);
            }
            agg.refresh_order_pairs(op);
        }
    }

    /// One request's decision — the same case analysis, in the same
    /// order, as the batch assembly's per-request loop.
    fn compute_op_state<H: HistoryRead + ?Sized>(&self, entry: &OpEntry, h: &H) -> OpState {
        let exec_sym = match (entry.plain, entry.stamped.is_empty()) {
            (Some(_), false) => return OpState::Bad(OpFail::PlainAndStamped),
            (Some(sym), true) => sym,
            (None, true) => return OpState::Bad(OpFail::NeverExecuted),
            (None, false) => {
                // Round-stamped transactions: exactly one round commits
                // and must reduce to a failure-free execution; every
                // other round must erase (cancelled rounds).
                if entry.committed != 1 {
                    return OpState::Bad(OpFail::CommittedRounds(entry.committed));
                }
                let committed = entry
                    .stamped
                    .iter()
                    .copied()
                    .find(|&sym| self.engine.cells[sym as usize].has_commit_completion)
                    .expect("committed count is 1");
                for &sym in &entry.stamped {
                    if sym == committed {
                        continue;
                    }
                    match self.engine.cells[sym as usize].erases(h, self.budget) {
                        EraseOutcome::Erases => {}
                        EraseOutcome::Stuck => {
                            return OpState::Bad(OpFail::RoundNotErasing(sym));
                        }
                        EraseOutcome::Budget => {
                            return OpState::Bad(OpFail::RoundEraseBudget(sym));
                        }
                    }
                }
                committed
            }
        };
        let (name, input) = self.engine.resolve(exec_sym);
        match self.engine.cells[exec_sym as usize].exec(h, &name, &input, self.budget) {
            ExecOutcome::Reduced { output, anchor } => OpState::Ok { output, anchor },
            ExecOutcome::Stuck => OpState::Bad(OpFail::Stuck),
            ExecOutcome::Budget => OpState::Bad(OpFail::ExecBudget),
        }
    }

    /// Materializes the exact batch-assembly message for a failing
    /// request.
    fn op_fail_verdict(&self, agg: &Aggregate, op: usize) -> Verdict {
        let (action, input) = &self.requests[op];
        let fail = |reason: String| fail_verdict(self.engine.ambiguous, reason);
        let round_of = |sym: GroupSym| {
            let (_, vs) = self.engine.key(sym);
            self.engine.interner().value(vs)
        };
        match &agg.entries[op].state {
            OpState::Bad(OpFail::NeverExecuted) => fail(msg_never_executed(action, input)),
            OpState::Bad(OpFail::PlainAndStamped) => Verdict::Unknown {
                reason: msg_plain_and_stamped(action, input),
            },
            OpState::Bad(OpFail::CommittedRounds(rounds)) => {
                fail(msg_committed_rounds(action, input, *rounds))
            }
            OpState::Bad(OpFail::RoundNotErasing(sym)) => fail(msg_not_erasing(
                &what_cancelled_round(round_of(*sym), action, input),
            )),
            OpState::Bad(OpFail::RoundEraseBudget(sym)) => Verdict::Unknown {
                reason: msg_erase_budget(&what_cancelled_round(round_of(*sym), action, input)),
            },
            OpState::Bad(OpFail::Stuck) => fail(msg_stuck(action, input)),
            OpState::Bad(OpFail::ExecBudget) => Verdict::Unknown {
                reason: msg_exec_budget(action, input),
            },
            OpState::Pending | OpState::Ok { .. } => {
                unreachable!("only failing requests are materialized")
            }
        }
    }

    /// Assembles one R3 attempt from the aggregate: the first `ops_len`
    /// requests must execute, and — for the second attempt —
    /// `erasable_last`'s groups must erase instead. Mirrors the batch
    /// assembly's evaluation order exactly: op-list validation, the
    /// per-request loop (first failure wins), the erasable loop, the
    /// undeclared loop, the effect-order check.
    fn assemble<H: HistoryRead + ?Sized>(
        &self,
        agg: &Aggregate,
        h: &H,
        ops_len: usize,
        erasable_last: Option<usize>,
    ) -> Verdict {
        if let Some(reason) = &agg.declare_invalid {
            return Verdict::Unknown {
                reason: reason.clone(),
            };
        }
        let fail = |reason: String| fail_verdict(self.engine.ambiguous, reason);
        if let Some(&op) = agg.failing_ops.range(..ops_len).next() {
            return self.op_fail_verdict(agg, op);
        }
        if let Some(last) = erasable_last {
            let (action, input) = &self.requests[last];
            let entry = &agg.entries[last];
            let what = what_abandoned(action, input);
            for sym in entry.plain.iter().chain(entry.stamped.iter()).copied() {
                match self.engine.cells[sym as usize].erases(h, self.budget) {
                    EraseOutcome::Erases => {}
                    EraseOutcome::Stuck => return fail(msg_not_erasing(&what)),
                    EraseOutcome::Budget => {
                        return Verdict::Unknown {
                            reason: msg_erase_budget(&what),
                        };
                    }
                }
            }
        }
        if let Some((&sym, how)) = agg.undeclared_fail.iter().next() {
            let (ns, vs) = self.engine.key(sym);
            let what = what_undeclared(
                self.engine.interner().action(ns),
                self.engine.interner().value(vs),
            );
            return match how {
                EraseFail::Stuck => fail(msg_not_erasing(&what)),
                EraseFail::Budget => Verdict::Unknown {
                    reason: msg_erase_budget(&what),
                },
            };
        }
        if ops_len > 1 && agg.order_bad.range(1..ops_len).next().is_some() {
            return fail(MSG_OUT_OF_ORDER.to_owned());
        }
        let outputs = agg.entries[..ops_len]
            .iter()
            .map(|entry| match &entry.state {
                OpState::Ok { output, .. } => output.clone(),
                _ => unreachable!("non-Ok requests were handled above"),
            })
            .collect();
        Verdict::Xable {
            witness: Witness::from_outputs(outputs),
        }
    }

    /// The R3 verdict for the consumed prefix, read from `h` — the stream
    /// this state has been observing, which must hold exactly the
    /// [`consumed`](IncrementalState::consumed) events in order.
    ///
    /// Equals `FastChecker::new(budget).check_requests` on that prefix
    /// and [`requests()`](Self::requests), for the budget this state was
    /// built with — but computed in O(groups touched since the last
    /// verdict) instead of O(all groups).
    pub fn verdict_over<H: HistoryRead + ?Sized>(&self, h: &H) -> Verdict {
        debug_assert_eq!(
            h.len(),
            self.consumed,
            "verdict_over: the source must hold exactly the consumed prefix"
        );
        if let Some(reason) = &self.orphan {
            return Verdict::NotXable {
                reason: reason.clone(),
            };
        }
        self.obs.verdicts.inc();
        self.refresh(h);
        let agg = self.agg.borrow();
        combine_r3_attempts(&self.requests, |ops, erasable| {
            if erasable.is_empty() {
                self.assemble(&agg, h, ops.len(), None)
            } else {
                self.assemble(&agg, h, ops.len(), Some(ops.len()))
            }
        })
    }

    /// The verdict for an explicit `(ops, erasable)` question over the
    /// consumed prefix held by `h`, bypassing the declared sequence and
    /// the R3 last-request fallback (and the maintained aggregate — an
    /// ad-hoc question runs the batch assembly over the warm memo cells).
    /// Equals `FastChecker::new(budget).check` on that prefix.
    pub fn verdict_for_over<H: HistoryRead + ?Sized>(
        &self,
        h: &H,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
    ) -> Verdict {
        debug_assert_eq!(
            h.len(),
            self.consumed,
            "verdict_for_over: the source must hold exactly the consumed prefix"
        );
        if let Some(reason) = &self.orphan {
            return Verdict::NotXable {
                reason: reason.clone(),
            };
        }
        crate::xable::fast::decide(h, &self.engine, self.budget, ops, erasable)
    }
}

/// An online R3 checker: push events as they are observed, declare
/// requests as they are submitted, ask for a verdict at any prefix.
///
/// Equivalent to running [`super::FastChecker`]'s `check_requests` on the
/// full current prefix, but with the partition maintained incrementally,
/// per-group search outcomes cached across pushes, and the verdict
/// assembled from a dirty-tracked aggregate (O(dirty groups) per call).
///
/// This is the self-contained flavour: it owns its copy of the consumed
/// prefix. When the events already live in a shared store (the service
/// ledger's `TraceStore`), use the storage-free [`IncrementalState`]
/// directly and keep a single copy of the trace.
#[derive(Debug, Default)]
pub struct IncrementalChecker {
    state: IncrementalState,
    history: History,
}

impl IncrementalChecker {
    /// An empty checker with the fast tier's default per-group budget.
    pub fn new() -> Self {
        IncrementalChecker::with_budget(SearchBudget::small())
    }

    /// An empty checker with an explicit per-group search budget.
    pub fn with_budget(budget: SearchBudget) -> Self {
        IncrementalChecker {
            state: IncrementalState::with_budget(budget),
            history: History::empty(),
        }
    }

    /// Binds the underlying engine's instruments to a shared metrics
    /// registry (see [`IncrementalState::attach_obs`]).
    pub fn attach_obs(&mut self, obs: &xability_obs::Obs) {
        self.state.attach_obs(obs);
    }

    /// Appends an expected request to the declared R3 sequence.
    pub fn declare(&mut self, action: ActionId, input: Value) {
        self.state.declare(action, input);
    }

    /// Appends an expected [`Request`] to the declared R3 sequence.
    pub fn declare_request(&mut self, request: &Request) {
        self.state.declare_request(request);
    }

    /// Consumes one observed event, in amortized O(1): one attribution
    /// step, one group-cell append, one memo invalidation, one dirty
    /// mark.
    pub fn push(&mut self, event: Event) {
        self.state.observe(&event);
        self.history.push(event);
    }

    /// Consumes a sequence of observed events.
    pub fn push_all<I: IntoIterator<Item = Event>>(&mut self, events: I) {
        for event in events {
            self.push(event);
        }
    }

    /// The number of events consumed so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Returns `true` if no event has been consumed yet.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The prefix consumed so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The declared request sequence.
    pub fn requests(&self) -> &[(ActionId, Value)] {
        self.state.requests()
    }

    /// The R3 verdict for the current prefix and declared request
    /// sequence: x-able with respect to `R₁…Rₙ` or `R₁…Rₙ₋₁`.
    ///
    /// Equals `FastChecker::new(budget).check_requests` on
    /// ([`history()`](Self::history), [`requests()`](Self::requests)) for
    /// the budget this checker was built with (the default `FastChecker`
    /// budget when built via [`IncrementalChecker::new`]), computed in
    /// O(groups touched since the last verdict).
    pub fn verdict(&self) -> Verdict {
        self.state.verdict_over(&self.history)
    }

    /// The verdict for an explicit `(ops, erasable)` question over the
    /// current prefix, bypassing the declared sequence and the R3
    /// last-request fallback. Equals `FastChecker::new(budget).check` on
    /// the prefix, for the budget this checker was built with.
    pub fn verdict_for(
        &self,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
    ) -> Verdict {
        self.state.verdict_for_over(&self.history, ops, erasable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;
    use crate::xable::checker::{Checker, FastChecker};

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn undo(name: &str) -> ActionId {
        ActionId::base(ActionName::undoable(name))
    }

    fn s(a: &ActionId, v: i64) -> Event {
        Event::start(a.clone(), Value::from(v))
    }

    fn c(a: &ActionId, v: i64) -> Event {
        Event::complete(a.clone(), Value::from(v))
    }

    fn cnil(a: &ActionId) -> Event {
        Event::complete(a.clone(), Value::Nil)
    }

    /// Batch verdict over the checker's own prefix, for agreement checks.
    fn batch(inc: &IncrementalChecker) -> Verdict {
        let requests: Vec<Request> = inc
            .requests()
            .iter()
            .map(|(a, iv)| Request::new(a.clone(), iv.clone()))
            .collect();
        FastChecker::default().check_requests(inc.history(), &requests)
    }

    #[test]
    fn empty_checker_with_no_requests_is_xable() {
        let inc = IncrementalChecker::new();
        assert!(inc.is_empty());
        assert!(inc.verdict().is_xable());
    }

    #[test]
    fn verdict_evolves_across_a_retried_request() {
        let a = idem("a");
        let ops = [(a.clone(), Value::from(1))];
        let mut inc = IncrementalChecker::new();
        inc.declare(a.clone(), Value::from(1));
        // Strictly (no abandonment fallback), an unexecuted request is not
        // x-able; under R3 the last request may always be abandoned.
        assert!(!inc.verdict_for(&ops, &[]).is_xable());
        assert!(
            inc.verdict().is_xable(),
            "R3 allows an unsubmitted last request"
        );

        inc.push(s(&a, 1));
        assert!(
            !inc.verdict_for(&ops, &[]).is_xable(),
            "started, not completed"
        );

        inc.push(s(&a, 1));
        inc.push(c(&a, 5));
        let v = inc.verdict();
        assert!(v.is_xable(), "{v}");
        assert_eq!(v.outputs(), Some(&[Value::from(5)][..]));

        // A duplicate completion with a *different* output breaks it for
        // good: the group can neither reduce nor erase.
        inc.push(s(&a, 1));
        inc.push(c(&a, 6));
        assert!(!inc.verdict().is_xable());
    }

    #[test]
    fn declared_sequence_supports_last_request_abandonment() {
        let a = idem("a");
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let mut inc = IncrementalChecker::new();
        inc.declare_request(&Request::new(a.clone(), Value::from(1)));
        inc.push(s(&a, 1));
        inc.push(c(&a, 5));
        assert!(inc.verdict().is_xable());

        // Second request starts, gets cancelled, never retried: the R3
        // fallback (last request abandoned) keeps the prefix x-able.
        inc.declare_request(&Request::new(u.clone(), Value::from(2)));
        inc.push(Event::start(u.clone(), Value::from(2)));
        inc.push(Event::start(cancel.clone(), Value::from(2)));
        inc.push(cnil(&cancel));
        let v = inc.verdict();
        assert!(v.is_xable(), "{v}");
        assert_eq!(v, batch(&inc));
    }

    #[test]
    fn orphan_completion_is_permanently_not_xable() {
        let a = idem("a");
        let mut inc = IncrementalChecker::new();
        inc.declare(a.clone(), Value::from(1));
        inc.push(c(&a, 5)); // completion with no start
        assert!(inc.verdict().is_not_xable());
        assert_eq!(inc.verdict(), batch(&inc));
        // Later legitimate events do not cure the axiom violation.
        inc.push(s(&a, 1));
        inc.push(c(&a, 5));
        assert!(inc.verdict().is_not_xable());
        assert_eq!(inc.verdict(), batch(&inc));
    }

    #[test]
    fn agrees_with_batch_at_every_prefix_of_a_protocol_trace() {
        // An undoable request with a cancelled round, then an idempotent
        // request, with a trailing deduplicated retry of the first.
        let u = undo("xfer");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let b = idem("get");
        let events = vec![
            s(&u, 1),
            Event::start(cancel.clone(), Value::from(1)),
            cnil(&cancel),
            s(&u, 1),
            c(&u, 7),
            Event::start(commit.clone(), Value::from(1)),
            cnil(&commit),
            s(&b, 2),
            c(&b, 9),
            s(&b, 2),
            c(&b, 9), // trailing duplicate
        ];
        let mut inc = IncrementalChecker::new();
        inc.declare(u, Value::from(1));
        inc.declare(b, Value::from(2));
        for ev in events {
            inc.push(ev);
            assert_eq!(inc.verdict(), batch(&inc), "prefix {}", inc.len());
        }
        assert!(inc.verdict().is_xable());
    }

    #[test]
    fn round_stamped_rounds_agree_with_batch_even_when_declared_late() {
        // Round-stamped transactions land *before* their undoable request
        // is declared: the aggregate must adopt the existing rounds at
        // declaration time.
        let u = undo("xfer");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let key = Value::from("r0");
        let iv1 = Value::pair(key.clone(), Value::from(1));
        let iv2 = Value::pair(key.clone(), Value::from(2));
        let events = vec![
            Event::start(u.clone(), iv1.clone()),
            Event::start(cancel.clone(), iv1.clone()),
            Event::complete(cancel.clone(), Value::Nil),
            Event::start(u.clone(), iv2.clone()),
            Event::complete(u.clone(), Value::from("ok")),
            Event::start(commit.clone(), iv2.clone()),
            Event::complete(commit.clone(), Value::Nil),
        ];
        let mut inc = IncrementalChecker::new();
        for (k, ev) in events.into_iter().enumerate() {
            if k == 4 {
                // Declare mid-stream, after both rounds already exist.
                inc.declare(u.clone(), key.clone());
            }
            inc.push(ev);
            assert_eq!(inc.verdict(), batch(&inc), "prefix {}", inc.len());
        }
        assert!(inc.verdict().is_xable());
    }

    #[test]
    fn verdict_for_matches_fast_check() {
        let a = idem("a");
        let mut inc = IncrementalChecker::new();
        inc.push_all([s(&a, 1), c(&a, 5)]);
        let ops = [(a, Value::from(1))];
        assert_eq!(
            inc.verdict_for(&ops, &[]),
            FastChecker::default().check(inc.history(), &ops, &[])
        );
    }

    #[test]
    fn storage_free_state_agrees_with_owned_checker() {
        // An IncrementalState observing the same stream as an owned
        // IncrementalChecker, with the events living in one shared
        // History, must produce identical verdicts at every prefix.
        let u = undo("xfer");
        let cancel = u.cancel().unwrap();
        let b = idem("get");
        let events = [
            s(&u, 1),
            Event::start(cancel.clone(), Value::from(1)),
            cnil(&cancel),
            s(&b, 2),
            c(&b, 9),
        ];
        let mut shared = History::empty();
        let mut state = IncrementalState::new();
        let mut owned = IncrementalChecker::new();
        for who in [&u, &b] {
            state.declare(who.clone(), Value::from(if *who == u { 1 } else { 2 }));
            owned.declare(who.clone(), Value::from(if *who == u { 1 } else { 2 }));
        }
        assert!(state.is_empty());
        for ev in events {
            state.observe(&ev);
            owned.push(ev.clone());
            shared.push(ev);
            assert_eq!(state.consumed(), shared.len());
            assert_eq!(state.verdict_over(&shared), owned.verdict());
            assert_eq!(state.requests(), owned.requests());
        }
        let ops = [(b.clone(), Value::from(2))];
        let erasable = [(u.clone(), Value::from(1))];
        assert_eq!(
            state.verdict_for_over(&shared, &ops, &erasable),
            owned.verdict_for(&ops, &erasable)
        );
    }

    #[test]
    fn memoization_is_invalidated_by_new_group_events() {
        let a = idem("a");
        let mut inc = IncrementalChecker::new();
        inc.declare(a.clone(), Value::from(1));
        inc.push_all([s(&a, 1), c(&a, 5)]);
        assert!(inc.verdict().is_xable()); // memoizes the group as reduced
        inc.push_all([s(&a, 1), c(&a, 6)]); // disagreeing retry
        assert!(inc.verdict().is_not_xable(), "stale memo would say x-able");
    }

    #[test]
    fn duplicate_and_non_base_declarations_are_sticky_unknown() {
        let a = idem("a");
        let mut inc = IncrementalChecker::new();
        inc.declare(a.clone(), Value::from(1));
        inc.declare(a.clone(), Value::from(1)); // duplicate identity
        inc.push_all([s(&a, 1), c(&a, 5)]);
        let v = inc.verdict();
        assert!(v.is_unknown(), "{v}");
        assert_eq!(v, batch(&inc));

        let mut inc = IncrementalChecker::new();
        let cancel = undo("u").cancel().unwrap();
        inc.declare(cancel, Value::from(1)); // not a base action
        let v = inc.verdict();
        assert!(v.is_unknown(), "{v}");
        assert_eq!(v, batch(&inc));
    }

    #[test]
    fn clean_groups_are_not_redecided() {
        // Whitebox-ish: after a verdict, the dirty sets are empty; a new
        // event dirties exactly one request.
        let a = idem("a");
        let b = idem("b");
        let mut inc = IncrementalChecker::new();
        inc.declare(a.clone(), Value::from(1));
        inc.declare(b.clone(), Value::from(2));
        inc.push_all([s(&a, 1), c(&a, 5)]);
        let _ = inc.verdict();
        assert!(inc.state.agg.borrow().dirty_ops.is_empty());
        assert!(inc.state.agg.borrow().dirty_undeclared.is_empty());
        inc.push(s(&b, 2));
        assert_eq!(
            inc.state
                .agg
                .borrow()
                .dirty_ops
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![1],
            "only request b is dirty"
        );
        inc.push(c(&b, 6));
        assert!(inc.verdict().is_xable());
        assert_eq!(inc.verdict(), batch(&inc));
    }
}
