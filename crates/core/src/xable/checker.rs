//! The unified x-ability decision API: one [`Verdict`] vocabulary, one
//! [`Checker`] trait, three deciders.
//!
//! Historically the crate exposed two mismatched surfaces — the exhaustive
//! search returned `SearchResult` while the polynomial checker returned its
//! own `Verdict` — and every caller hand-rolled the "try fast, fall back to
//! search" escalation. This module is the single entry point:
//!
//! * [`SearchChecker`] — the reference semantics (breadth-first exploration
//!   of the reduction closure ⇒\*, Fig. 4 rule 17). Complete up to an
//!   explicit [`SearchBudget`], exponential in the worst case.
//! * [`FastChecker`] — the polynomial checker for protocol-shaped
//!   histories (per-group decisions plus effect ordering, DESIGN.md §4.3).
//!   Answers [`Verdict::Unknown`] outside its class.
//! * [`TieredChecker`] — the escalation policy: ask the fast checker
//!   first, and escalate an `Unknown` to the exhaustive search when the
//!   history is small enough for the search to be affordable.
//!
//! For online verification — deciding x-ability *while* a history is still
//! being produced — see [`super::incremental::IncrementalChecker`], which
//! maintains the fast checker's per-group state across `push`es.
//!
//! # Examples
//!
//! ```
//! use xability_core::xable::{Checker, TieredChecker};
//! use xability_core::{ActionId, ActionName, Event, History, Value};
//!
//! let ping = ActionId::base(ActionName::idempotent("ping"));
//! let h: History = [
//!     Event::start(ping.clone(), Value::Nil),             // failed attempt
//!     Event::start(ping.clone(), Value::Nil),             // retry
//!     Event::complete(ping.clone(), Value::from("pong")), // success
//! ]
//! .into_iter()
//! .collect();
//!
//! let verdict = TieredChecker::default().check(&h, &[(ping, Value::Nil)], &[]);
//! assert!(verdict.is_xable());
//! assert_eq!(verdict.outputs(), Some(&[Value::from("pong")][..]));
//! ```

use std::fmt;

use crate::action::{ActionId, Request};
use crate::failure_free::failure_free_sequence_outputs;
use crate::history::{History, HistoryRead};
use crate::value::Value;
use crate::xable::fast::{decide, Engine};
use crate::xable::search::{is_xable_search, SearchBudget, SearchResult};

/// Evidence accompanying a positive verdict.
///
/// Every decider reports the agreed output of each surviving request; the
/// exhaustive search additionally materializes the failure-free history it
/// reduced to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Witness {
    /// Output value of each surviving request, in submission order.
    pub outputs: Vec<Value>,
    /// The failure-free history reached by reduction, when the decider
    /// materializes one (the fast checker decides per group and does not).
    pub reduced: Option<History>,
}

impl Witness {
    /// A witness carrying only the per-request outputs.
    pub fn from_outputs(outputs: Vec<Value>) -> Self {
        Witness {
            outputs,
            reduced: None,
        }
    }
}

/// The answer of an x-ability decision procedure.
///
/// This is the one verdict vocabulary shared by every checker in the crate
/// (the historical `xable::fast::Verdict` is a re-export of this type).
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a verdict reports nothing by itself; inspect or propagate it"]
pub enum Verdict {
    /// The history is x-able; the witness carries the evidence.
    Xable {
        /// Outputs (and, for the search tier, the reduced history).
        witness: Witness,
    },
    /// The history is definitely not x-able.
    NotXable {
        /// Human-readable explanation of the first violation found.
        reason: String,
    },
    /// The decider could not decide (out of class, or out of budget).
    Unknown {
        /// Why the decider could not decide.
        reason: String,
    },
}

impl Verdict {
    /// A positive verdict carrying only request outputs.
    pub fn xable(outputs: Vec<Value>) -> Self {
        Verdict::Xable {
            witness: Witness::from_outputs(outputs),
        }
    }

    /// Returns `true` if the verdict is [`Verdict::Xable`].
    #[must_use]
    pub fn is_xable(&self) -> bool {
        matches!(self, Verdict::Xable { .. })
    }

    /// Returns `true` if the verdict is [`Verdict::NotXable`].
    #[must_use]
    pub fn is_not_xable(&self) -> bool {
        matches!(self, Verdict::NotXable { .. })
    }

    /// Returns `true` if the verdict is [`Verdict::Unknown`].
    #[must_use]
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown { .. })
    }

    /// The surviving requests' outputs, when the verdict is positive.
    #[must_use]
    pub fn outputs(&self) -> Option<&[Value]> {
        match self {
            Verdict::Xable { witness } => Some(&witness.outputs),
            _ => None,
        }
    }

    /// The explanation, when the verdict is negative or indefinite.
    #[must_use]
    pub fn reason(&self) -> Option<&str> {
        match self {
            Verdict::Xable { .. } => None,
            Verdict::NotXable { reason } | Verdict::Unknown { reason } => Some(reason),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Xable { witness } => {
                write!(f, "x-able ({} outputs)", witness.outputs.len())
            }
            Verdict::NotXable { reason } => write!(f, "not x-able: {reason}"),
            Verdict::Unknown { reason } => write!(f, "unknown: {reason}"),
        }
    }
}

/// A decision procedure for the x-able predicate (§3.2, eq. 23) and its
/// multi-request extension (§4, R3).
///
/// Implementations differ in completeness and cost, not in vocabulary:
/// every checker consumes the same query shape and produces a [`Verdict`].
pub trait Checker {
    /// A short name identifying the decision procedure (for reports).
    fn name(&self) -> &'static str;

    /// Decides whether `h` is x-able with respect to the ordered request
    /// sequence `ops`, additionally allowing the requests in `erasable` to
    /// have left events that reduce to nothing (the R3 "last request may
    /// have been abandoned" case).
    fn check(
        &self,
        h: &History,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
    ) -> Verdict;

    /// The R3 obligation (§4) for a sequence of client requests: `h` must
    /// be x-able with respect to `R₁…Rₙ` *or* `R₁…Rₙ₋₁` (the last request
    /// may have been abandoned if the client failed before retrying).
    ///
    /// Tries the full sequence first, then the prefix with the last
    /// request erasable. [`Verdict::Unknown`] propagates only if neither
    /// attempt gives a definite positive.
    fn check_requests(&self, h: &History, requests: &[Request]) -> Verdict {
        let ops: Vec<(ActionId, Value)> = requests
            .iter()
            .map(|r| (r.action().clone(), r.input().clone()))
            .collect();
        combine_r3_attempts(&ops, |ops, erasable| self.check(h, ops, erasable))
    }

    /// [`check`](Checker::check) over any [`HistoryRead`] source — a
    /// zero-copy store view, a borrowed window, or an owned history.
    ///
    /// The default implementation materializes the source once and
    /// delegates; deciders that can run directly over a view (the fast
    /// tier) override it to avoid the copy.
    fn check_source(
        &self,
        h: &dyn HistoryRead,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
    ) -> Verdict {
        self.check(&h.to_history(), ops, erasable)
    }

    /// [`check_requests`](Checker::check_requests) over any
    /// [`HistoryRead`] source.
    fn check_requests_source(&self, h: &dyn HistoryRead, requests: &[Request]) -> Verdict {
        self.check_requests(&h.to_history(), requests)
    }
}

/// Shared R3 combination logic: try the full sequence, then the prefix
/// with the last request erasable, and pick the more informative verdict.
///
/// Factored out so the batch checkers and the incremental checker answer
/// the R3 question identically by construction.
pub(crate) fn combine_r3_attempts(
    ops: &[(ActionId, Value)],
    mut attempt: impl FnMut(&[(ActionId, Value)], &[(ActionId, Value)]) -> Verdict,
) -> Verdict {
    let full = attempt(ops, &[]);
    if full.is_xable() || ops.is_empty() {
        return full;
    }
    let (last, prefix) = ops.split_last().expect("non-empty checked");
    let partial = attempt(prefix, std::slice::from_ref(last));
    if partial.is_xable() {
        return partial;
    }
    // Prefer a definite negative; otherwise report the more informative
    // indefinite answer.
    match (&full, &partial) {
        (Verdict::NotXable { .. }, Verdict::NotXable { .. }) => full,
        (Verdict::Unknown { .. }, _) => full,
        (_, Verdict::Unknown { .. }) => partial,
        _ => full,
    }
}

/// The reference decider: exhaustive breadth-first search for a reduction
/// of the whole history to the ordered concatenation of failure-free
/// histories (the strict reading of eq. 23 / R3).
///
/// Complete up to its [`SearchBudget`]; exponential in the worst case, so
/// only suitable for small histories (unit tests, escalation of fast-tier
/// `Unknown`s, cross-validation oracles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchChecker {
    /// Budget for the breadth-first exploration.
    pub budget: SearchBudget,
}

impl SearchChecker {
    /// A search checker with an explicit budget.
    pub fn new(budget: SearchBudget) -> Self {
        SearchChecker { budget }
    }
}

impl Checker for SearchChecker {
    fn name(&self) -> &'static str {
        "search"
    }

    /// Note that `erasable` is ignored: the strict reduction target —
    /// `eventsof(op₁) • … • eventsof(opₙ)` — already demands that every
    /// event outside the request groups reduces away, so declaring a
    /// request erasable neither widens nor narrows the target.
    fn check(
        &self,
        h: &History,
        ops: &[(ActionId, Value)],
        _erasable: &[(ActionId, Value)],
    ) -> Verdict {
        match is_xable_search(h, ops, self.budget) {
            SearchResult::Reached(witness) => {
                let outputs = failure_free_sequence_outputs(ops, &witness)
                    .expect("search goal guarantees failure-free shape");
                Verdict::Xable {
                    witness: Witness {
                        outputs,
                        reduced: Some(witness),
                    },
                }
            }
            SearchResult::Exhausted => Verdict::NotXable {
                reason: "the reduction closure contains no ordered concatenation of \
                         failure-free histories for the request sequence"
                    .to_owned(),
            },
            SearchResult::BudgetExceeded => Verdict::Unknown {
                reason: "exhaustive search budget exceeded".to_owned(),
            },
        }
    }
}

/// The polynomial decider for protocol-shaped histories (DESIGN.md §4.3):
/// per-`(action, input)` group decisions by small bounded searches, plus
/// the effect-ordering condition across groups.
///
/// Sound in both directions where definite; answers [`Verdict::Unknown`]
/// when a history falls outside its class or a per-group search runs out
/// of `group_budget`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastChecker {
    /// Budget for each per-group reduction search.
    pub group_budget: SearchBudget,
}

impl FastChecker {
    /// A fast checker with an explicit per-group budget.
    pub fn new(group_budget: SearchBudget) -> Self {
        FastChecker { group_budget }
    }

    /// [`Checker::check`], with the per-group searches decided on
    /// `workers` scoped threads (`std::thread::scope` — no extra
    /// dependencies, no detached threads).
    ///
    /// Sharding per group is sound because reduction rules 18–20 never
    /// relate events across groups (DESIGN.md §4.3): each group's search
    /// is a pure, deterministic function of its own sub-history, so the
    /// merge — a sequential assembly over the precomputed outcomes — is
    /// **bit-identical** to the sequential check regardless of the worker
    /// count or scheduling. `workers <= 1` *is* the plain sequential
    /// check — no plan is built and no search runs eagerly.
    ///
    /// # Examples
    ///
    /// ```
    /// use xability_core::xable::{Checker, FastChecker};
    /// use xability_core::{ActionId, ActionName, Event, History, Value};
    ///
    /// let a = ActionId::base(ActionName::idempotent("a"));
    /// let h: History = [
    ///     Event::start(a.clone(), Value::from(1)),
    ///     Event::complete(a.clone(), Value::from(5)),
    /// ]
    /// .into_iter()
    /// .collect();
    /// let ops = [(a, Value::from(1))];
    /// let checker = FastChecker::default();
    /// assert_eq!(
    ///     checker.check_sharded(&h, &ops, &[], 4),
    ///     checker.check(&h, &ops, &[]),
    /// );
    /// ```
    pub fn check_sharded<H: HistoryRead + Sync + ?Sized>(
        &self,
        h: &H,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
        workers: usize,
    ) -> Verdict {
        crate::xable::fast::check_sharded(h, self.group_budget, ops, erasable, workers)
    }

    /// [`Checker::check_requests`] (the R3 obligation), with the
    /// per-group searches of *both* R3 attempts decided on `workers`
    /// scoped threads in one wave. Bit-identical to the sequential
    /// answer; see [`FastChecker::check_sharded`].
    pub fn check_requests_sharded<H: HistoryRead + Sync + ?Sized>(
        &self,
        h: &H,
        requests: &[Request],
        workers: usize,
    ) -> Verdict {
        let ops: Vec<(ActionId, Value)> = requests
            .iter()
            .map(|r| (r.action().clone(), r.input().clone()))
            .collect();
        crate::xable::fast::check_requests_sharded(h, self.group_budget, &ops, workers)
    }
}

impl Default for FastChecker {
    fn default() -> Self {
        FastChecker {
            group_budget: SearchBudget::small(),
        }
    }
}

impl Checker for FastChecker {
    fn name(&self) -> &'static str {
        "fast"
    }

    fn check(
        &self,
        h: &History,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
    ) -> Verdict {
        self.check_source(h, ops, erasable)
    }

    /// Overridden to partition once and share the per-group memo cells
    /// between the full-sequence and last-request-abandoned attempts.
    fn check_requests(&self, h: &History, requests: &[Request]) -> Verdict {
        self.check_requests_source(h, requests)
    }

    /// Overridden to run natively over the view: the partition and every
    /// per-group search read events through [`HistoryRead`], so no owned
    /// copy of the source is ever built.
    fn check_source(
        &self,
        h: &dyn HistoryRead,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
    ) -> Verdict {
        match Engine::from_source(h) {
            Ok(eng) => decide(h, &eng, self.group_budget, ops, erasable),
            Err(reason) => Verdict::NotXable { reason },
        }
    }

    /// Overridden to partition the view once and share the per-group memo
    /// cells between the full-sequence and last-request-abandoned attempts.
    fn check_requests_source(&self, h: &dyn HistoryRead, requests: &[Request]) -> Verdict {
        let ops: Vec<(ActionId, Value)> = requests
            .iter()
            .map(|r| (r.action().clone(), r.input().clone()))
            .collect();
        crate::xable::fast::check_requests_batch(h, self.group_budget, &ops)
    }
}

/// The escalation policy callers used to hand-roll: ask the fast tier,
/// and escalate an [`Verdict::Unknown`] to the exhaustive search when the
/// history is short enough for the search to be affordable.
///
/// Definite fast-tier answers are final — the fast checker is sound where
/// definite, and on single-group questions the two tiers coincide. An
/// escalated answer is the *strict* ordered-concatenation reading of R3
/// (see DESIGN.md §4.3 for where that is deliberately narrower than the
/// fast tier's effect-ordered reading).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TieredChecker {
    /// Tier 1: the polynomial checker.
    pub fast: FastChecker,
    /// Tier 2: the exhaustive search, consulted on fast-tier `Unknown`s.
    pub search: SearchChecker,
    /// Do not escalate histories longer than this: the search frontier
    /// grows exponentially with history length, so past a few dozen
    /// events even a budgeted search wastes its whole budget to answer
    /// `Unknown` slowly.
    pub max_search_events: usize,
}

impl TieredChecker {
    /// A tiered checker with explicit per-tier budgets.
    pub fn new(fast: FastChecker, search: SearchChecker, max_search_events: usize) -> Self {
        TieredChecker {
            fast,
            search,
            max_search_events,
        }
    }
}

impl Default for TieredChecker {
    fn default() -> Self {
        TieredChecker {
            fast: FastChecker::default(),
            search: SearchChecker::default(),
            max_search_events: 48,
        }
    }
}

/// `true` when the history contains a §5.4 round-stamped event: a start
/// of an undoable base action whose input has the `Pair(base input,
/// round)` shape the fast tier adopts into its parent request. The strict
/// search tier has no adoption rule — it reads each stamped round as an
/// unrelated request and condemns histories the fast tier merely finds
/// ambiguous — so escalation must not cross this language boundary.
fn contains_round_stamped(h: &dyn HistoryRead) -> bool {
    let mut found = false;
    h.scan_events(&mut |_, e| {
        found = e.action().is_undoable_base()
            && e.is_start()
            && matches!(e.value(), Value::Pair(p) if matches!(p.1, Value::Int(_)));
        !found
    });
    found
}

impl TieredChecker {
    /// The escalation policy shared by both entry points: pass a definite
    /// fast-tier verdict through, refuse to escalate long or round-stamped
    /// histories, and otherwise consult the search tier, combining reasons
    /// if it is undecided too.
    fn escalate(
        &self,
        history_len: usize,
        fast: Verdict,
        stamped: impl FnOnce() -> bool,
        search_tier: impl FnOnce(&SearchChecker) -> Verdict,
    ) -> Verdict {
        let Verdict::Unknown { reason } = fast else {
            return fast;
        };
        if history_len > self.max_search_events {
            return Verdict::Unknown {
                reason: format!(
                    "{reason}; history too long to escalate to exhaustive search \
                     ({history_len} > {} events)",
                    self.max_search_events
                ),
            };
        }
        if stamped() {
            return Verdict::Unknown {
                reason: format!(
                    "{reason}; history contains round-stamped events outside the \
                     search tier's language (§5.4 adoption is a fast-tier rule), \
                     not escalating"
                ),
            };
        }
        match search_tier(&self.search) {
            Verdict::Unknown {
                reason: search_reason,
            } => Verdict::Unknown {
                reason: format!("fast tier: {reason}; search tier: {search_reason}"),
            },
            definite => definite,
        }
    }
}

impl Checker for TieredChecker {
    fn name(&self) -> &'static str {
        "tiered"
    }

    fn check(
        &self,
        h: &History,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
    ) -> Verdict {
        let fast = self.fast.check(h, ops, erasable);
        self.escalate(
            h.len(),
            fast,
            || contains_round_stamped(h),
            |search| search.check(h, ops, erasable),
        )
    }

    /// Overridden so the fast tier partitions once and shares its
    /// per-group memo cells between the full-sequence and
    /// last-request-abandoned attempts; the search tier is consulted only
    /// if the combined fast answer is `Unknown` (and the history is short
    /// enough to escalate).
    fn check_requests(&self, h: &History, requests: &[Request]) -> Verdict {
        let fast = self.fast.check_requests(h, requests);
        self.escalate(
            h.len(),
            fast,
            || contains_round_stamped(h),
            |search| search.check_requests(h, requests),
        )
    }

    /// Overridden so the fast tier runs zero-copy over the view; the
    /// source is materialized only when a small `Unknown` actually
    /// escalates to the search tier.
    fn check_source(
        &self,
        h: &dyn HistoryRead,
        ops: &[(ActionId, Value)],
        erasable: &[(ActionId, Value)],
    ) -> Verdict {
        let fast = self.fast.check_source(h, ops, erasable);
        self.escalate(
            h.len(),
            fast,
            || contains_round_stamped(h),
            |search| search.check(&h.to_history(), ops, erasable),
        )
    }

    /// Overridden so the fast tier runs zero-copy over the view; the
    /// source is materialized only when a small `Unknown` actually
    /// escalates to the search tier.
    fn check_requests_source(&self, h: &dyn HistoryRead, requests: &[Request]) -> Verdict {
        let fast = self.fast.check_requests_source(h, requests);
        self.escalate(
            h.len(),
            fast,
            || contains_round_stamped(h),
            |search| search.check_requests(&h.to_history(), requests),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;
    use crate::event::Event;
    use crate::failure_free::eventsof;

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn s(a: &ActionId, v: i64) -> Event {
        Event::start(a.clone(), Value::from(v))
    }

    fn c(a: &ActionId, v: i64) -> Event {
        Event::complete(a.clone(), Value::from(v))
    }

    #[test]
    fn all_checkers_accept_a_failure_free_history() {
        let a = idem("a");
        let h = eventsof(&a, &Value::from(1), &Value::from(5));
        let ops = [(a, Value::from(1))];
        for checker in [
            &SearchChecker::default() as &dyn Checker,
            &FastChecker::default(),
            &TieredChecker::default(),
        ] {
            let v = checker.check(&h, &ops, &[]);
            assert!(v.is_xable(), "{}: {v}", checker.name());
            assert_eq!(v.outputs(), Some(&[Value::from(5)][..]));
        }
    }

    #[test]
    fn all_checkers_reject_disagreeing_outputs() {
        let a = idem("a");
        let h: History = [s(&a, 1), c(&a, 5), s(&a, 1), c(&a, 6)]
            .into_iter()
            .collect();
        let ops = [(a, Value::from(1))];
        for checker in [
            &SearchChecker::default() as &dyn Checker,
            &FastChecker::default(),
            &TieredChecker::default(),
        ] {
            let v = checker.check(&h, &ops, &[]);
            assert!(v.is_not_xable(), "{}: {v}", checker.name());
            assert!(v.reason().is_some());
        }
    }

    #[test]
    fn search_checker_materializes_the_reduced_history() {
        let a = idem("a");
        let h: History = [s(&a, 1), s(&a, 1), c(&a, 5)].into_iter().collect();
        let ops = [(a.clone(), Value::from(1))];
        let v = SearchChecker::default().check(&h, &ops, &[]);
        let Verdict::Xable { witness } = v else {
            panic!("expected x-able, got {v}");
        };
        let reduced = witness.reduced.expect("search materializes a witness");
        assert_eq!(reduced, eventsof(&a, &Value::from(1), &Value::from(5)));
    }

    #[test]
    fn tiered_checker_escalates_fast_unknowns() {
        // Ambiguous completion attribution: two distinct inputs open when a
        // completion arrives. The fast tier answers Unknown; the search
        // tier can still decide the small history definitively.
        let a = idem("a");
        let h: History = [
            Event::start(a.clone(), Value::from(1)),
            Event::start(a.clone(), Value::from(2)),
            Event::complete(a.clone(), Value::from(7)),
            Event::complete(a.clone(), Value::from(7)),
        ]
        .into_iter()
        .collect();
        let ops = [(a.clone(), Value::from(1)), (a, Value::from(2))];
        let fast = FastChecker::default().check(&h, &ops, &[]);
        assert!(
            fast.is_unknown(),
            "precondition: fast tier undecided ({fast})"
        );
        let tiered = TieredChecker::default().check(&h, &ops, &[]);
        assert!(!tiered.is_unknown(), "escalation must decide: {tiered}");
    }

    #[test]
    fn tiered_checker_refuses_to_escalate_long_histories() {
        let a = idem("a");
        // Ambiguous shape as above, padded far past the escalation cutoff.
        let mut events = vec![
            Event::start(a.clone(), Value::from(1)),
            Event::start(a.clone(), Value::from(2)),
            Event::complete(a.clone(), Value::from(7)),
            Event::complete(a.clone(), Value::from(7)),
        ];
        for i in 0..60 {
            let junk = idem(&format!("junk{i}"));
            events.push(Event::start(junk.clone(), Value::from(1)));
            events.push(Event::complete(junk, Value::from(1)));
        }
        let h = History::from_events(events);
        let ops = [(a.clone(), Value::from(1)), (a, Value::from(2))];
        let v = TieredChecker::default().check(&h, &ops, &[]);
        let Verdict::Unknown { reason } = v else {
            panic!("expected Unknown, got {v}");
        };
        assert!(reason.contains("too long"), "{reason}");
    }

    #[test]
    fn tiered_checker_refuses_to_escalate_round_stamped_histories() {
        // A §5.4 round-stamped round that started but never resolved. The
        // fast tier adopts the stamped group into its parent request and
        // answers Unknown (the run is still in flight); the raw search
        // tier has no adoption rule, reads the stamped identity as an
        // unrelated request, and would condemn the same events. Escalating
        // would launder that category error into a definite NotXable.
        let reserve = ActionId::base(ActionName::undoable("reserve"));
        let round1 = Value::pair(Value::from("req-0"), Value::from(1));
        let round2 = Value::pair(Value::from("req-0"), Value::from(2));
        let h: History = [
            Event::start(reserve.clone(), round1),
            Event::start(reserve.clone(), round2),
            Event::complete(reserve.clone(), Value::from("ok")),
        ]
        .into_iter()
        .collect();
        let requests = [Request::new(reserve, Value::from("req-0"))];

        let tiered = TieredChecker::default();
        let fast = tiered.fast.check_requests(&h, &requests);
        assert!(fast.is_unknown(), "precondition: fast undecided ({fast})");
        let search = tiered.search.check_requests(&h, &requests);
        assert!(
            search.is_not_xable(),
            "precondition: raw search misreads stamping ({search})"
        );

        for v in [
            tiered.check_requests(&h, &requests),
            tiered.check_requests_source(&h, &requests),
        ] {
            let Verdict::Unknown { reason } = v else {
                panic!("stamped history must not escalate, got {v}");
            };
            assert!(reason.contains("round-stamped"), "{reason}");
        }
    }

    #[test]
    fn check_requests_allows_abandoned_last_request() {
        let a = idem("a");
        let b = idem("b");
        let requests = vec![
            Request::new(a.clone(), Value::from(1)),
            Request::new(b, Value::from(2)),
        ];
        // b never ran at all: x-able via the R₁…Rₙ₋₁ case.
        let h = eventsof(&a, &Value::from(1), &Value::from(5));
        for checker in [
            &SearchChecker::default() as &dyn Checker,
            &FastChecker::default(),
            &TieredChecker::default(),
        ] {
            let v = checker.check_requests(&h, &requests);
            assert!(v.is_xable(), "{}: {v}", checker.name());
        }
    }

    #[test]
    fn source_entry_points_agree_with_owned() {
        let a = idem("a");
        let h: History = [s(&a, 1), s(&a, 1), c(&a, 5)].into_iter().collect();
        let ops = [(a.clone(), Value::from(1))];
        let requests = vec![Request::new(a, Value::from(1))];
        let view = h.window(0, h.len());
        for checker in [
            &SearchChecker::default() as &dyn Checker,
            &FastChecker::default(),
            &TieredChecker::default(),
        ] {
            assert_eq!(
                checker.check(&h, &ops, &[]),
                checker.check_source(&view, &ops, &[]),
                "{}: check vs check_source",
                checker.name()
            );
            assert_eq!(
                checker.check_requests(&h, &requests),
                checker.check_requests_source(&view, &requests),
                "{}: check_requests vs check_requests_source",
                checker.name()
            );
        }
    }

    #[test]
    fn verdict_accessors_and_display() {
        let v = Verdict::xable(vec![Value::from(1)]);
        assert!(v.is_xable() && !v.is_not_xable() && !v.is_unknown());
        assert_eq!(v.reason(), None);
        assert!(format!("{v}").contains("x-able"));
        let v = Verdict::NotXable {
            reason: "boom".into(),
        };
        assert_eq!(v.reason(), Some("boom"));
        assert!(format!("{v}").contains("boom"));
        let v = Verdict::Unknown {
            reason: "fog".into(),
        };
        assert!(v.is_unknown());
        assert!(format!("{v}").contains("fog"));
    }
}
