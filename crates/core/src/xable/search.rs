//! Exhaustive decision procedure for x-ability: breadth-first search over
//! the reduction closure ⇒\* (rule 17 of Fig. 4 realized as transitive
//! closure of single steps).
//!
//! This is the *reference semantics* of the crate: it follows the paper's
//! definitions as directly as possible and makes no assumption about the
//! shape of the history. Its cost is exponential in the worst case, so every
//! entry point takes an explicit [`SearchBudget`].

use std::collections::{HashSet, VecDeque};

use crate::action::ActionId;
use crate::failure_free::failure_free_sequence_outputs;
use crate::history::History;
use crate::reduce::successors;
use crate::value::Value;

/// Limits for the exhaustive search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Maximum number of histories expanded (popped from the frontier).
    pub max_expansions: usize,
    /// Maximum number of distinct histories remembered.
    pub max_visited: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_expansions: 50_000,
            max_visited: 200_000,
        }
    }
}

impl SearchBudget {
    /// A small budget for per-group checks on protocol traces.
    pub fn small() -> Self {
        SearchBudget {
            max_expansions: 5_000,
            max_visited: 20_000,
        }
    }
}

/// Outcome of a reduction search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchResult {
    /// A goal history was reached; the witness is returned.
    Reached(History),
    /// The entire reachable closure was explored without finding a goal:
    /// the history is definitely not reducible to a goal.
    Exhausted,
    /// The budget ran out before the closure was fully explored.
    BudgetExceeded,
}

impl SearchResult {
    /// Returns `true` if a goal was reached.
    pub fn is_reached(&self) -> bool {
        matches!(self, SearchResult::Reached(_))
    }
}

/// Searches the reduction closure of `h` for a history satisfying `goal`.
///
/// `min_len` prunes branches whose length is already below the shortest
/// possible goal (reduction never lengthens a history); pass `0` to disable
/// pruning.
pub fn search_reduction<F>(
    h: &History,
    goal: F,
    min_len: usize,
    budget: SearchBudget,
) -> SearchResult
where
    F: Fn(&History) -> bool,
{
    if goal(h) {
        return SearchResult::Reached(h.clone());
    }
    let mut visited: HashSet<History> = HashSet::new();
    let mut frontier: VecDeque<History> = VecDeque::new();
    visited.insert(h.clone());
    frontier.push_back(h.clone());
    let mut expansions = 0usize;
    let mut truncated = false;

    while let Some(current) = frontier.pop_front() {
        expansions += 1;
        if expansions > budget.max_expansions {
            return SearchResult::BudgetExceeded;
        }
        for succ in successors(&current) {
            if succ.len() < min_len {
                continue;
            }
            if visited.contains(&succ) {
                continue;
            }
            if goal(&succ) {
                return SearchResult::Reached(succ);
            }
            if visited.len() >= budget.max_visited {
                truncated = true;
                continue;
            }
            visited.insert(succ.clone());
            frontier.push_back(succ);
        }
    }
    if truncated {
        SearchResult::BudgetExceeded
    } else {
        SearchResult::Exhausted
    }
}

/// Decides whether `h` is x-able with respect to the ordered action/input
/// sequence `ops`: can `h` be reduced to `eventsof(a₁,iv₁,ov₁) • … •
/// eventsof(aₙ,ivₙ,ovₙ)` for some outputs?
///
/// This is eq. 23 for a single op and the R3 obligation (§4) for sequences.
///
/// # Examples
///
/// ```
/// use xability_core::xable::{is_xable_search, SearchBudget, SearchResult};
/// use xability_core::{ActionId, ActionName, Event, History, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let h: History = [
///     Event::start(a.clone(), Value::from(1)),
///     Event::complete(a.clone(), Value::from(5)),
/// ]
/// .into_iter()
/// .collect();
/// let ops = [(a, Value::from(1))];
/// assert!(matches!(
///     is_xable_search(&h, &ops, SearchBudget::default()),
///     SearchResult::Reached(_)
/// ));
/// ```
pub fn is_xable_search(
    h: &History,
    ops: &[(ActionId, Value)],
    budget: SearchBudget,
) -> SearchResult {
    let min_len: usize = ops
        .iter()
        .map(|(a, _)| if a.is_undoable_base() { 4 } else { 2 })
        .sum();
    search_reduction(
        h,
        |cand| failure_free_sequence_outputs(ops, cand).is_some(),
        min_len,
        budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;
    use crate::event::Event;
    use crate::failure_free::eventsof;

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn undo(name: &str) -> ActionId {
        ActionId::base(ActionName::undoable(name))
    }

    fn s(a: &ActionId, v: i64) -> Event {
        Event::start(a.clone(), Value::from(v))
    }

    fn c(a: &ActionId, v: i64) -> Event {
        Event::complete(a.clone(), Value::from(v))
    }

    fn cnil(a: &ActionId) -> Event {
        Event::complete(a.clone(), Value::Nil)
    }

    fn snil(a: &ActionId, v: i64) -> Event {
        Event::start(a.clone(), Value::from(v))
    }

    #[test]
    fn failure_free_history_is_immediately_xable() {
        let a = idem("a");
        let h = eventsof(&a, &Value::from(1), &Value::from(2));
        let ops = [(a, Value::from(1))];
        assert!(is_xable_search(&h, &ops, SearchBudget::default()).is_reached());
    }

    #[test]
    fn retried_idempotent_action_is_xable() {
        let a = idem("a");
        let h: History = [s(&a, 1), s(&a, 1), s(&a, 1), c(&a, 2)]
            .into_iter()
            .collect();
        let ops = [(a, Value::from(1))];
        assert!(is_xable_search(&h, &ops, SearchBudget::default()).is_reached());
    }

    #[test]
    fn duplicated_completions_with_same_output_are_xable() {
        let a = idem("a");
        let h: History = [s(&a, 1), c(&a, 2), s(&a, 1), c(&a, 2)]
            .into_iter()
            .collect();
        let ops = [(a, Value::from(1))];
        assert!(is_xable_search(&h, &ops, SearchBudget::default()).is_reached());
    }

    #[test]
    fn disagreeing_outputs_are_not_xable() {
        let a = idem("a");
        let h: History = [s(&a, 1), c(&a, 2), s(&a, 1), c(&a, 3)]
            .into_iter()
            .collect();
        let ops = [(a, Value::from(1))];
        assert_eq!(
            is_xable_search(&h, &ops, SearchBudget::default()),
            SearchResult::Exhausted
        );
    }

    #[test]
    fn never_executed_action_is_not_xable() {
        let a = idem("a");
        let ops = [(a, Value::from(1))];
        assert_eq!(
            is_xable_search(&History::empty(), &ops, SearchBudget::default()),
            SearchResult::Exhausted
        );
    }

    #[test]
    fn cancelled_then_retried_undoable_action_is_xable() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        // attempt 1 fails, is cancelled; attempt 2 succeeds and commits.
        let h: History = [
            snil(&u, 1),
            snil(&cancel, 1),
            cnil(&cancel),
            snil(&u, 1),
            c(&u, 7),
            snil(&commit, 1),
            cnil(&commit),
        ]
        .into_iter()
        .collect();
        let ops = [(u, Value::from(1))];
        assert!(is_xable_search(&h, &ops, SearchBudget::default()).is_reached());
    }

    #[test]
    fn uncommitted_undoable_action_is_not_xable() {
        let u = undo("u");
        let h: History = [snil(&u, 1), c(&u, 7)].into_iter().collect();
        let ops = [(u.clone(), Value::from(1))];
        assert_eq!(
            is_xable_search(&h, &ops, SearchBudget::default()),
            SearchResult::Exhausted
        );
    }

    #[test]
    fn cancelled_and_never_retried_is_not_xable_but_erases() {
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let h: History = [snil(&u, 1), snil(&cancel, 1), cnil(&cancel)]
            .into_iter()
            .collect();
        // Not x-able with respect to (u, 1)…
        let ops = [(u.clone(), Value::from(1))];
        assert_eq!(
            is_xable_search(&h, &ops, SearchBudget::default()),
            SearchResult::Exhausted
        );
        // …but reduces to the empty history (the R3 "n-1" case).
        let r = search_reduction(&h, History::is_empty, 0, SearchBudget::default());
        assert!(r.is_reached());
    }

    #[test]
    fn sequence_of_two_requests_reduces_in_order() {
        let a = idem("a");
        let b = idem("b");
        // b's retry interleaves with a's success; final order a then b.
        let h: History = [s(&a, 1), s(&b, 2), c(&a, 10), s(&b, 2), c(&b, 20)]
            .into_iter()
            .collect();
        let ops = [(a.clone(), Value::from(1)), (b.clone(), Value::from(2))];
        assert!(is_xable_search(&h, &ops, SearchBudget::default()).is_reached());
        // The reversed op order is not satisfiable.
        let rev = [(b, Value::from(2)), (a, Value::from(1))];
        assert_eq!(
            is_xable_search(&h, &rev, SearchBudget::default()),
            SearchResult::Exhausted
        );
    }

    #[test]
    fn commit_after_cancel_is_not_xable() {
        // The effect was cancelled, then a stray commit arrived: the
        // attempt/cancel pair cannot erase (commit interleaves at the
        // history level) and no second attempt exists.
        let u = undo("u");
        let cancel = u.cancel().unwrap();
        let commit = u.commit().unwrap();
        let h: History = [
            snil(&u, 1),
            c(&u, 7),
            snil(&commit, 1),
            cnil(&commit),
            snil(&cancel, 1),
            cnil(&cancel),
        ]
        .into_iter()
        .collect();
        let ops = [(u, Value::from(1))];
        // The cancel events are stuck: the history cannot reduce to the
        // 4-event failure-free form.
        assert_eq!(
            is_xable_search(&h, &ops, SearchBudget::default()),
            SearchResult::Exhausted
        );
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let a = idem("a");
        let mut events = Vec::new();
        for _ in 0..8 {
            events.push(s(&a, 1));
            events.push(c(&a, 2));
        }
        let h = History::from_events(events);
        let tiny = SearchBudget {
            max_expansions: 1,
            max_visited: 2,
        };
        let ops = [(idem("zzz"), Value::from(1))];
        assert_eq!(
            is_xable_search(&h, &ops, tiny),
            SearchResult::BudgetExceeded
        );
    }

    #[test]
    fn search_goal_on_initial_history() {
        let h = History::empty();
        let r = search_reduction(&h, History::is_empty, 0, SearchBudget::default());
        assert_eq!(r, SearchResult::Reached(History::empty()));
    }
}
