//! The x-able predicate (§3.2, eq. 23) and its decision procedures.
//!
//! A history `h` is *x-able* relative to an action/input pair — or, more
//! generally, a sequence of such pairs (§4, R3) — if it can be reduced under
//! the ⇒ relation of Fig. 4 to a failure-free history of that sequence.
//!
//! Two deciders are provided:
//!
//! * [`search`] — the reference semantics: an exhaustive breadth-first
//!   exploration of the reduction closure. Complete (up to an explicit
//!   budget), exponential in the worst case.
//! * [`fast`] — a polynomial checker for the class of histories produced by
//!   retry-based replication protocols. It decomposes the history into
//!   per-request groups, decides each group with a (small, bounded) search,
//!   and checks the cross-group ordering. It answers
//!   [`Verdict::Unknown`] when a history falls outside its class; the
//!   property tests in the crate cross-validate it against [`search`].

pub mod fast;
pub mod search;

pub use fast::{check, check_request_sequence, Verdict};
pub use search::{is_xable_search, search_reduction, SearchBudget, SearchResult};

use crate::action::ActionId;
use crate::history::History;
use crate::value::Value;

/// The single-action x-able predicate `x-able(a,iv)(h)` of eq. 23, decided
/// by exhaustive search with a default budget.
///
/// Suitable for the small histories of unit tests and examples; for protocol
/// traces prefer [`fast::check`].
///
/// # Examples
///
/// ```
/// use xability_core::{xable, ActionId, ActionName, Event, History, Value};
///
/// let a = ActionId::base(ActionName::idempotent("ping"));
/// // A failed attempt followed by a successful retry is x-able.
/// let h: History = [
///     Event::start(a.clone(), Value::Nil),
///     Event::start(a.clone(), Value::Nil),
///     Event::complete(a.clone(), Value::from("pong")),
/// ]
/// .into_iter()
/// .collect();
/// assert!(xable::is_xable(&h, &a, &Value::Nil));
/// ```
pub fn is_xable(h: &History, action: &ActionId, input: &Value) -> bool {
    let ops = [(action.clone(), input.clone())];
    matches!(
        is_xable_search(h, &ops, SearchBudget::default()),
        SearchResult::Reached(_)
    )
}
