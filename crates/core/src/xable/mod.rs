//! The x-able predicate (§3.2, eq. 23) and its decision procedures.
//!
//! A history `h` is *x-able* relative to an action/input pair — or, more
//! generally, a sequence of such pairs (§4, R3) — if it can be reduced under
//! the ⇒ relation of Fig. 4 to a failure-free history of that sequence.
//!
//! All deciders share one API: the [`Checker`] trait and the unified
//! [`Verdict`] type (defined in [`checker`]). Three batch deciders are
//! provided, plus an online one:
//!
//! * [`SearchChecker`] — the reference semantics: an exhaustive
//!   breadth-first exploration of the reduction closure. Complete (up to an
//!   explicit [`SearchBudget`]), exponential in the worst case.
//! * [`FastChecker`] — a polynomial checker for the class of histories
//!   produced by retry-based replication protocols. It decomposes the
//!   history into per-request groups, decides each group with a (small,
//!   bounded) search, and checks the cross-group ordering. It answers
//!   [`Verdict::Unknown`] when a history falls outside its class; the
//!   property tests in the crate cross-validate it against the search.
//! * [`TieredChecker`] — the fast→search escalation policy callers used to
//!   hand-roll, with per-tier budgets.
//! * [`IncrementalChecker`] — the online decider: `push(event)` in
//!   amortized O(1), a verdict at any prefix, agreeing with
//!   [`FastChecker`] by construction (it runs the same engine with its
//!   per-group state maintained across pushes). Its storage-free core,
//!   [`IncrementalState`], is a cursor over an event stream owned by
//!   someone else (a shared trace store), for monitoring without a
//!   second copy of the trace.
//!
//! The submodules [`search`] and [`fast`] hold the respective engines.

pub mod checker;
pub mod fast;
pub mod incremental;
pub mod search;

pub use checker::{Checker, FastChecker, SearchChecker, TieredChecker, Verdict, Witness};
pub use incremental::{GroupPrime, IncrementalChecker, IncrementalState};
pub use search::{is_xable_search, search_reduction, SearchBudget, SearchResult};
