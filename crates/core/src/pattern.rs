//! History patterns and the matching relation ⊨ (§2.4, Fig. 1–2).
//!
//! The paper's abstract syntax:
//!
//! ```text
//! sp ::= [a, iv, ov] | ?[a, iv, ov]
//! p  ::= sp | sp₁ ‖ₕ sp₂
//! ```
//!
//! A required simple pattern `[a, iv, ov]` matches the two-event history of
//! a failure-free execution (rule 5). A maybe pattern `?[a, iv, ov]` matches
//! the empty history, a lone start event, or a full execution (rules 6–8).
//! The interleaved pattern `sp₁ ‖ₕ sp₂` matches a window containing a match
//! of `sp₁`, a match of `sp₂` and arbitrary interleaved events `h`, such that
//! the window's first event comes from the `sp₁` match (when non-empty) and
//! the window's last event is the last event of the `sp₂` match (rules 9–11).
//!
//! # Implemented interleaving semantics
//!
//! Rules (9)–(11) as literally written require either the two matches to be
//! adjacent blocks (9), or — for split matches — use `first`/`second`
//! decompositions (10)–(11) that, for a *singleton* `sp₁` match, would
//! duplicate the event value. We implement the following equivalent
//! formulation over event *positions*:
//!
//! * the `sp₂` match is a pair of positions `s₂ < c₂` with `c₂` the last
//!   position of the window;
//! * the `sp₁` match is empty, or a start at the window's first position,
//!   or a start at the window's first position plus a later completion
//!   `c₁ ∉ {s₂, c₂}`;
//! * everything else in the window is the interleaved history `h`.
//!
//! This formulation is equivalent to the paper's rules *with respect to the
//! reduction closure ⇒\** (which is the only consumer of matching): any
//! relaxed match factors into a "compaction" step (an interleaved match with
//! empty `sp₁`) followed by a literal rule-(9)/(11) match. The equivalence is
//! exercised by tests in this module and by the property tests in
//! `tests/pattern_props.rs`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::action::ActionId;
use crate::event::Event;
use crate::history::History;
use crate::value::Value;

/// A simple pattern `[a, iv, ov]` (required) or `?[a, iv, ov]` (maybe).
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName, Event, History, SimplePattern, Value};
///
/// let a = ActionId::base(ActionName::idempotent("get"));
/// let p = SimplePattern::required(a.clone(), Value::from(1), Value::from(42));
/// let h: History = [
///     Event::start(a.clone(), Value::from(1)),
///     Event::complete(a, Value::from(42)),
/// ]
/// .into_iter()
/// .collect();
/// assert!(p.matches(&h));
/// assert!(!p.matches(&History::empty()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimplePattern {
    required: bool,
    action: ActionId,
    input: Value,
    output: Value,
}

impl SimplePattern {
    /// The required pattern `[a, iv, ov]`: matches exactly a failure-free
    /// execution.
    pub fn required(action: ActionId, input: Value, output: Value) -> Self {
        SimplePattern {
            required: true,
            action,
            input,
            output,
        }
    }

    /// The maybe pattern `?[a, iv, ov]`: matches a possibly-failed execution.
    pub fn maybe(action: ActionId, input: Value, output: Value) -> Self {
        SimplePattern {
            required: false,
            action,
            input,
            output,
        }
    }

    /// Returns `true` for required patterns `[a, iv, ov]`.
    pub fn is_required(&self) -> bool {
        self.required
    }

    /// The action of the pattern.
    pub fn action(&self) -> &ActionId {
        &self.action
    }

    /// The input value `iv`.
    pub fn input(&self) -> &Value {
        &self.input
    }

    /// The output value `ov`.
    pub fn output(&self) -> &Value {
        &self.output
    }

    /// The start event `S(a, iv)` this pattern expects.
    pub fn start_event(&self) -> Event {
        Event::start(self.action.clone(), self.input.clone())
    }

    /// The completion event `C(a, ov)` this pattern expects.
    pub fn completion_event(&self) -> Event {
        Event::complete(self.action.clone(), self.output.clone())
    }

    /// The matching relation ⊨ restricted to simple patterns
    /// (rules 5–8 of Fig. 2).
    pub fn matches(&self, h: &History) -> bool {
        let s = self.start_event();
        let c = self.completion_event();
        if self.required {
            // Rule (5): S(a,iv) C(a,ov) ⊨ [a,iv,ov]
            h.len() == 2 && h[0] == s && h[1] == c
        } else {
            // Rules (6)-(8): Λ, S(a,iv), or S(a,iv) C(a,ov) ⊨ ?[a,iv,ov]
            match h.len() {
                0 => true,
                1 => h[0] == s,
                2 => h[0] == s && h[1] == c,
                _ => false,
            }
        }
    }
}

impl fmt::Display for SimplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = if self.required { "" } else { "?" };
        write!(f, "{q}[{}, {}, {}]", self.action, self.input, self.output)
    }
}

/// A pattern `p ::= sp | sp₁ ‖ₕ sp₂` (Fig. 1).
///
/// The interleaved history `h` of `sp₁ ‖ₕ sp₂` is existential: matching a
/// history against an interleaved pattern *produces* the interleaving as part
/// of the [`InterleavedWitness`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// A simple pattern.
    Simple(SimplePattern),
    /// The interleaved pattern `sp₁ ‖ₕ sp₂`.
    Interleaved(SimplePattern, SimplePattern),
}

impl Pattern {
    /// The matching relation ⊨ (Fig. 2).
    ///
    /// # Examples
    ///
    /// ```
    /// use xability_core::{ActionId, ActionName, Event, History, Pattern, SimplePattern, Value};
    ///
    /// let a = ActionId::base(ActionName::idempotent("get"));
    /// let iv = Value::from(1);
    /// let ov = Value::from(42);
    /// // A retried idempotent action: failed attempt, then success.
    /// let h: History = [
    ///     Event::start(a.clone(), iv.clone()),
    ///     Event::start(a.clone(), iv.clone()),
    ///     Event::complete(a.clone(), ov.clone()),
    /// ]
    /// .into_iter()
    /// .collect();
    /// let p = Pattern::Interleaved(
    ///     SimplePattern::maybe(a.clone(), iv.clone(), ov.clone()),
    ///     SimplePattern::required(a, iv, ov),
    /// );
    /// assert!(p.matches(&h));
    /// ```
    pub fn matches(&self, h: &History) -> bool {
        match self {
            Pattern::Simple(sp) => sp.matches(h),
            Pattern::Interleaved(sp1, sp2) => !interleaved_witnesses(h, sp1, sp2).is_empty(),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Simple(sp) => write!(f, "{sp}"),
            Pattern::Interleaved(sp1, sp2) => write!(f, "({sp1} ‖ {sp2})"),
        }
    }
}

/// A witness that a window history matches `sp₁ ‖ₕ sp₂`: the positions of
/// the `sp₁` and `sp₂` matches within the window. All remaining positions
/// form the interleaved history `h`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleavedWitness {
    /// Positions of the `sp₁` match: `[]`, `[s₁]`, or `[s₁, c₁]`.
    pub left: Vec<usize>,
    /// Position of the `sp₂` start event.
    pub right_start: usize,
    /// Position of the `sp₂` completion event (always the window's last).
    pub right_complete: usize,
}

impl InterleavedWitness {
    /// The positions of the interleaved history `h` (everything not matched
    /// by `sp₁` or `sp₂`), ascending.
    pub fn interleaved_positions(&self, window_len: usize) -> Vec<usize> {
        (0..window_len)
            .filter(|i| {
                !self.left.contains(i) && *i != self.right_start && *i != self.right_complete
            })
            .collect()
    }

    /// Extracts the interleaved history `h` from the window.
    pub fn interleaved_history(&self, window: &History) -> History {
        window.select(&self.interleaved_positions(window.len()))
    }
}

/// Enumerates all witnesses that `window ⊨ (sp1 ‖ₕ sp2)` under the
/// position-based semantics documented at the module level.
///
/// The right pattern must be required for the enumeration to be non-empty in
/// the cases used by the reduction rules (rules 18–20 always have a required
/// right pattern); a maybe right pattern is matched as if required, since the
/// paper's reduction rules never need the degenerate cases.
pub fn interleaved_witnesses(
    window: &History,
    sp1: &SimplePattern,
    sp2: &SimplePattern,
) -> Vec<InterleavedWitness> {
    let n = window.len();
    if n < 2 {
        return Vec::new();
    }
    let right_start_ev = sp2.start_event();
    let right_complete_ev = sp2.completion_event();
    let left_start_ev = sp1.start_event();
    let left_complete_ev = sp1.completion_event();

    let mut out = Vec::new();
    // The window's last event must be sp2's completion.
    let c2 = n - 1;
    if window[c2] != right_complete_ev {
        return out;
    }
    for s2 in 0..c2 {
        if window[s2] != right_start_ev {
            continue;
        }
        // Case 1: empty sp1 match (only for maybe patterns).
        if !sp1.is_required() {
            out.push(InterleavedWitness {
                left: vec![],
                right_start: s2,
                right_complete: c2,
            });
        }
        // Cases 2-3 need sp1's start at the window's first position.
        if window[0] != left_start_ev || s2 == 0 {
            continue;
        }
        // Case 2: singleton sp1 match (start only; maybe patterns only).
        if !sp1.is_required() {
            out.push(InterleavedWitness {
                left: vec![0],
                right_start: s2,
                right_complete: c2,
            });
        }
        // Case 3: full sp1 match: start at 0, completion at any c1 ∉ {0, s2, c2}.
        for c1 in 1..c2 {
            if c1 == s2 {
                continue;
            }
            if window[c1] == left_complete_ev {
                out.push(InterleavedWitness {
                    left: vec![0, c1],
                    right_start: s2,
                    right_complete: c2,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionName;

    fn idem(name: &str) -> ActionId {
        ActionId::base(ActionName::idempotent(name))
    }

    fn s(a: &ActionId, v: i64) -> Event {
        Event::start(a.clone(), Value::from(v))
    }

    fn c(a: &ActionId, v: i64) -> Event {
        Event::complete(a.clone(), Value::from(v))
    }

    fn h(events: Vec<Event>) -> History {
        History::from_events(events)
    }

    #[test]
    fn rule_5_required_matches_exact_execution() {
        let a = idem("a");
        let p = SimplePattern::required(a.clone(), Value::from(1), Value::from(2));
        assert!(p.matches(&h(vec![s(&a, 1), c(&a, 2)])));
        assert!(!p.matches(&History::empty()));
        assert!(!p.matches(&h(vec![s(&a, 1)])));
        assert!(!p.matches(&h(vec![s(&a, 1), c(&a, 3)]))); // wrong output
        assert!(!p.matches(&h(vec![c(&a, 2), s(&a, 1)]))); // wrong order
        assert!(!p.matches(&h(vec![s(&a, 1), c(&a, 2), s(&a, 1)]))); // extra event
    }

    #[test]
    fn rules_6_to_8_maybe_matches_partial_executions() {
        let a = idem("a");
        let p = SimplePattern::maybe(a.clone(), Value::from(1), Value::from(2));
        assert!(p.matches(&History::empty())); // rule 6
        assert!(p.matches(&h(vec![s(&a, 1)]))); // rule 7
        assert!(p.matches(&h(vec![s(&a, 1), c(&a, 2)]))); // rule 8
        assert!(!p.matches(&h(vec![c(&a, 2)]))); // lone completion is not a match
        assert!(!p.matches(&h(vec![s(&a, 2)]))); // wrong input
        assert!(!p.matches(&h(vec![s(&a, 1), c(&a, 9)]))); // wrong output
    }

    #[test]
    fn interleaved_sequential_match_rule_9() {
        let a = idem("a");
        let iv = Value::from(1);
        let ov = Value::from(2);
        // S1 C1 S2 C2 — two back-to-back executions.
        let hist = h(vec![s(&a, 1), c(&a, 2), s(&a, 1), c(&a, 2)]);
        let sp1 = SimplePattern::maybe(a.clone(), iv.clone(), ov.clone());
        let sp2 = SimplePattern::required(a.clone(), iv, ov);
        let ws = interleaved_witnesses(&hist, &sp1, &sp2);
        // Among the witnesses: the full left match [0,1] with right (2,3).
        assert!(ws
            .iter()
            .any(|w| w.left == vec![0, 1] && w.right_start == 2 && w.right_complete == 3));
        // The interleaved history for that witness is empty.
        let w = ws
            .iter()
            .find(|w| w.left == vec![0, 1])
            .expect("witness exists");
        assert!(w.interleaved_history(&hist).is_empty());
    }

    #[test]
    fn interleaved_overlapping_match_rule_11() {
        let a = idem("a");
        let b = idem("b");
        let iv = Value::from(1);
        let ov = Value::from(2);
        // S1 junk S2 C1 C2 — overlapping executions with junk interleaved.
        let hist = h(vec![s(&a, 1), s(&b, 9), s(&a, 1), c(&a, 2), c(&a, 2)]);
        let sp1 = SimplePattern::maybe(a.clone(), iv.clone(), ov.clone());
        let sp2 = SimplePattern::required(a.clone(), iv, ov);
        let ws = interleaved_witnesses(&hist, &sp1, &sp2);
        // Overlapping witness: left S at 0, left C at 3, right (2, 4).
        let w = ws
            .iter()
            .find(|w| w.left == vec![0, 3] && w.right_start == 2)
            .expect("overlap witness");
        assert_eq!(w.right_complete, 4);
        let junk = w.interleaved_history(&hist);
        assert_eq!(junk.events(), &[s(&b, 9)]);
    }

    #[test]
    fn containment_is_not_a_match() {
        // S1 S2 C2 C1 — the successful execution strictly inside the failed
        // attempt. The window's last event (C1) would have to belong to sp2,
        // so sp2's completion is C1 and sp2's start... there is no witness
        // with sp1 = [0, 3]: position 3 is the right completion.
        let a = idem("a");
        let iv = Value::from(1);
        let ov = Value::from(2);
        let hist = h(vec![s(&a, 1), s(&a, 1), c(&a, 2), c(&a, 2)]);
        let sp1 = SimplePattern::maybe(a.clone(), iv.clone(), ov.clone());
        let sp2 = SimplePattern::required(a.clone(), iv, ov);
        for w in interleaved_witnesses(&hist, &sp1, &sp2) {
            // No witness may claim a left completion after the right
            // completion — right_complete is always last.
            assert_eq!(w.right_complete, 3);
            if w.left.len() == 2 {
                assert!(w.left[1] < 3);
            }
        }
    }

    #[test]
    fn empty_left_match_allows_leading_junk() {
        let a = idem("a");
        let b = idem("b");
        let hist = h(vec![s(&b, 9), s(&a, 1), c(&b, 9), c(&a, 2)]);
        let sp1 = SimplePattern::maybe(a.clone(), Value::from(1), Value::from(2));
        let sp2 = SimplePattern::required(a.clone(), Value::from(1), Value::from(2));
        let ws = interleaved_witnesses(&hist, &sp1, &sp2);
        let w = ws.iter().find(|w| w.left.is_empty()).expect("empty-left");
        assert_eq!((w.right_start, w.right_complete), (1, 3));
        let junk = w.interleaved_history(&hist);
        assert_eq!(junk.events(), &[s(&b, 9), c(&b, 9)]);
    }

    #[test]
    fn required_left_forbids_empty_and_singleton_matches() {
        let a = idem("a");
        let hist = h(vec![s(&a, 1), s(&a, 1), c(&a, 2)]);
        let sp1 = SimplePattern::required(a.clone(), Value::from(1), Value::from(2));
        let sp2 = SimplePattern::required(a.clone(), Value::from(1), Value::from(2));
        let ws = interleaved_witnesses(&hist, &sp1, &sp2);
        assert!(ws.iter().all(|w| w.left.len() == 2));
        assert!(ws.is_empty(), "no full left execution exists: {ws:?}");
    }

    #[test]
    fn window_last_event_must_be_right_completion() {
        let a = idem("a");
        let hist = h(vec![s(&a, 1), c(&a, 2), s(&a, 1)]);
        let sp1 = SimplePattern::maybe(a.clone(), Value::from(1), Value::from(2));
        let sp2 = SimplePattern::required(a.clone(), Value::from(1), Value::from(2));
        assert!(interleaved_witnesses(&hist, &sp1, &sp2).is_empty());
    }

    #[test]
    fn pattern_matches_dispatches() {
        let a = idem("a");
        let hist = h(vec![s(&a, 1), c(&a, 2)]);
        let sp = SimplePattern::required(a.clone(), Value::from(1), Value::from(2));
        assert!(Pattern::Simple(sp.clone()).matches(&hist));
        let longer = h(vec![s(&a, 1), s(&a, 1), c(&a, 2)]);
        let p = Pattern::Interleaved(
            SimplePattern::maybe(a.clone(), Value::from(1), Value::from(2)),
            sp,
        );
        assert!(p.matches(&longer));
        assert!(!p.matches(&h(vec![s(&a, 1)])));
    }

    #[test]
    fn witness_positions_partition_the_window() {
        let a = idem("a");
        let b = idem("b");
        let hist = h(vec![s(&a, 1), s(&b, 9), c(&a, 2), s(&a, 1), c(&a, 2)]);
        let sp1 = SimplePattern::maybe(a.clone(), Value::from(1), Value::from(2));
        let sp2 = SimplePattern::required(a.clone(), Value::from(1), Value::from(2));
        for w in interleaved_witnesses(&hist, &sp1, &sp2) {
            let mut all: Vec<usize> = w.left.clone();
            all.push(w.right_start);
            all.push(w.right_complete);
            all.extend(w.interleaved_positions(hist.len()));
            all.sort_unstable();
            all.dedup();
            assert_eq!(all, (0..hist.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn display_formats() {
        let a = idem("a");
        let sp = SimplePattern::maybe(a.clone(), Value::from(1), Value::from(2));
        assert_eq!(format!("{sp}"), "?[aⁱ, 1, 2]");
        let rp = SimplePattern::required(a, Value::from(1), Value::from(2));
        assert_eq!(format!("{rp}"), "[aⁱ, 1, 2]");
        let p = Pattern::Interleaved(sp, rp);
        assert!(format!("{p}").contains('‖'));
    }
}
