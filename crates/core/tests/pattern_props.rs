//! Property tests for the pattern-matching relation ⊨ (Fig. 1–2).

use proptest::prelude::*;

use xability_core::pattern::interleaved_witnesses;
use xability_core::{ActionId, ActionName, Event, History, SimplePattern, Value};

fn alphabet() -> Vec<Event> {
    let a = ActionId::base(ActionName::idempotent("a"));
    let b = ActionId::base(ActionName::idempotent("b"));
    vec![
        Event::start(a.clone(), Value::from(1)),
        Event::complete(a, Value::from(2)),
        Event::start(b.clone(), Value::from(3)),
        Event::complete(b, Value::from(4)),
    ]
}

fn arb_history(max_len: usize) -> impl Strategy<Value = History> {
    let alpha = alphabet();
    prop::collection::vec(0..alpha.len(), 0..max_len).prop_map(move |idx| {
        History::from_events(idx.into_iter().map(|i| alpha[i].clone()).collect())
    })
}

fn pat(required: bool) -> SimplePattern {
    let a = ActionId::base(ActionName::idempotent("a"));
    if required {
        SimplePattern::required(a, Value::from(1), Value::from(2))
    } else {
        SimplePattern::maybe(a, Value::from(1), Value::from(2))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Rule hierarchy: whatever matches the required pattern also matches
    /// the maybe pattern (rules 5 vs 8).
    #[test]
    fn required_match_implies_maybe_match(h in arb_history(4)) {
        if pat(true).matches(&h) {
            prop_assert!(pat(false).matches(&h));
        }
    }

    /// Simple patterns never match histories longer than two events.
    #[test]
    fn simple_patterns_bound_history_length(h in arb_history(6)) {
        if h.len() > 2 {
            prop_assert!(!pat(true).matches(&h));
            prop_assert!(!pat(false).matches(&h));
        }
    }

    /// Witness sanity: positions are in range, distinct, the right
    /// completion is the window's last event, and a non-empty left match
    /// starts the window.
    #[test]
    fn witnesses_are_well_formed(h in arb_history(8)) {
        let sp1 = pat(false);
        let sp2 = pat(true);
        for w in interleaved_witnesses(&h, &sp1, &sp2) {
            prop_assert_eq!(w.right_complete, h.len() - 1);
            prop_assert!(w.right_start < w.right_complete);
            let mut seen = vec![w.right_start, w.right_complete];
            for &l in &w.left {
                prop_assert!(l < h.len());
                prop_assert!(!seen.contains(&l), "duplicate position {l}");
                seen.push(l);
            }
            if let Some(&first) = w.left.first() {
                prop_assert_eq!(first, 0, "non-empty left match must start the window");
            }
            // Interleaved positions partition the window with the matches.
            let junk = w.interleaved_positions(h.len());
            let total = junk.len() + w.left.len() + 2;
            prop_assert_eq!(total, h.len());
        }
    }

    /// The empty history matches the maybe pattern and nothing else here
    /// (rule 6).
    #[test]
    fn empty_history_matches_only_maybe(_x in 0..1u8) {
        let empty = History::empty();
        prop_assert!(pat(false).matches(&empty));
        prop_assert!(!pat(true).matches(&empty));
        prop_assert!(interleaved_witnesses(&empty, &pat(false), &pat(true)).is_empty());
    }

    /// Matching is stable under appending junk *before* the window only if
    /// re-matched as a larger window: witnesses of `h` shift by the prefix
    /// length when junk is prepended.
    #[test]
    fn witnesses_shift_under_prefix(h in arb_history(6)) {
        let sp1 = pat(false);
        let sp2 = pat(true);
        let junk = Event::start(
            ActionId::base(ActionName::idempotent("b")),
            Value::from(3),
        );
        let mut prefixed_events = vec![junk];
        prefixed_events.extend(h.iter().cloned());
        let prefixed = History::from_events(prefixed_events);
        let base = interleaved_witnesses(&h, &sp1, &sp2);
        let shifted = interleaved_witnesses(&prefixed, &sp1, &sp2);
        // Every empty-left witness of h appears shifted by one in the
        // prefixed history (the junk is absorbed into the interleaving).
        for w in base.iter().filter(|w| w.left.is_empty()) {
            let found = shifted.iter().any(|s| {
                s.left.is_empty()
                    && s.right_start == w.right_start + 1
                    && s.right_complete == w.right_complete + 1
            });
            prop_assert!(found, "witness lost under prefixing");
        }
    }
}
