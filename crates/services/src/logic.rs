//! The business-logic interface of an external service.
//!
//! The service *framework* ([`crate::core::ServiceCore`]) owns the semantics
//! that the x-ability theory relies on — request-keyed deduplication for
//! idempotent actions, tentative effects with commit/cancel for undoable
//! actions, fault injection, and event/effect recording. A
//! [`BusinessLogic`] implementation only supplies the domain behaviour:
//! what an action does to domain state and what it returns.
//!
//! Domain-level rejections (say, insufficient funds) are *outputs*, not
//! failures: an execution that rejects has executed successfully and
//! returned a rejection value. Only transient faults (injected by the
//! framework) and protocol-state conflicts (cancel after commit, …) are
//! failures. This matches the paper's model, where action results are
//! values and "every action is eventually successful" (§5.2).

use std::any::Any;
use std::fmt;

use rand::rngs::StdRng;
use xability_core::{ActionName, Value};

/// Domain behaviour of an external service.
///
/// Implementations may be non-deterministic (draw from `rng`); determinism
/// of the overall simulation is preserved because the rng is seeded.
///
/// The framework guarantees:
///
/// * [`BusinessLogic::apply`] is called at most once per idempotent
///   `(action, key)` (deduplication) and at most once per undoable
///   `(action, key, round)` (tentative application);
/// * [`BusinessLogic::revert`] / [`BusinessLogic::finalize`] are called at
///   most once per tentative application, and only after it.
pub trait BusinessLogic: Any {
    /// A short service name used in ledger records.
    fn name(&self) -> &str;

    /// The actions this service exports, with their kinds.
    fn actions(&self) -> Vec<ActionName>;

    /// Applies the effect of `action` and returns its output value.
    ///
    /// For idempotent actions this is the permanent effect; for undoable
    /// actions it is the tentative effect (to be reverted or finalized
    /// later). Domain rejections are encoded in the returned value, with
    /// the tentative state acting as a no-op.
    fn apply(
        &mut self,
        action: &ActionName,
        key: &Value,
        payload: &Value,
        rng: &mut StdRng,
    ) -> Value;

    /// Reverts a tentative effect (undoable actions only).
    fn revert(&mut self, action: &ActionName, key: &Value, payload: &Value) {
        let _ = (action, key, payload);
    }

    /// Makes a tentative effect permanent (undoable actions only).
    fn finalize(&mut self, action: &ActionName, key: &Value, payload: &Value) {
        let _ = (action, key, payload);
    }

    /// The `PossibleReply` oracle of §3.4 for requirement R4: is `reply` a
    /// value this service could possibly return for `action` on `payload`?
    fn is_possible_reply(&self, action: &ActionName, payload: &Value, reply: &Value) -> bool {
        let _ = (action, payload);
        let _ = reply;
        true
    }
}

impl fmt::Debug for dyn BusinessLogic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BusinessLogic({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Null;

    impl BusinessLogic for Null {
        fn name(&self) -> &str {
            "null"
        }
        fn actions(&self) -> Vec<ActionName> {
            vec![]
        }
        fn apply(&mut self, _: &ActionName, _: &Value, _: &Value, _: &mut StdRng) -> Value {
            Value::Nil
        }
    }

    #[test]
    fn default_hooks_are_no_ops() {
        let mut null = Null;
        let a = ActionName::undoable("x");
        null.revert(&a, &Value::Nil, &Value::Nil);
        null.finalize(&a, &Value::Nil, &Value::Nil);
        assert!(null.is_possible_reply(&a, &Value::Nil, &Value::from(3)));
    }

    #[test]
    fn dyn_debug_mentions_name() {
        let null: Box<dyn BusinessLogic> = Box::new(Null);
        assert!(format!("{null:?}").contains("null"));
    }
}
