//! The side-effect ledger: the materialized "hypothetical event observer"
//! of §2.2.
//!
//! The x-ability theory reasons about the history of start/completion events
//! of action executions and about externally visible side-effects. The
//! ledger records both, in global observation order, so that after a
//! simulation run the harness can (a) hand the formal [`History`] to the
//! x-ability checkers and (b) verify exactly-once side-effect semantics
//! directly against effect records.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use xability_core::xable::IncrementalChecker;
use xability_core::{ActionName, Event, History, Value};
use xability_sim::SimTime;

/// What kind of externally visible effect a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EffectKind {
    /// An idempotent action's effect was applied (permanent immediately).
    Applied,
    /// An undoable action's effect was applied tentatively.
    Tentative,
    /// A tentative effect was reverted by a cancellation.
    Reverted,
    /// A tentative effect was made permanent by a commit.
    Committed,
}

impl fmt::Display for EffectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EffectKind::Applied => "applied",
            EffectKind::Tentative => "tentative",
            EffectKind::Reverted => "reverted",
            EffectKind::Committed => "committed",
        };
        write!(f, "{s}")
    }
}

/// A formal event observation with provenance metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedEvent {
    /// The formal event (what the theory sees).
    pub event: Event,
    /// When it was observed.
    pub at: SimTime,
    /// Which service observed it.
    pub service: String,
}

/// An externally visible side-effect record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectRecord {
    /// The action whose execution had the effect.
    pub action: ActionName,
    /// The logical request key the effect belongs to.
    pub key: Value,
    /// The protocol round the effect belongs to (0 for idempotent actions).
    pub round: u64,
    /// The kind of effect.
    pub kind: EffectKind,
    /// When the effect happened.
    pub at: SimTime,
}

/// The global ledger of events, effects, and detected service-level protocol
/// violations.
///
/// One ledger is shared (via [`SharedLedger`]) by every external service in
/// a simulation; append order equals simulated-time order because the
/// simulator is single-threaded and time is monotone.
#[derive(Debug, Default)]
pub struct Ledger {
    events: Vec<RecordedEvent>,
    effects: Vec<EffectRecord>,
    violations: Vec<String>,
    monitor: Option<IncrementalChecker>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records a formal event observation. When an online monitor is
    /// attached, the event is also pushed into it (amortized O(1)), so the
    /// R3 obligation is tracked *while* the run executes instead of by
    /// re-reducing the full history afterwards.
    pub fn record_event(&mut self, event: Event, at: SimTime, service: &str) {
        if let Some(monitor) = &mut self.monitor {
            monitor.push(event.clone());
        }
        self.events.push(RecordedEvent {
            event,
            at,
            service: service.to_owned(),
        });
    }

    /// Attaches an online R3 monitor. Events already recorded are replayed
    /// into it first, so attaching mid-run observes the same prefix a
    /// monitor attached at creation would have.
    ///
    /// At most one monitor may ever be attached: re-attaching would
    /// silently discard the previous monitor's declared request sequence
    /// and warm per-group state (debug builds assert against it; release
    /// builds keep the replacement semantics).
    pub fn attach_monitor(&mut self, mut monitor: IncrementalChecker) {
        debug_assert!(
            self.monitor.is_none(),
            "attach_monitor called on a ledger that already has a monitor; \
             the previous monitor's declared requests and warm group state \
             would be discarded"
        );
        for rec in &self.events {
            monitor.push(rec.event.clone());
        }
        self.monitor = Some(monitor);
    }

    /// The attached online monitor, if any.
    pub fn monitor(&self) -> Option<&IncrementalChecker> {
        self.monitor.as_ref()
    }

    /// Mutable access to the attached online monitor (for declaring the
    /// submitted requests as they become known).
    pub fn monitor_mut(&mut self) -> Option<&mut IncrementalChecker> {
        self.monitor.as_mut()
    }

    /// Records an externally visible effect.
    pub fn record_effect(
        &mut self,
        action: ActionName,
        key: Value,
        round: u64,
        kind: EffectKind,
        at: SimTime,
    ) {
        self.effects.push(EffectRecord {
            action,
            key,
            round,
            kind,
            at,
        });
    }

    /// Records a service-level protocol violation (e.g. commit after
    /// cancel). A correct replication protocol never triggers these; the
    /// baselines do.
    pub fn record_violation(&mut self, detail: impl Into<String>) {
        self.violations.push(detail.into());
    }

    /// The formal history of all recorded events, in observation order.
    pub fn history(&self) -> History {
        self.events.iter().map(|r| r.event.clone()).collect()
    }

    /// All recorded events with metadata.
    pub fn events(&self) -> &[RecordedEvent] {
        &self.events
    }

    /// All effect records.
    pub fn effects(&self) -> &[EffectRecord] {
        &self.effects
    }

    /// Detected protocol violations.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// How many times the effect of the idempotent action `(action, key)`
    /// was (re-)applied. Exactly-once semantics requires 1 for every
    /// successfully submitted request.
    pub fn applied_count(&self, action: &ActionName, key: &Value) -> usize {
        self.effects
            .iter()
            .filter(|e| {
                e.kind == EffectKind::Applied && &e.action == action && &e.key == key
            })
            .count()
    }

    /// How many rounds of the undoable action `(action, key)` were
    /// committed. Exactly-once semantics requires 1 for every successfully
    /// submitted request.
    pub fn committed_count(&self, action: &ActionName, key: &Value) -> usize {
        self.effects
            .iter()
            .filter(|e| {
                e.kind == EffectKind::Committed && &e.action == action && &e.key == key
            })
            .count()
    }

    /// How many tentative effects of `(action, key)` were left neither
    /// reverted nor committed (dangling holds — a liveness bug).
    pub fn dangling_tentative_count(&self, action: &ActionName, key: &Value) -> usize {
        let mut dangling = 0usize;
        for round in self
            .effects
            .iter()
            .filter(|e| &e.action == action && &e.key == key)
            .map(|e| e.round)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let of_round = |kind: EffectKind| {
                self.effects
                    .iter()
                    .filter(|e| {
                        &e.action == action && &e.key == key && e.round == round && e.kind == kind
                    })
                    .count()
            };
            let tentative = of_round(EffectKind::Tentative);
            let resolved = of_round(EffectKind::Reverted) + of_round(EffectKind::Committed);
            dangling += tentative.saturating_sub(resolved);
        }
        dangling
    }

    /// Checks exactly-once semantics for a set of successfully submitted
    /// logical requests, returning a human-readable description of every
    /// violation found.
    ///
    /// Each entry of `requests` is `(action, key)`; idempotence/undoability
    /// is taken from the [`ActionName`].
    pub fn exactly_once_violations(&self, requests: &[(ActionName, Value)]) -> Vec<String> {
        let mut out = Vec::new();
        for (action, key) in requests {
            if action.is_idempotent() {
                let n = self.applied_count(action, key);
                if n != 1 {
                    out.push(format!(
                        "idempotent request ({action}, {key}) applied its effect {n} times (want 1)"
                    ));
                }
            } else {
                let n = self.committed_count(action, key);
                if n != 1 {
                    out.push(format!(
                        "undoable request ({action}, {key}) committed {n} times (want 1)"
                    ));
                }
                let dangling = self.dangling_tentative_count(action, key);
                if dangling != 0 {
                    out.push(format!(
                        "undoable request ({action}, {key}) left {dangling} dangling tentative effect(s)"
                    ));
                }
            }
        }
        out.extend(self.violations.iter().cloned());
        out
    }
}

/// A ledger shared by every service of a (single-threaded) simulation.
pub type SharedLedger = Rc<RefCell<Ledger>>;

/// Creates a fresh shared ledger.
pub fn shared_ledger() -> SharedLedger {
    Rc::new(RefCell::new(Ledger::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xability_core::ActionId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn events_accumulate_in_order() {
        let mut ledger = Ledger::new();
        let a = ActionId::base(ActionName::idempotent("a"));
        ledger.record_event(Event::start(a.clone(), Value::from(1)), t(1), "svc");
        ledger.record_event(Event::complete(a.clone(), Value::from(2)), t(2), "svc");
        let h = ledger.history();
        assert_eq!(h.len(), 2);
        assert!(h[0].is_start());
        assert!(h[1].is_complete());
        assert_eq!(ledger.events()[0].service, "svc");
        assert_eq!(ledger.events()[1].at, t(2));
    }

    #[test]
    fn applied_and_committed_counts() {
        let mut ledger = Ledger::new();
        let idem = ActionName::idempotent("put");
        let undo = ActionName::undoable("xfer");
        ledger.record_effect(idem.clone(), Value::from(1), 0, EffectKind::Applied, t(1));
        ledger.record_effect(idem.clone(), Value::from(1), 0, EffectKind::Applied, t(2));
        ledger.record_effect(undo.clone(), Value::from(2), 1, EffectKind::Tentative, t(3));
        ledger.record_effect(undo.clone(), Value::from(2), 1, EffectKind::Committed, t(4));
        assert_eq!(ledger.applied_count(&idem, &Value::from(1)), 2);
        assert_eq!(ledger.applied_count(&idem, &Value::from(9)), 0);
        assert_eq!(ledger.committed_count(&undo, &Value::from(2)), 1);
        assert_eq!(ledger.dangling_tentative_count(&undo, &Value::from(2)), 0);
    }

    #[test]
    fn dangling_tentative_detection() {
        let mut ledger = Ledger::new();
        let undo = ActionName::undoable("xfer");
        ledger.record_effect(undo.clone(), Value::from(1), 1, EffectKind::Tentative, t(1));
        ledger.record_effect(undo.clone(), Value::from(1), 1, EffectKind::Reverted, t(2));
        ledger.record_effect(undo.clone(), Value::from(1), 2, EffectKind::Tentative, t(3));
        assert_eq!(ledger.dangling_tentative_count(&undo, &Value::from(1)), 1);
    }

    #[test]
    fn exactly_once_report() {
        let mut ledger = Ledger::new();
        let idem = ActionName::idempotent("put");
        let undo = ActionName::undoable("xfer");
        // put applied twice: violation. xfer committed once: fine.
        ledger.record_effect(idem.clone(), Value::from(1), 0, EffectKind::Applied, t(1));
        ledger.record_effect(idem.clone(), Value::from(1), 0, EffectKind::Applied, t(2));
        ledger.record_effect(undo.clone(), Value::from(2), 1, EffectKind::Tentative, t(3));
        ledger.record_effect(undo.clone(), Value::from(2), 1, EffectKind::Committed, t(4));
        ledger.record_violation("commit after cancel on xfer/7");
        let violations = ledger.exactly_once_violations(&[
            (idem, Value::from(1)),
            (undo, Value::from(2)),
        ]);
        assert_eq!(violations.len(), 2);
        assert!(violations[0].contains("2 times"));
        assert!(violations[1].contains("commit after cancel"));
    }

    #[test]
    fn monitor_tracks_events_online_and_replays_on_late_attach() {
        let mut ledger = Ledger::new();
        let a = ActionId::base(ActionName::idempotent("a"));
        // One event recorded *before* the monitor exists…
        ledger.record_event(Event::start(a.clone(), Value::from(1)), t(1), "svc");
        let mut monitor = IncrementalChecker::new();
        monitor.declare(a.clone(), Value::from(1));
        ledger.attach_monitor(monitor);
        // …and one after: the monitor must see both.
        ledger.record_event(Event::complete(a.clone(), Value::from(2)), t(2), "svc");
        let m = ledger.monitor().expect("attached");
        assert_eq!(m.len(), 2);
        assert!(m.verdict().is_xable());
        assert!(ledger.monitor_mut().is_some());
    }

    #[test]
    fn missing_effects_are_violations() {
        let ledger = Ledger::new();
        let idem = ActionName::idempotent("put");
        let violations = ledger.exactly_once_violations(&[(idem, Value::from(1))]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("0 times"));
    }

    #[test]
    fn shared_ledger_is_shareable() {
        let ledger = shared_ledger();
        let clone = Rc::clone(&ledger);
        clone.borrow_mut().record_violation("x");
        assert_eq!(ledger.borrow().violations().len(), 1);
    }
}
