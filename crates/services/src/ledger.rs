//! The side-effect ledger: the materialized "hypothetical event observer"
//! of §2.2.
//!
//! The x-ability theory reasons about the history of start/completion events
//! of action executions and about externally visible side-effects. The
//! ledger records both, in global observation order, so that after a
//! simulation run the harness can (a) hand the formal history to the
//! x-ability checkers and (b) verify exactly-once side-effect semantics
//! directly against effect records.
//!
//! The event stream itself lives in **one** interned
//! [`TraceStore`]: the attached online monitor
//! is a storage-free [`IncrementalState`] cursor over that store (no
//! second `Vec<Event>`/`History` copy), [`Ledger::history`] is a zero-copy
//! [`HistoryView`], and [`Ledger::snapshot`] feeds the binary trace
//! recorder. Per-event provenance (time, observing service) is kept in a
//! compact side table.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::io;
use std::path::Path;
use std::rc::Rc;

use xability_core::xable::{IncrementalState, SearchBudget, Verdict};
use xability_core::{ActionName, Event, Request, Value};

use crate::pipeline::{PipelinedMonitor, DEFAULT_WINDOW};
use xability_obs::{Counter, Histogram, Obs};
use xability_sim::SimTime;
use xability_store::{
    recover_store, HistoryView, RecoveryReport, SegmentLog, TierConfig, TraceSnapshot, TraceStore,
};

/// What kind of externally visible effect a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EffectKind {
    /// An idempotent action's effect was applied (permanent immediately).
    Applied,
    /// An undoable action's effect was applied tentatively.
    Tentative,
    /// A tentative effect was reverted by a cancellation.
    Reverted,
    /// A tentative effect was made permanent by a commit.
    Committed,
}

impl fmt::Display for EffectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EffectKind::Applied => "applied",
            EffectKind::Tentative => "tentative",
            EffectKind::Reverted => "reverted",
            EffectKind::Committed => "committed",
        };
        write!(f, "{s}")
    }
}

/// A formal event observation with provenance metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedEvent {
    /// The formal event (what the theory sees).
    pub event: Event,
    /// When it was observed.
    pub at: SimTime,
    /// Which service observed it.
    pub service: String,
}

/// An externally visible side-effect record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectRecord {
    /// The action whose execution had the effect.
    pub action: ActionName,
    /// The logical request key the effect belongs to.
    pub key: Value,
    /// The protocol round the effect belongs to (0 for idempotent actions).
    pub round: u64,
    /// The kind of effect.
    pub kind: EffectKind,
    /// When the effect happened.
    pub at: SimTime,
}

/// Per-event provenance: when the event was observed and by which service
/// (as a symbol into the ledger's small service-name table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventMeta {
    at: SimTime,
    service: u32,
}

/// The error [`Ledger::attach_monitor`] returns when a monitor is already
/// attached: re-attaching would silently discard the previous monitor's
/// declared request sequence and warm per-group state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorAlreadyAttached;

impl fmt::Display for MonitorAlreadyAttached {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the ledger already has an online monitor attached; replacing it would \
             discard the previous monitor's declared requests and warm group state"
        )
    }
}

impl std::error::Error for MonitorAlreadyAttached {}

/// The global ledger of events, effects, and detected service-level protocol
/// violations.
///
/// One ledger is shared (via [`SharedLedger`]) by every external service in
/// a simulation; append order equals simulated-time order because the
/// simulator is single-threaded and time is monotone.
///
/// The formal event stream is stored once, interned and packed, in a
/// [`TraceStore`]; the attached monitor and every reader work over views
/// of that store.
///
/// A ledger carries an online R3 monitor **by default**: the incremental
/// checker's dirty-tracked aggregate makes a per-event observation (and a
/// verdict at any moment) cheap enough to be always on. Use
/// [`Ledger::without_monitor`] for a bare ledger and
/// [`Ledger::attach_monitor`] to install a custom (e.g. pre-declared or
/// custom-budget) monitor on one.
#[derive(Debug)]
pub struct Ledger {
    store: TraceStore,
    meta: Vec<EventMeta>,
    service_names: Vec<String>,
    effects: Vec<EffectRecord>,
    violations: Vec<String>,
    monitor: Option<IncrementalState>,
    /// The opt-in pipelined monitor mode ([`Ledger::attach_pipelined_monitor`]),
    /// mutually exclusive with `monitor`. `RefCell` because a verdict
    /// flushes and absorbs windows behind the `&self` query API.
    pipelined: Option<RefCell<PipelinedMonitor>>,
    spill: Option<Spill>,
    obs: LedgerObs,
}

/// Ledger instruments: inert (noop handles) until
/// [`Ledger::attach_obs`] binds them to a shared registry.
#[derive(Debug, Default)]
struct LedgerObs {
    obs: Obs,
    /// Events ingested (single or batched).
    events: Counter,
    /// `record_batch` calls.
    batches: Counter,
    /// Events per `record_batch` call.
    batch_size: Histogram,
    /// Cold segments sealed by the spill (threshold chunks + tail).
    spill_seals: Counter,
    /// Events made durable across those seals.
    spill_sealed_events: Counter,
    /// Simulated ticks (µs) of history each monitor verdict had to cover
    /// since the previous verdict — the verdict's staleness window.
    verdict_lag_ticks: Histogram,
    /// First-unverdicted-record tick: the left edge of the next verdict's
    /// lag window. `Cell` because `monitor_verdict` is `&self`.
    dirty_since: Cell<Option<SimTime>>,
    /// Tick of the most recently recorded event.
    last_at: Cell<SimTime>,
}

impl LedgerObs {
    fn bind(obs: &Obs) -> Self {
        LedgerObs {
            obs: obs.clone(),
            events: obs.counter("ledger.events"),
            batches: obs.counter("ledger.batches"),
            batch_size: obs.histogram("ledger.batch_size"),
            spill_seals: obs.counter("ledger.spill_seals"),
            spill_sealed_events: obs.counter("ledger.spill_sealed_events"),
            verdict_lag_ticks: obs.histogram("ledger.verdict_lag_ticks"),
            dirty_since: Cell::new(None),
            last_at: Cell::new(SimTime::ZERO),
        }
    }

    fn record_ingest(&self, at: SimTime, count: u64) {
        self.events.add(count);
        if self.dirty_since.get().is_none() {
            self.dirty_since.set(Some(at));
        }
        self.last_at.set(at);
    }
}

/// The ledger's durable-spill state: a cold-segment chain the recorded
/// events are mirrored into, `spill_threshold` events at a time.
///
/// The in-memory store stays the authority (checkers and views read it);
/// the chain is the *retention* copy a crashed run recovers from via
/// [`Ledger::reopen_spill`]. Because [`Ledger::record_event`] is
/// infallible by design (every sim service calls it on the hot path), an
/// IO failure during a background seal is made *sticky* and surfaced by
/// [`Ledger::flush_spill`] rather than panicking mid-run.
#[derive(Debug)]
struct Spill {
    log: SegmentLog,
    threshold: usize,
    error: Option<io::Error>,
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger::new()
    }
}

impl Ledger {
    /// Creates an empty ledger with a default online monitor attached.
    pub fn new() -> Self {
        Ledger {
            monitor: Some(IncrementalState::new()),
            ..Ledger::without_monitor()
        }
    }

    /// Creates an empty ledger with no online monitor (batch-only R3
    /// evaluation, or a custom monitor attached later).
    pub fn without_monitor() -> Self {
        Ledger {
            store: TraceStore::default(),
            meta: Vec::new(),
            service_names: Vec::new(),
            effects: Vec::new(),
            violations: Vec::new(),
            monitor: None,
            pipelined: None,
            spill: None,
            obs: LedgerObs::default(),
        }
    }

    /// Binds this ledger's instruments (ingest/batch counters, spill-seal
    /// counters, verdict-lag histogram) — and the attached monitor's, if
    /// any — to a shared metrics registry. Inert until called.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = LedgerObs::bind(obs);
        if let Some(monitor) = &mut self.monitor {
            monitor.attach_obs(obs);
        }
        if let Some(pipelined) = &mut self.pipelined {
            pipelined.get_mut().attach_obs(obs);
        }
    }

    /// Records a formal event observation. When an online monitor is
    /// attached, it observes the event too (amortized O(1)), so the R3
    /// obligation is tracked *while* the run executes instead of by
    /// re-reducing the full history afterwards. The event itself is stored
    /// exactly once, in the shared [`TraceStore`].
    pub fn record_event(&mut self, event: Event, at: SimTime, service: &str) {
        if let Some(monitor) = &mut self.monitor {
            monitor.observe(&event);
        }
        if let Some(pipelined) = &self.pipelined {
            pipelined.borrow_mut().observe(&event);
        }
        self.store.push(&event);
        if let Some(pipelined) = &self.pipelined {
            pipelined.borrow_mut().publish(&self.store);
        }
        let service = self.intern_service(service);
        self.meta.push(EventMeta { at, service });
        self.obs.record_ingest(at, 1);
        self.maybe_spill();
    }

    /// Records a slice of events observed together (same instant, same
    /// service) — the batch counterpart of [`Ledger::record_event`],
    /// driving the monitor once per slice
    /// ([`IncrementalState::observe_batch`]) and the store's
    /// batch-amortized interning ([`TraceStore::push_batch`]).
    pub fn record_batch(&mut self, events: &[Event], at: SimTime, service: &str) {
        if let Some(monitor) = &mut self.monitor {
            monitor.observe_batch(events);
        }
        if let Some(pipelined) = &self.pipelined {
            pipelined.borrow_mut().observe_batch(events);
        }
        self.store.push_batch(events);
        if let Some(pipelined) = &self.pipelined {
            pipelined.borrow_mut().publish(&self.store);
        }
        let service = self.intern_service(service);
        self.meta
            .extend(events.iter().map(|_| EventMeta { at, service }));
        self.obs.batches.inc();
        self.obs.batch_size.record(events.len() as u64);
        self.obs.record_ingest(at, events.len() as u64);
        self.maybe_spill();
    }

    /// Attaches a durable spill: from now on, every `spill_threshold`
    /// recorded events are sealed as one cold segment in `dir` (see
    /// [`SegmentLog`]), making the run's history recoverable after a
    /// crash via [`Ledger::reopen_spill`]. Events already recorded spill
    /// immediately. The policy is event-count based — no clocks.
    ///
    /// # Errors
    ///
    /// Fails if a spill is already attached, the config's threshold is
    /// zero, or `dir` already holds a segment chain.
    pub fn attach_spill(&mut self, dir: impl AsRef<Path>, config: TierConfig) -> io::Result<()> {
        if self.spill.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "the ledger already spills to a segment directory",
            ));
        }
        if config.spill_threshold == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "spill_threshold must be non-zero",
            ));
        }
        self.spill = Some(Spill {
            log: SegmentLog::create(dir, config.codec)?,
            threshold: config.spill_threshold,
            error: None,
        });
        self.maybe_spill();
        self.spill_error()
    }

    /// Seals every full `spill_threshold` chunk that accumulated beyond
    /// the chain. Infallible on purpose (the recording hot path must not
    /// return `Result`): the first IO failure is kept and re-surfaced by
    /// [`Ledger::flush_spill`].
    fn maybe_spill(&mut self) {
        let Some(spill) = &mut self.spill else {
            return;
        };
        if spill.error.is_some() {
            return;
        }
        while self.store.len() - spill.log.next_first_event() >= spill.threshold {
            let start = spill.log.next_first_event();
            let end = start + spill.threshold;
            let snap = self.store.snapshot();
            if let Err(e) = spill.log.seal(
                snap.interner(),
                end - start,
                &mut (start..end).map(|i| snap.repr(i)),
            ) {
                spill.error = Some(e);
                return;
            }
            self.obs.spill_seals.inc();
            self.obs.spill_sealed_events.add((end - start) as u64);
        }
    }

    fn spill_error(&mut self) -> io::Result<()> {
        match self.spill.as_mut().and_then(|s| s.error.take()) {
            Some(e) => {
                // Re-arm: the error is being surfaced now; keep the chain
                // frozen rather than sealing past a hole.
                if let Some(spill) = &mut self.spill {
                    spill.error = Some(io::Error::new(
                        e.kind(),
                        format!("spill previously failed: {e}"),
                    ));
                }
                Err(e)
            }
            None => Ok(()),
        }
    }

    /// Seals the not-yet-spilled tail (a partial segment), making every
    /// recorded event durable — the end-of-run path. Returns how many
    /// events the chain now holds.
    ///
    /// # Errors
    ///
    /// Fails if no spill is attached, if a background seal failed earlier
    /// (the sticky error is surfaced here), or if the tail seal fails.
    pub fn flush_spill(&mut self) -> io::Result<usize> {
        if self.spill.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no spill attached to flush",
            ));
        }
        self.spill_error()?;
        let spill = self.spill.as_mut().expect("checked above");
        let start = spill.log.next_first_event();
        let end = self.store.len();
        if end > start {
            let snap = self.store.snapshot();
            spill.log.seal(
                snap.interner(),
                end - start,
                &mut (start..end).map(|i| snap.repr(i)),
            )?;
            self.obs.spill_seals.inc();
            self.obs.spill_sealed_events.add((end - start) as u64);
        }
        Ok(spill.log.next_first_event())
    }

    /// The spill chain's sealed segments, if a spill is attached.
    pub fn spill_segments(&self) -> Option<&[xability_store::SegmentInfo]> {
        self.spill.as_ref().map(|s| s.log.segments())
    }

    /// Rebuilds a ledger from a spill directory after a crash or
    /// shutdown: recovers the longest valid segment chain (quarantining a
    /// torn tail, see [`recover_store`]) and replays the recovered events
    /// through a fresh online monitor.
    ///
    /// Per-event provenance (wall time, observing service) is not stored
    /// in segments, so recovered events carry the sentinels
    /// [`SimTime::ZERO`] and `"(reopened)"`. The monitor starts with no
    /// declared requests — re-declare the run's submitted sequence with
    /// [`Ledger::declare_requests`] before asking for a verdict.
    ///
    /// The reopened ledger does **not** keep spilling; attach a fresh
    /// spill (to a new directory) to continue durably.
    pub fn reopen_spill(dir: impl AsRef<Path>) -> io::Result<(Ledger, RecoveryReport)> {
        let (store, report) = recover_store(dir)?;
        let mut monitor = IncrementalState::new();
        for event in store.cursor_at(0) {
            monitor.observe(&event);
        }
        let mut ledger = Ledger::without_monitor();
        let service = ledger.intern_service("(reopened)");
        ledger.meta = vec![
            EventMeta {
                at: SimTime::ZERO,
                service,
            };
            store.len()
        ];
        ledger.store = store;
        ledger.monitor = Some(monitor);
        Ok((ledger, report))
    }

    /// Records a crash-recovery outcome into the attached registry as
    /// `ledger.recovery_*` counters. Call it on the reopened ledger after
    /// [`Ledger::reopen_spill`] + [`Ledger::attach_obs`] (recovery happens
    /// before a registry can be attached, so it is reported explicitly).
    pub fn record_recovery(&self, report: &RecoveryReport) {
        let obs = &self.obs.obs;
        obs.counter("ledger.recovery_segments")
            .add(report.segments_recovered as u64);
        obs.counter("ledger.recovery_events")
            .add(report.events_recovered as u64);
        obs.counter("ledger.recovery_quarantined")
            .add(report.quarantined.len() as u64);
        obs.counter("ledger.recovery_removed_tmp")
            .add(report.removed_tmp.len() as u64);
    }

    fn intern_service(&mut self, service: &str) -> u32 {
        match self.service_names.iter().position(|s| s == service) {
            Some(i) => i as u32,
            None => {
                self.service_names.push(service.to_owned());
                (self.service_names.len() - 1) as u32
            }
        }
    }

    /// Attaches an online R3 monitor. Events already recorded are replayed
    /// into it from the store (via a cursor), so attaching mid-run observes
    /// the same prefix a monitor attached at creation would have.
    ///
    /// # Errors
    ///
    /// Returns [`MonitorAlreadyAttached`] when the ledger already has a
    /// monitor (including the default one [`Ledger::new`] installs):
    /// replacing it would silently discard the previous monitor's declared
    /// request sequence and warm per-group state. Build the ledger with
    /// [`Ledger::without_monitor`] to control attachment explicitly.
    pub fn attach_monitor(
        &mut self,
        mut monitor: IncrementalState,
    ) -> Result<(), MonitorAlreadyAttached> {
        if self.monitor.is_some() || self.pipelined.is_some() {
            return Err(MonitorAlreadyAttached);
        }
        for event in self.store.cursor_at(monitor.consumed()) {
            monitor.observe(&event);
        }
        self.monitor = Some(monitor);
        Ok(())
    }

    /// Attaches a **pipelined** online R3 monitor with `workers` decide
    /// workers (DESIGN.md §12): the opt-in monitor mode that keeps
    /// recording on this thread down to O(1) attribution and ships each
    /// published snapshot window's reduction searches to a
    /// symbol-partitioned worker pool. Verdicts remain byte-identical to
    /// the sequential monitor's. Events already recorded are replayed
    /// into it, like [`Ledger::attach_monitor`].
    ///
    /// # Errors
    ///
    /// Returns [`MonitorAlreadyAttached`] when the ledger already has a
    /// monitor of either mode (including the default one [`Ledger::new`]
    /// installs); build with [`Ledger::without_monitor`] first.
    pub fn attach_pipelined_monitor(
        &mut self,
        workers: usize,
    ) -> Result<(), MonitorAlreadyAttached> {
        self.attach_pipelined_monitor_with(workers, DEFAULT_WINDOW, SearchBudget::small())
    }

    /// Attaches a pipelined monitor with an explicit window size and
    /// per-group search budget (see
    /// [`Ledger::attach_pipelined_monitor`]).
    ///
    /// # Errors
    ///
    /// Returns [`MonitorAlreadyAttached`] when the ledger already has a
    /// monitor of either mode.
    pub fn attach_pipelined_monitor_with(
        &mut self,
        workers: usize,
        window: usize,
        budget: SearchBudget,
    ) -> Result<(), MonitorAlreadyAttached> {
        if self.monitor.is_some() || self.pipelined.is_some() {
            return Err(MonitorAlreadyAttached);
        }
        let mut pipelined = PipelinedMonitor::with_config(workers, window, budget);
        let replay: Vec<Event> = self.store.cursor_at(0).collect();
        pipelined.observe_batch(&replay);
        pipelined.publish(&self.store);
        self.pipelined = Some(RefCell::new(pipelined));
        Ok(())
    }

    /// The attached pipelined monitor, if the ledger runs in the
    /// pipelined mode ([`Ledger::attach_pipelined_monitor`]).
    pub fn pipelined_monitor(&self) -> Option<&RefCell<PipelinedMonitor>> {
        self.pipelined.as_ref()
    }

    /// The attached online monitor, if any.
    pub fn monitor(&self) -> Option<&IncrementalState> {
        self.monitor.as_ref()
    }

    /// Mutable access to the attached online monitor (for declaring the
    /// submitted requests as they become known).
    pub fn monitor_mut(&mut self) -> Option<&mut IncrementalState> {
        self.monitor.as_mut()
    }

    /// The monitor's R3 verdict over the shared store, if a monitor is
    /// attached. The monitor reads the prefix it has consumed through a
    /// zero-copy view — it never owns a second copy of the trace.
    pub fn monitor_verdict(&self) -> Option<Verdict> {
        let verdict = match (&self.monitor, &self.pipelined) {
            (Some(monitor), _) => monitor.verdict_over(&self.store.view()),
            (None, Some(pipelined)) => pipelined.borrow_mut().verdict_over(&self.store),
            (None, None) => return None,
        };
        // The verdict's staleness window: ticks of history consumed since
        // the previous verdict (the anchor is the last recorded event's
        // tick — the registry itself never reads a clock).
        if let Some(since) = self.obs.dirty_since.take() {
            let last = self.obs.last_at.get();
            self.obs
                .verdict_lag_ticks
                .record(last.since(since).as_micros());
            self.obs
                .obs
                .span_event("monitor.verdict", "ledger", 0, last.as_micros());
        }
        Some(verdict)
    }

    /// Declares every not-yet-declared request of `submitted` into the
    /// attached monitor. `submitted` must *extend* the monitor's declared
    /// sequence (debug builds assert it): re-declaring a reordered or
    /// shortened sequence would silently diverge from the monitor's warm
    /// state. No-op when no monitor is attached.
    pub fn declare_requests(&mut self, submitted: &[Request]) {
        fn extend_declared(
            requests: &[(xability_core::ActionId, Value)],
            submitted: &[Request],
        ) -> usize {
            let declared = requests.len();
            debug_assert!(
                declared <= submitted.len()
                    && requests
                        .iter()
                        .zip(submitted)
                        .all(|((action, input), request)| {
                            action == request.action() && input == request.input()
                        }),
                "`submitted` must extend the monitor's declared request sequence"
            );
            declared
        }
        if let Some(monitor) = self.monitor.as_mut() {
            let declared = extend_declared(monitor.requests(), submitted);
            for request in submitted.iter().skip(declared) {
                monitor.declare_request(request);
            }
        } else if let Some(pipelined) = &self.pipelined {
            let mut pipelined = pipelined.borrow_mut();
            let declared = extend_declared(pipelined.requests(), submitted);
            for request in submitted.iter().skip(declared) {
                pipelined.declare_request(request);
            }
        }
    }

    /// Records an externally visible effect.
    pub fn record_effect(
        &mut self,
        action: ActionName,
        key: Value,
        round: u64,
        kind: EffectKind,
        at: SimTime,
    ) {
        self.effects.push(EffectRecord {
            action,
            key,
            round,
            kind,
            at,
        });
    }

    /// Records a service-level protocol violation (e.g. commit after
    /// cancel). A correct replication protocol never triggers these; the
    /// baselines do.
    pub fn record_violation(&mut self, detail: impl Into<String>) {
        self.violations.push(detail.into());
    }

    /// The formal history of all recorded events, in observation order, as
    /// a zero-copy view over the shared store.
    ///
    /// The view implements [`xability_core::HistoryRead`], so every
    /// checker consumes it directly; call
    /// [`to_history`](HistoryView::to_history) only where an owned
    /// [`xability_core::History`] is genuinely needed (the exhaustive
    /// search tier).
    pub fn history(&self) -> HistoryView {
        self.store.view()
    }

    /// The number of formal events recorded so far.
    pub fn event_count(&self) -> usize {
        self.store.len()
    }

    /// The recorded event at `index`, decoded together with its
    /// provenance metadata.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn recorded_event(&self, index: usize) -> RecordedEvent {
        let meta = self.meta[index];
        RecordedEvent {
            event: self.store.event(index),
            at: meta.at,
            service: self.service_names[meta.service as usize].clone(),
        }
    }

    /// Iterates all recorded events with metadata, in observation order.
    pub fn recorded_events(&self) -> impl Iterator<Item = RecordedEvent> + '_ {
        (0..self.store.len()).map(|i| self.recorded_event(i))
    }

    /// An immutable snapshot of the underlying trace store (for the
    /// binary trace recorder and other whole-trace consumers).
    pub fn snapshot(&self) -> TraceSnapshot {
        self.store.snapshot()
    }

    /// The shared trace store backing this ledger.
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// All effect records.
    pub fn effects(&self) -> &[EffectRecord] {
        &self.effects
    }

    /// Detected protocol violations.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// How many times the effect of the idempotent action `(action, key)`
    /// was (re-)applied. Exactly-once semantics requires 1 for every
    /// successfully submitted request.
    pub fn applied_count(&self, action: &ActionName, key: &Value) -> usize {
        self.effects
            .iter()
            .filter(|e| e.kind == EffectKind::Applied && &e.action == action && &e.key == key)
            .count()
    }

    /// How many rounds of the undoable action `(action, key)` were
    /// committed. Exactly-once semantics requires 1 for every successfully
    /// submitted request.
    pub fn committed_count(&self, action: &ActionName, key: &Value) -> usize {
        self.effects
            .iter()
            .filter(|e| e.kind == EffectKind::Committed && &e.action == action && &e.key == key)
            .count()
    }

    /// How many tentative effects of `(action, key)` were left neither
    /// reverted nor committed (dangling holds — a liveness bug).
    pub fn dangling_tentative_count(&self, action: &ActionName, key: &Value) -> usize {
        let mut dangling = 0usize;
        for round in self
            .effects
            .iter()
            .filter(|e| &e.action == action && &e.key == key)
            .map(|e| e.round)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let of_round = |kind: EffectKind| {
                self.effects
                    .iter()
                    .filter(|e| {
                        &e.action == action && &e.key == key && e.round == round && e.kind == kind
                    })
                    .count()
            };
            let tentative = of_round(EffectKind::Tentative);
            let resolved = of_round(EffectKind::Reverted) + of_round(EffectKind::Committed);
            dangling += tentative.saturating_sub(resolved);
        }
        dangling
    }

    /// Checks exactly-once semantics for a set of successfully submitted
    /// logical requests, returning a human-readable description of every
    /// violation found.
    ///
    /// Each entry of `requests` is `(action, key)`; idempotence/undoability
    /// is taken from the [`ActionName`].
    pub fn exactly_once_violations(&self, requests: &[(ActionName, Value)]) -> Vec<String> {
        let mut out = Vec::new();
        for (action, key) in requests {
            if action.is_idempotent() {
                let n = self.applied_count(action, key);
                if n != 1 {
                    out.push(format!(
                        "idempotent request ({action}, {key}) applied its effect {n} times (want 1)"
                    ));
                }
            } else {
                let n = self.committed_count(action, key);
                if n != 1 {
                    out.push(format!(
                        "undoable request ({action}, {key}) committed {n} times (want 1)"
                    ));
                }
                let dangling = self.dangling_tentative_count(action, key);
                if dangling != 0 {
                    out.push(format!(
                        "undoable request ({action}, {key}) left {dangling} dangling tentative effect(s)"
                    ));
                }
            }
        }
        out.extend(self.violations.iter().cloned());
        out
    }
}

/// A ledger shared by every service of a (single-threaded) simulation.
pub type SharedLedger = Rc<RefCell<Ledger>>;

/// Creates a fresh shared ledger.
pub fn shared_ledger() -> SharedLedger {
    Rc::new(RefCell::new(Ledger::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xability_core::ActionId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn events_accumulate_in_order() {
        let mut ledger = Ledger::new();
        let a = ActionId::base(ActionName::idempotent("a"));
        ledger.record_event(Event::start(a.clone(), Value::from(1)), t(1), "svc");
        ledger.record_event(Event::complete(a.clone(), Value::from(2)), t(2), "svc");
        let h = ledger.history();
        assert_eq!(h.len(), 2);
        assert_eq!(ledger.event_count(), 2);
        assert!(h.event(0).is_start());
        assert!(h.event(1).is_complete());
        assert_eq!(ledger.recorded_event(0).service, "svc");
        assert_eq!(ledger.recorded_event(1).at, t(2));
        let all: Vec<RecordedEvent> = ledger.recorded_events().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].event, Event::start(a, Value::from(1)));
    }

    #[test]
    fn store_is_shared_not_copied() {
        // The (default) monitor consumes events as a cursor over the
        // ledger's store; the ledger's view and the snapshot read the same
        // segments.
        let mut ledger = Ledger::new();
        let a = ActionId::base(ActionName::idempotent("a"));
        ledger.record_event(Event::start(a.clone(), Value::from(1)), t(1), "svc");
        ledger.record_event(Event::complete(a, Value::from(2)), t(2), "svc");
        assert_eq!(ledger.monitor().unwrap().consumed(), ledger.event_count());
        let snap = ledger.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.view().to_history(), ledger.history().to_history());
        assert_eq!(ledger.store().len(), 2);
    }

    #[test]
    fn applied_and_committed_counts() {
        let mut ledger = Ledger::new();
        let idem = ActionName::idempotent("put");
        let undo = ActionName::undoable("xfer");
        ledger.record_effect(idem.clone(), Value::from(1), 0, EffectKind::Applied, t(1));
        ledger.record_effect(idem.clone(), Value::from(1), 0, EffectKind::Applied, t(2));
        ledger.record_effect(undo.clone(), Value::from(2), 1, EffectKind::Tentative, t(3));
        ledger.record_effect(undo.clone(), Value::from(2), 1, EffectKind::Committed, t(4));
        assert_eq!(ledger.applied_count(&idem, &Value::from(1)), 2);
        assert_eq!(ledger.applied_count(&idem, &Value::from(9)), 0);
        assert_eq!(ledger.committed_count(&undo, &Value::from(2)), 1);
        assert_eq!(ledger.dangling_tentative_count(&undo, &Value::from(2)), 0);
    }

    #[test]
    fn dangling_tentative_detection() {
        let mut ledger = Ledger::new();
        let undo = ActionName::undoable("xfer");
        ledger.record_effect(undo.clone(), Value::from(1), 1, EffectKind::Tentative, t(1));
        ledger.record_effect(undo.clone(), Value::from(1), 1, EffectKind::Reverted, t(2));
        ledger.record_effect(undo.clone(), Value::from(1), 2, EffectKind::Tentative, t(3));
        assert_eq!(ledger.dangling_tentative_count(&undo, &Value::from(1)), 1);
    }

    #[test]
    fn exactly_once_report() {
        let mut ledger = Ledger::new();
        let idem = ActionName::idempotent("put");
        let undo = ActionName::undoable("xfer");
        // put applied twice: violation. xfer committed once: fine.
        ledger.record_effect(idem.clone(), Value::from(1), 0, EffectKind::Applied, t(1));
        ledger.record_effect(idem.clone(), Value::from(1), 0, EffectKind::Applied, t(2));
        ledger.record_effect(undo.clone(), Value::from(2), 1, EffectKind::Tentative, t(3));
        ledger.record_effect(undo.clone(), Value::from(2), 1, EffectKind::Committed, t(4));
        ledger.record_violation("commit after cancel on xfer/7");
        let violations =
            ledger.exactly_once_violations(&[(idem, Value::from(1)), (undo, Value::from(2))]);
        assert_eq!(violations.len(), 2);
        assert!(violations[0].contains("2 times"));
        assert!(violations[1].contains("commit after cancel"));
    }

    #[test]
    fn monitor_tracks_events_online_and_replays_on_late_attach() {
        let mut ledger = Ledger::without_monitor();
        let a = ActionId::base(ActionName::idempotent("a"));
        // One event recorded *before* the monitor exists…
        ledger.record_event(Event::start(a.clone(), Value::from(1)), t(1), "svc");
        let mut monitor = IncrementalState::new();
        monitor.declare(a.clone(), Value::from(1));
        ledger.attach_monitor(monitor).expect("no monitor yet");
        // …and one after: the monitor must see both.
        ledger.record_event(Event::complete(a.clone(), Value::from(2)), t(2), "svc");
        let m = ledger.monitor().expect("attached");
        assert_eq!(m.consumed(), 2);
        assert!(ledger.monitor_verdict().expect("attached").is_xable());
        assert!(ledger.monitor_mut().is_some());
    }

    #[test]
    fn double_attach_is_a_proper_error() {
        // A default ledger already carries a monitor…
        let mut ledger = Ledger::new();
        let err = ledger
            .attach_monitor(IncrementalState::new())
            .expect_err("default monitor already attached");
        assert_eq!(err, MonitorAlreadyAttached);
        assert!(format!("{err}").contains("already has an online monitor"));
        // …and the refusal really did preserve the original monitor's
        // state (here: its consumed prefix).
        let a = ActionId::base(ActionName::idempotent("a"));
        ledger.record_event(Event::start(a, Value::from(1)), t(1), "svc");
        assert_eq!(ledger.monitor().expect("original").consumed(), 1);
        // A bare ledger accepts exactly one attachment.
        let mut bare = Ledger::without_monitor();
        bare.attach_monitor(IncrementalState::new()).expect("first");
        bare.attach_monitor(IncrementalState::new())
            .expect_err("second");
    }

    #[test]
    fn declare_requests_skips_already_declared_prefix() {
        let mut ledger = Ledger::new(); // default monitor
        let a = ActionId::base(ActionName::idempotent("a"));
        let b = ActionId::base(ActionName::idempotent("b"));
        let first = vec![Request::new(a.clone(), Value::from(1))];
        ledger.declare_requests(&first);
        let both = vec![
            Request::new(a, Value::from(1)),
            Request::new(b, Value::from(2)),
        ];
        ledger.declare_requests(&both);
        assert_eq!(ledger.monitor().unwrap().requests().len(), 2);
        // Without a monitor, declaring is a no-op.
        let mut bare = Ledger::without_monitor();
        bare.declare_requests(&both);
        assert!(bare.monitor_verdict().is_none());
    }

    #[test]
    fn missing_effects_are_violations() {
        let ledger = Ledger::new();
        let idem = ActionName::idempotent("put");
        let violations = ledger.exactly_once_violations(&[(idem, Value::from(1))]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("0 times"));
    }

    #[test]
    fn shared_ledger_is_shareable() {
        let ledger = shared_ledger();
        let clone = Rc::clone(&ledger);
        clone.borrow_mut().record_violation("x");
        assert_eq!(ledger.borrow().violations().len(), 1);
    }

    #[test]
    fn record_batch_equals_sequential_record() {
        let a = ActionId::base(ActionName::idempotent("a"));
        let events: Vec<Event> = (0..7)
            .map(|i| {
                if i % 2 == 0 {
                    Event::start(a.clone(), Value::from(i))
                } else {
                    Event::complete(a.clone(), Value::from(i))
                }
            })
            .collect();
        let mut batched = Ledger::new();
        batched.record_batch(&events[..3], t(5), "svc");
        batched.record_batch(&events[3..], t(5), "svc");
        let mut sequential = Ledger::new();
        for ev in &events {
            sequential.record_event(ev.clone(), t(5), "svc");
        }
        assert_eq!(
            batched.history().to_history(),
            sequential.history().to_history()
        );
        assert_eq!(batched.recorded_event(6), sequential.recorded_event(6));
        assert_eq!(
            batched.monitor().unwrap().consumed(),
            sequential.monitor().unwrap().consumed()
        );
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xability-ledger-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_reopen_recovers_history_and_verdict() {
        let dir = tmpdir("spill");
        let a = ActionId::base(ActionName::idempotent("put"));
        let requests = vec![
            Request::new(a.clone(), Value::from(1)),
            Request::new(a.clone(), Value::from(2)),
        ];

        let mut ledger = Ledger::new();
        let config = TierConfig {
            spill_threshold: 3,
            ..TierConfig::default()
        };
        ledger.attach_spill(&dir, config).expect("attach");
        ledger.declare_requests(&requests);
        for key in [1i64, 2] {
            ledger.record_event(Event::start(a.clone(), Value::from(key)), t(1), "svc");
            ledger.record_event(Event::complete(a.clone(), Value::from(key)), t(2), "svc");
        }
        // 4 events, threshold 3: one segment sealed, 1 event hot.
        assert_eq!(ledger.spill_segments().expect("attached").len(), 1);
        assert_eq!(ledger.flush_spill().expect("flush"), 4);
        assert_eq!(ledger.spill_segments().expect("attached").len(), 2);
        let live_verdict = ledger.monitor_verdict().expect("monitor");

        let (mut reopened, report) = Ledger::reopen_spill(&dir).expect("reopen");
        assert_eq!(report.events_recovered, 4);
        assert!(report.quarantined.is_empty());
        assert_eq!(
            reopened.history().to_history(),
            ledger.history().to_history()
        );
        assert_eq!(reopened.recorded_event(0).service, "(reopened)");
        assert_eq!(reopened.recorded_event(0).at, SimTime::ZERO);
        // Re-declare the run's requests; the recovered verdict matches.
        reopened.declare_requests(&requests);
        assert_eq!(
            reopened.monitor_verdict().expect("monitor").is_xable(),
            live_verdict.is_xable()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_attach_is_exclusive_and_validated() {
        let dir = tmpdir("spill-excl");
        let mut ledger = Ledger::new();
        ledger
            .attach_spill(&dir, TierConfig::default())
            .expect("first attach");
        assert!(ledger.attach_spill(&dir, TierConfig::default()).is_err());
        assert!(Ledger::new()
            .attach_spill(
                &dir,
                TierConfig {
                    spill_threshold: 0,
                    ..TierConfig::default()
                }
            )
            .is_err());
        let mut bare = Ledger::without_monitor();
        assert!(bare.flush_spill().is_err(), "flush without a spill");
        std::fs::remove_dir_all(&dir).ok();
    }
}
