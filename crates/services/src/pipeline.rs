//! Two-stage pipelined online checking: an append stage that ingests
//! events and publishes immutable snapshot windows, feeding decide
//! workers that each own a disjoint group partition (DESIGN.md §12).
//!
//! The sequential online monitor interleaves two very different costs on
//! one thread: O(1) per-event attribution (the append stage) and the
//! per-group reduction searches a verdict needs (the decide stage). The
//! [`PipelinedMonitor`] splits them. The coordinator — the thread calling
//! [`observe_batch`](PipelinedMonitor::observe_batch) — keeps the full
//! sequential [`IncrementalState`] and pays only attribution; whenever a
//! window boundary passes it hands an immutable [`TraceSnapshot`] of the
//! shared store to N decide workers over bounded channels. Worker `w`
//! owns the groups with `symbol % N == w` — the same partition as
//! `FastChecker::check_sharded`, sound because reduction rules 18–20
//! never relate events across `(base action, input)` groups (DESIGN.md
//! §4.3) — and sends back the search outcomes of its changed groups as
//! installable [`GroupPrime`]s. The coordinator absorbs them into its
//! own memo cells, so a verdict finds the searches already decided.
//!
//! Priming is pure cache-warming: each memoized outcome is a pure
//! function of the group's event indices and the search budget, both
//! identical on every cursor over one stream. Verdicts are therefore
//! **byte-identical** — including reason strings — to the sequential
//! monitor at every published window, which `tests/pipeline_smoke.rs`
//! pins and `tests/pipeline_props.rs` property-tests. A stale prime (its
//! group gained events after the window closed) is refused by the
//! [`absorb_primes`](IncrementalState::absorb_primes) staleness guard
//! and recomputed on demand; a dead worker degrades the pipeline to the
//! sequential cost without changing any verdict.
//!
//! Backpressure is window-counted, never timed: at most
//! [`WINDOWS_IN_FLIGHT`] windows are outstanding per worker. Publishing
//! past that blocks the coordinator on absorbing the oldest slot — so
//! result queues are bounded by construction and workers never block on
//! sending. Absorb points are a pure function of the event/declare/
//! verdict sequence, keeping the attached metrics deterministic.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use xability_core::xable::{GroupPrime, IncrementalState, SearchBudget, Verdict};
use xability_core::{ActionId, Event, Request, Value};
use xability_obs::{Counter, Histogram, Obs};
use xability_store::{TraceSnapshot, TraceStore};

/// Default events per published window. Large enough to amortize the
/// snapshot/channel hand-off, small enough that decide work starts while
/// the run is still ingesting.
pub const DEFAULT_WINDOW: usize = 1024;

/// Bounded hand-off depth: how many windows may be outstanding (sent but
/// not absorbed) per worker before the coordinator blocks on results.
pub const WINDOWS_IN_FLIGHT: usize = 2;

/// One published window: the immutable snapshot to read events from, the
/// prefix length the window closes at, and the requests declared since
/// the previous window (workers mirror the declared sequence to know
/// which groups are watched).
struct WindowMsg {
    snap: TraceSnapshot,
    upto: usize,
    declares: Vec<(ActionId, Value)>,
}

/// One worker's answer to one window: the prefix it decided and the
/// installable outcomes of its partition's changed groups.
struct WindowResult {
    upto: usize,
    primes: Vec<GroupPrime>,
}

struct Worker {
    /// Dropping the sender is the shutdown signal.
    to: Option<SyncSender<WindowMsg>>,
    from: Receiver<WindowResult>,
    handle: Option<JoinHandle<()>>,
}

/// Pipeline instruments: inert noop handles until
/// [`PipelinedMonitor::attach_obs`] binds them to a registry.
#[derive(Debug, Default)]
struct PipelineObs {
    /// Published windows (including verdict-time tail flushes).
    windows: Counter,
    /// Window occupancy: events per published window.
    window_events: Histogram,
    /// Decide lag at absorb time: events the coordinator consumed beyond
    /// the prefix the absorbed result decided.
    decide_lag: Histogram,
    /// Per-worker dirty-group count: primes carried by one result.
    worker_dirty: Histogram,
    /// Primes installed into the coordinator's memo cells.
    primes_absorbed: Counter,
    /// Primes refused by the staleness guard (group grew past the
    /// window; the memo is recomputed on demand instead).
    primes_stale: Counter,
}

impl PipelineObs {
    fn bind(obs: &Obs) -> Self {
        PipelineObs {
            windows: obs.counter("pipeline.windows"),
            window_events: obs.histogram("pipeline.window_events"),
            decide_lag: obs.histogram("pipeline.decide_lag_events"),
            worker_dirty: obs.histogram("pipeline.worker_dirty"),
            primes_absorbed: obs.counter("pipeline.primes_absorbed"),
            primes_stale: obs.counter("pipeline.primes_stale"),
        }
    }
}

/// The pipelined online R3 monitor: a sequential [`IncrementalState`]
/// coordinator plus N decide workers fed immutable snapshot windows.
///
/// Drives exactly like the sequential monitor — declare requests,
/// [`observe_batch`](Self::observe_batch) events, ask
/// [`verdict_over`](Self::verdict_over) at any prefix — with one
/// addition: after pushing observed events into the shared
/// [`TraceStore`], call [`publish`](Self::publish) so completed windows
/// flow to the workers ([`Ledger`](crate::Ledger) does this per record
/// call in its pipelined mode). Verdicts are byte-identical to the
/// sequential monitor's; see the module docs for the argument.
///
/// # Examples
///
/// ```
/// use xability_core::{ActionId, ActionName, Event, Value};
/// use xability_services::pipeline::PipelinedMonitor;
/// use xability_store::TraceStore;
///
/// let get = ActionId::base(ActionName::idempotent("get"));
/// let mut store = TraceStore::new();
/// let mut monitor = PipelinedMonitor::with_config(2, 1, Default::default());
/// monitor.declare(get.clone(), Value::from(1));
///
/// let events = [
///     Event::start(get.clone(), Value::from(1)),
///     Event::complete(get, Value::from(42)),
/// ];
/// monitor.observe_batch(&events);
/// store.push_batch(&events);
/// monitor.publish(&store);
/// assert!(monitor.verdict_over(&store).is_xable());
/// ```
#[derive(Debug)]
pub struct PipelinedMonitor {
    state: IncrementalState,
    window: usize,
    /// Prefix length already published to the workers.
    published: usize,
    /// Windows sent (one message per worker each).
    sent: usize,
    /// Window slots fully absorbed (one result per worker each).
    absorbed: usize,
    /// The declared sequence, kept for shipping to workers.
    declares: Vec<(ActionId, Value)>,
    /// How many of `declares` every worker has received.
    shipped: usize,
    workers: Vec<Worker>,
    obs: PipelineObs,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").finish_non_exhaustive()
    }
}

fn worker_loop(
    shard: usize,
    shards: usize,
    budget: SearchBudget,
    windows: Receiver<WindowMsg>,
    results: SyncSender<WindowResult>,
) {
    let mut state = IncrementalState::with_budget(budget);
    let mut exported: Vec<usize> = Vec::new();
    let mut batch: Vec<Event> = Vec::new();
    while let Ok(msg) = windows.recv() {
        for (action, input) in msg.declares {
            state.declare(action, input);
        }
        batch.clear();
        let mut cursor = state.consumed();
        while cursor < msg.upto {
            batch.push(msg.snap.event(cursor));
            cursor += 1;
        }
        state.observe_batch(&batch);
        let primes = state.export_primes(&msg.snap.view(), shard, shards, &mut exported);
        if results
            .send(WindowResult {
                upto: msg.upto,
                primes,
            })
            .is_err()
        {
            // The coordinator is gone (dropped mid-run); nothing left to
            // decide for.
            return;
        }
    }
}

impl PipelinedMonitor {
    /// A pipelined monitor with `workers` decide workers, the default
    /// window size, and the fast tier's default per-group budget.
    pub fn new(workers: usize) -> Self {
        PipelinedMonitor::with_config(workers, DEFAULT_WINDOW, SearchBudget::small())
    }

    /// A pipelined monitor with an explicit window size (events per
    /// published window) and per-group search budget. `workers` and
    /// `window` are clamped to at least 1. Every worker runs the same
    /// `budget` as the coordinator — a requirement of the byte-identical
    /// merge, enforced here by construction.
    pub fn with_config(workers: usize, window: usize, budget: SearchBudget) -> Self {
        let shards = workers.max(1);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (window_tx, window_rx) = sync_channel(WINDOWS_IN_FLIGHT);
            let (result_tx, result_rx) = sync_channel(WINDOWS_IN_FLIGHT);
            let handle = std::thread::Builder::new()
                .name(format!("xpipe-decide-{shard}"))
                .spawn(move || worker_loop(shard, shards, budget, window_rx, result_tx))
                .expect("spawning a pipeline decide worker thread failed");
            handles.push(Worker {
                to: Some(window_tx),
                from: result_rx,
                handle: Some(handle),
            });
        }
        PipelinedMonitor {
            state: IncrementalState::with_budget(budget),
            window: window.max(1),
            published: 0,
            sent: 0,
            absorbed: 0,
            declares: Vec::new(),
            shipped: 0,
            workers: handles,
            obs: PipelineObs::default(),
        }
    }

    /// Binds the pipeline instruments (window occupancy, decide-lag and
    /// per-worker dirty histograms, prime counters) and the coordinator
    /// state's checker instruments to a shared metrics registry.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = PipelineObs::bind(obs);
        self.state.attach_obs(obs);
    }

    /// The number of decide workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The window size: events per published window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The cursor position: how many events have been consumed.
    pub fn consumed(&self) -> usize {
        self.state.consumed()
    }

    /// The declared request sequence.
    pub fn requests(&self) -> &[(ActionId, Value)] {
        self.state.requests()
    }

    /// Appends an expected request to the declared R3 sequence; workers
    /// receive it with the next published window.
    pub fn declare(&mut self, action: ActionId, input: Value) {
        self.state.declare(action.clone(), input.clone());
        self.declares.push((action, input));
    }

    /// Appends an expected [`Request`] to the declared R3 sequence.
    pub fn declare_request(&mut self, request: &Request) {
        self.declare(request.action().clone(), request.input().clone());
    }

    /// Consumes the next event of the stream (append-stage attribution
    /// only — windows flow to the workers on [`publish`](Self::publish)).
    pub fn observe(&mut self, event: &Event) {
        self.state.observe(event);
    }

    /// Consumes a slice of events in one batch-amortized pass.
    pub fn observe_batch(&mut self, events: &[Event]) {
        self.state.observe_batch(events);
    }

    /// Publishes every window boundary the consumed prefix has passed.
    /// `store` must hold at least the consumed prefix (it is the stream
    /// this monitor observes). Blocks only when more than
    /// [`WINDOWS_IN_FLIGHT`] windows would be outstanding — the
    /// backpressure policy — absorbing the oldest results first.
    pub fn publish(&mut self, store: &TraceStore) {
        debug_assert!(
            store.len() >= self.state.consumed(),
            "publish: the store must hold the consumed prefix"
        );
        while self.published + self.window <= self.state.consumed() {
            let upto = self.published + self.window;
            self.send_window(store, upto);
        }
    }

    /// Sends one window ending at `upto` to every worker, absorbing old
    /// results first if the hand-off is at capacity.
    fn send_window(&mut self, store: &TraceStore, upto: usize) {
        while self.sent - self.absorbed >= WINDOWS_IN_FLIGHT {
            self.absorb_slot();
        }
        let declares = &self.declares[self.shipped..];
        let snap = store.snapshot();
        for worker in &self.workers {
            let Some(to) = &worker.to else { continue };
            // A send error means the worker died; absorb_slot tolerates
            // the matching missing result and verdicts stay correct (the
            // coordinator recomputes cold memos itself).
            let _ = to.send(WindowMsg {
                snap: snap.clone(),
                upto,
                declares: declares.to_vec(),
            });
        }
        self.shipped = self.declares.len();
        self.sent += 1;
        self.obs.windows.inc();
        self.obs
            .window_events
            .record((upto - self.published) as u64);
        self.published = upto;
    }

    /// Receives one window slot's results — one per worker, in worker
    /// order — and installs their primes.
    fn absorb_slot(&mut self) {
        let consumed = self.state.consumed();
        for worker in &self.workers {
            let Ok(result) = worker.from.recv() else {
                // Worker died (panic): degrade to sequential computation.
                continue;
            };
            self.obs.decide_lag.record((consumed - result.upto) as u64);
            self.obs.worker_dirty.record(result.primes.len() as u64);
            let installed = self.state.absorb_primes(&result.primes);
            self.obs.primes_absorbed.add(installed as u64);
            self.obs
                .primes_stale
                .add((result.primes.len() - installed) as u64);
        }
        self.absorbed += 1;
    }

    /// The R3 verdict for the consumed prefix: flushes the tail window
    /// (a partial window ending exactly at the prefix), waits for every
    /// outstanding result, absorbs the primes, and assembles the verdict
    /// sequentially — byte-identical to
    /// [`IncrementalState::verdict_over`] on the same prefix and
    /// declared sequence.
    pub fn verdict_over(&mut self, store: &TraceStore) -> Verdict {
        self.publish(store);
        if self.published < self.state.consumed() {
            let upto = self.state.consumed();
            self.send_window(store, upto);
        }
        while self.absorbed < self.sent {
            self.absorb_slot();
        }
        self.state.verdict_over(&store.view())
    }
}

impl Drop for PipelinedMonitor {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Closing the window channel is the shutdown signal. Workers
            // never block sending results (bounded by WINDOWS_IN_FLIGHT),
            // so they always reach the closed-channel recv and exit.
            worker.to = None;
            while worker.from.try_recv().is_ok() {}
            if let Some(handle) = worker.handle.take() {
                // A worker that panicked already surfaced its failure as
                // degraded (sequential) verdicts; joining its panic here
                // would abort an otherwise-clean drop path.
                let _ = handle.join();
            }
        }
    }
}
