//! # xability-services — the external world of the replication protocol
//!
//! The paper's central contribution is handling replicated services whose
//! actions have **external side-effects** — invocations of third-party
//! entities (§1). This crate builds those third parties:
//!
//! * [`ServiceCore`] — the framework that gives actions the semantics the
//!   theory requires: request-keyed deduplication for idempotent actions,
//!   tentative-effect / commit / cancel transaction semantics for undoable
//!   actions (with round poisoning), transient fault injection, and
//!   recording of every observable event into the shared [`Ledger`].
//! * [`BusinessLogic`] — the interface concrete services implement.
//! * [`catalog`] — concrete services: a bank, a key-value store, a token
//!   issuer, a seat-reservation system, and a deliberately misbehaving
//!   counter for negative tests.
//! * [`Ledger`] — the materialized event observer of §2.2: records the
//!   formal event stream once into a shared, interned
//!   [`xability_store::TraceStore`], hands out zero-copy history views to
//!   the x-ability deciders, and keeps direct exactly-once accounting of
//!   side-effects.
//!
//! ```
//! use rand::SeedableRng;
//! use xability_core::Value;
//! use xability_services::catalog::KvStore;
//! use xability_services::{shared_ledger, InvokeOutcome, ServiceConfig, ServiceCore, ServiceRequest};
//! use xability_sim::SimTime;
//!
//! let ledger = shared_ledger();
//! let mut svc = ServiceCore::new(
//!     Box::new(KvStore::new()),
//!     ServiceConfig::default(),
//!     ledger.clone(),
//! );
//! let put = ServiceRequest::execute(
//!     xability_core::ActionName::idempotent("put"),
//!     Value::from("req-1"),
//!     0,
//!     Value::list([
//!         Value::pair(Value::from("k"), Value::from("x")),
//!         Value::pair(Value::from("v"), Value::from(1)),
//!     ]),
//! );
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let out = svc.handle(&put, SimTime::ZERO, &mut rng);
//! assert!(out.is_success());
//! // The ledger observed a failure-free execution: S(put) C(put).
//! assert_eq!(ledger.borrow().history().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod core;
pub mod ledger;
pub mod logic;
pub mod pipeline;

pub use core::{FailurePlan, InvokeOutcome, OpKind, ServiceConfig, ServiceCore, ServiceRequest};
pub use ledger::{
    shared_ledger, EffectKind, EffectRecord, Ledger, MonitorAlreadyAttached, RecordedEvent,
    SharedLedger,
};
pub use logic::BusinessLogic;
pub use pipeline::PipelinedMonitor;

#[cfg(test)]
mod tests {
    use super::catalog::{Bank, NakedCounter, TokenIssuer};
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xability_core::xable::{is_xable_search, SearchBudget};
    use xability_core::{ActionId, ActionName, Value};
    use xability_sim::SimTime;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn transfer_req(key: &str, round: u64, amount: i64) -> ServiceRequest {
        ServiceRequest::execute(
            ActionName::undoable("transfer"),
            Value::from(key),
            round,
            Value::list([
                Value::pair(Value::from("from"), Value::from("a")),
                Value::pair(Value::from("to"), Value::from("b")),
                Value::pair(Value::from("amount"), Value::from(amount)),
            ]),
        )
    }

    fn bank_core(ledger: &SharedLedger, failures: FailurePlan) -> ServiceCore {
        ServiceCore::new(
            Box::new(Bank::new([("a".into(), 100), ("b".into(), 0)])),
            ServiceConfig {
                failures,
                dedup: true,
            },
            ledger.clone(),
        )
    }

    #[test]
    fn successful_undoable_flow_is_xable() {
        let ledger = shared_ledger();
        let mut svc = bank_core(&ledger, FailurePlan::none());
        let mut r = rng();
        let req = transfer_req("t1", 1, 25);
        let out = svc.handle(&req, SimTime::from_millis(1), &mut r);
        assert!(out.is_success());
        let out = svc.handle(&req.to_commit(), SimTime::from_millis(2), &mut r);
        assert!(out.is_success());

        let h = ledger.borrow().history().to_history();
        // Formal inputs are round-stamped (§5.4): the surviving execution
        // ran in round 1.
        let ops = [(
            ActionId::base(ActionName::undoable("transfer")),
            Value::pair(Value::from("t1"), Value::from(1)),
        )];
        assert!(is_xable_search(&h, &ops, SearchBudget::default()).is_reached());
        assert_eq!(
            ledger
                .borrow()
                .committed_count(&ActionName::undoable("transfer"), &Value::from("t1")),
            1
        );
    }

    #[test]
    fn cancelled_round_plus_retry_is_xable() {
        let ledger = shared_ledger();
        // First invocation fails after the tentative effect.
        let mut svc = bank_core(
            &ledger,
            FailurePlan {
                fail_first_n: 2,
                ..FailurePlan::none()
            },
        );
        let mut r = rng();
        let req1 = transfer_req("t1", 1, 25);
        // Round 1: execute fails (invocation 1: before effect), retry the
        // execution (invocation 2: after effect) — still a failure.
        assert!(!svc
            .handle(&req1, SimTime::from_millis(1), &mut r)
            .is_success());
        assert!(!svc
            .handle(&req1, SimTime::from_millis(2), &mut r)
            .is_success());
        // Cancel round 1, then run round 2 to completion.
        assert!(svc
            .handle(&req1.to_cancel(), SimTime::from_millis(3), &mut r)
            .is_success());
        let req2 = transfer_req("t1", 2, 25);
        assert!(svc
            .handle(&req2, SimTime::from_millis(4), &mut r)
            .is_success());
        assert!(svc
            .handle(&req2.to_commit(), SimTime::from_millis(5), &mut r)
            .is_success());

        let h = ledger.borrow().history().to_history();
        // Round 2 survives; round 1's attempt/cancel erases under rule 19.
        let ops = [(
            ActionId::base(ActionName::undoable("transfer")),
            Value::pair(Value::from("t1"), Value::from(2)),
        )];
        assert!(
            is_xable_search(&h, &ops, SearchBudget::default()).is_reached(),
            "history not x-able: {h}"
        );
        let violations = ledger
            .borrow()
            .exactly_once_violations(&[(ActionName::undoable("transfer"), Value::from("t1"))]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn poisoned_round_rejects_late_execution_without_events() {
        let ledger = shared_ledger();
        let mut svc = bank_core(&ledger, FailurePlan::none());
        let mut r = rng();
        let req = transfer_req("t1", 1, 25);
        // A cleaner cancels round 1 before the owner's execute arrives.
        assert!(svc
            .handle(&req.to_cancel(), SimTime::from_millis(1), &mut r)
            .is_success());
        let events_before = ledger.borrow().history().len();
        let out = svc.handle(&req, SimTime::from_millis(2), &mut r);
        assert!(out.is_terminal_failure());
        // No event was recorded for the rejected execution.
        assert_eq!(ledger.borrow().history().len(), events_before);
        // Money never moved.
        let logic: &Bank = (svc.logic() as &dyn std::any::Any).downcast_ref().unwrap();
        assert_eq!(logic.balance("a"), 100);
        assert_eq!(logic.total(), 100);
    }

    #[test]
    fn idempotent_dedup_returns_stored_reply() {
        let ledger = shared_ledger();
        let mut svc = ServiceCore::new(
            Box::new(TokenIssuer::new()),
            ServiceConfig::default(),
            ledger.clone(),
        );
        let mut r = rng();
        let req = ServiceRequest::execute(
            ActionName::idempotent("issue"),
            Value::from("req-9"),
            0,
            Value::Nil,
        );
        let out1 = svc.handle(&req, SimTime::from_millis(1), &mut r);
        let out2 = svc.handle(&req, SimTime::from_millis(2), &mut r);
        assert_eq!(out1, out2, "retries must observe the stored reply");
        // Only one token was actually minted.
        let logic: &TokenIssuer = (svc.logic() as &dyn std::any::Any).downcast_ref().unwrap();
        assert_eq!(logic.issued(), 1);
        // The history (two completed executions, equal outputs) is x-able.
        let h = ledger.borrow().history().to_history();
        let ops = [(
            ActionId::base(ActionName::idempotent("issue")),
            Value::from("req-9"),
        )];
        assert!(is_xable_search(&h, &ops, SearchBudget::default()).is_reached());
    }

    #[test]
    fn failure_after_effect_then_retry_is_xable_and_exactly_once() {
        let ledger = shared_ledger();
        let mut svc = ServiceCore::new(
            Box::new(TokenIssuer::new()),
            ServiceConfig {
                // Invocation 2 fails after the effect (fail_first_n uses
                // before-effect for odd invocations, after-effect for even).
                failures: FailurePlan::first_n(2),
                dedup: true,
            },
            ledger.clone(),
        );
        let mut r = rng();
        let req = ServiceRequest::execute(
            ActionName::idempotent("issue"),
            Value::from("k"),
            0,
            Value::Nil,
        );
        assert!(!svc
            .handle(&req, SimTime::from_millis(1), &mut r)
            .is_success());
        assert!(!svc
            .handle(&req, SimTime::from_millis(2), &mut r)
            .is_success());
        let out = svc.handle(&req, SimTime::from_millis(3), &mut r);
        assert!(out.is_success());
        let h = ledger.borrow().history().to_history();
        let ops = [(
            ActionId::base(ActionName::idempotent("issue")),
            Value::from("k"),
        )];
        assert!(
            is_xable_search(&h, &ops, SearchBudget::default()).is_reached(),
            "history not x-able: {h}"
        );
        let violations = ledger
            .borrow()
            .exactly_once_violations(&[(ActionName::idempotent("issue"), Value::from("k"))]);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn dedup_disabled_duplicates_effects_and_breaks_xability() {
        let ledger = shared_ledger();
        let mut svc = ServiceCore::new(
            Box::new(TokenIssuer::new()),
            ServiceConfig {
                failures: FailurePlan::none(),
                dedup: false,
            },
            ledger.clone(),
        );
        let mut r = rng();
        let req = ServiceRequest::execute(
            ActionName::idempotent("issue"),
            Value::from("k"),
            0,
            Value::Nil,
        );
        let out1 = svc.handle(&req, SimTime::from_millis(1), &mut r);
        let out2 = svc.handle(&req, SimTime::from_millis(2), &mut r);
        assert_ne!(out1, out2, "non-deterministic duplicates disagree");
        let h = ledger.borrow().history().to_history();
        let ops = [(
            ActionId::base(ActionName::idempotent("issue")),
            Value::from("k"),
        )];
        assert!(!is_xable_search(&h, &ops, SearchBudget::default()).is_reached());
        let violations = ledger
            .borrow()
            .exactly_once_violations(&[(ActionName::idempotent("issue"), Value::from("k"))]);
        assert!(!violations.is_empty());
    }

    #[test]
    fn commit_after_cancel_is_terminal_and_recorded() {
        let ledger = shared_ledger();
        let mut svc = bank_core(&ledger, FailurePlan::none());
        let mut r = rng();
        let req = transfer_req("t", 3, 10);
        assert!(svc
            .handle(&req, SimTime::from_millis(1), &mut r)
            .is_success());
        assert!(svc
            .handle(&req.to_cancel(), SimTime::from_millis(2), &mut r)
            .is_success());
        let out = svc.handle(&req.to_commit(), SimTime::from_millis(3), &mut r);
        assert!(out.is_terminal_failure());
        assert_eq!(ledger.borrow().violations().len(), 1);
    }

    #[test]
    fn duplicate_cancel_and_commit_are_idempotent() {
        let ledger = shared_ledger();
        let mut svc = bank_core(&ledger, FailurePlan::none());
        let mut r = rng();
        let req = transfer_req("t", 1, 10);
        assert!(svc
            .handle(&req, SimTime::from_millis(1), &mut r)
            .is_success());
        assert!(svc
            .handle(&req.to_commit(), SimTime::from_millis(2), &mut r)
            .is_success());
        assert!(svc
            .handle(&req.to_commit(), SimTime::from_millis(3), &mut r)
            .is_success());
        assert_eq!(
            ledger
                .borrow()
                .committed_count(&ActionName::undoable("transfer"), &Value::from("t")),
            1,
            "duplicate commit must not double-apply"
        );
        let logic: &Bank = (svc.logic() as &dyn std::any::Any).downcast_ref().unwrap();
        assert_eq!(logic.balance("b"), 10);
    }

    #[test]
    fn round_specific_cancel_does_not_affect_other_rounds() {
        let ledger = shared_ledger();
        let mut svc = bank_core(&ledger, FailurePlan::none());
        let mut r = rng();
        let round1 = transfer_req("t", 1, 10);
        let round2 = transfer_req("t", 2, 10);
        // Round 2 executes; a stale cancel for round 1 arrives.
        assert!(svc
            .handle(&round2, SimTime::from_millis(1), &mut r)
            .is_success());
        assert!(svc
            .handle(&round1.to_cancel(), SimTime::from_millis(2), &mut r)
            .is_success());
        // Round 2's tentative effect is untouched; committing it succeeds.
        assert!(svc
            .handle(&round2.to_commit(), SimTime::from_millis(3), &mut r)
            .is_success());
        let logic: &Bank = (svc.logic() as &dyn std::any::Any).downcast_ref().unwrap();
        assert_eq!(logic.balance("b"), 10);
    }

    #[test]
    fn naked_counter_without_dedup_shows_duplicated_effects() {
        let ledger = shared_ledger();
        let mut svc = ServiceCore::new(
            Box::new(NakedCounter::new()),
            ServiceConfig {
                failures: FailurePlan::none(),
                dedup: false,
            },
            ledger.clone(),
        );
        let mut r = rng();
        let req = ServiceRequest::execute(
            ActionName::idempotent("bump"),
            Value::from("once"),
            0,
            Value::list([Value::pair(Value::from("by"), Value::from(1))]),
        );
        svc.handle(&req, SimTime::from_millis(1), &mut r);
        svc.handle(&req, SimTime::from_millis(2), &mut r);
        let logic: &NakedCounter = (svc.logic() as &dyn std::any::Any).downcast_ref().unwrap();
        assert_eq!(logic.value(), 2, "the retry bumped twice");
        assert_eq!(
            ledger
                .borrow()
                .applied_count(&ActionName::idempotent("bump"), &Value::from("once")),
            2
        );
    }

    #[test]
    fn kind_of_and_actions() {
        let ledger = shared_ledger();
        let svc = bank_core(&ledger, FailurePlan::none());
        assert_eq!(
            svc.kind_of("transfer"),
            Some(xability_core::ActionKind::Undoable)
        );
        assert_eq!(
            svc.kind_of("deposit"),
            Some(xability_core::ActionKind::Idempotent)
        );
        assert_eq!(svc.kind_of("nope"), None);
        assert_eq!(svc.actions().len(), 2);
        assert_eq!(svc.name(), "bank");
        assert_eq!(svc.invocations(), 0);
    }
}
