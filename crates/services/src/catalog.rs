//! Concrete external services used by the examples, tests and experiments.
//!
//! These realize the workloads the paper's introduction motivates —
//! three-tier applications whose middle tier invokes back-end services with
//! real side-effects:
//!
//! * [`Bank`] — accounts with an **undoable** `transfer` (escrow-style
//!   hold, then commit/cancel) and an **idempotent** `deposit`. Transfers
//!   return a non-deterministic receipt token.
//! * [`KvStore`] — an **idempotent** `put`/`get` key-value store.
//! * [`TokenIssuer`] — an **idempotent** but non-deterministic `issue`
//!   action (fresh random token per logical request; retries get the stored
//!   token via framework deduplication).
//! * [`Reservation`] — an **undoable** `reserve` over a finite pool of
//!   seats.
//! * [`NakedCounter`] — a counter whose `bump` is *declared* idempotent but
//!   has a cumulative effect. Combined with `dedup: false` it demonstrates
//!   how retry-based replication duplicates effects when the idempotence
//!   contract is violated (used by negative tests and baselines).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::RngExt;

use xability_core::{ActionName, Value};

use crate::logic::BusinessLogic;

fn field<'v>(payload: &'v Value, key: &str) -> Option<&'v Value> {
    payload.lookup(&Value::from(key))
}

fn str_field(payload: &Value, key: &str) -> Option<String> {
    field(payload, key)
        .and_then(|v| v.as_str())
        .map(str::to_owned)
}

fn int_field(payload: &Value, key: &str) -> Option<i64> {
    field(payload, key).and_then(Value::as_int)
}

/// A bank with escrow-style undoable transfers.
///
/// `transfer` payload: `[("from", str), ("to", str), ("amount", int)]`.
/// Tentative effect: the amount is withdrawn from `from` and held in
/// escrow. Commit releases the escrow to `to`; cancel returns it to
/// `from`. The output is `ok:<receipt>` (random receipt — the
/// non-determinism the paper insists on) or `"rejected"` when funds are
/// insufficient (a domain *output*, not a failure).
///
/// `deposit` payload: `[("to", str), ("amount", int)]`, idempotent, output
/// is the new balance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    accounts: BTreeMap<String, i64>,
    escrow: BTreeMap<(String, String), i64>,
}

impl Bank {
    /// Creates a bank with the given initial account balances.
    pub fn new(accounts: impl IntoIterator<Item = (String, i64)>) -> Self {
        Bank {
            accounts: accounts.into_iter().collect(),
            escrow: BTreeMap::new(),
        }
    }

    /// The balance of an account (0 if unknown).
    pub fn balance(&self, account: &str) -> i64 {
        self.accounts.get(account).copied().unwrap_or(0)
    }

    /// Total money in the system (accounts + escrow); conserved by every
    /// operation, which tests assert.
    pub fn total(&self) -> i64 {
        self.accounts.values().sum::<i64>() + self.escrow.values().sum::<i64>()
    }

    /// Money currently held in escrow.
    pub fn escrowed(&self) -> i64 {
        self.escrow.values().sum()
    }

    fn transfer_parts(key: &Value, payload: &Value) -> Option<(String, String, i64)> {
        let _ = key;
        Some((
            str_field(payload, "from")?,
            str_field(payload, "to")?,
            int_field(payload, "amount")?,
        ))
    }
}

impl BusinessLogic for Bank {
    fn name(&self) -> &str {
        "bank"
    }

    fn actions(&self) -> Vec<ActionName> {
        vec![
            ActionName::undoable("transfer"),
            ActionName::idempotent("deposit"),
        ]
    }

    fn apply(
        &mut self,
        action: &ActionName,
        key: &Value,
        payload: &Value,
        rng: &mut StdRng,
    ) -> Value {
        match action.name() {
            "transfer" => {
                let Some((from, to, amount)) = Bank::transfer_parts(key, payload) else {
                    return Value::from("rejected:malformed");
                };
                if amount <= 0 || self.balance(&from) < amount {
                    return Value::from("rejected");
                }
                *self.accounts.entry(from.clone()).or_insert(0) -= amount;
                *self.escrow.entry((from, to)).or_insert(0) += amount;
                let receipt: u32 = rng.random_range(0..1_000_000);
                Value::from(format!("ok:{receipt}"))
            }
            "deposit" => {
                let Some(to) = str_field(payload, "to") else {
                    return Value::from("rejected:malformed");
                };
                let amount = int_field(payload, "amount").unwrap_or(0);
                let balance = self.accounts.entry(to).or_insert(0);
                *balance += amount;
                Value::from(*balance)
            }
            _ => Value::from("rejected:unknown-action"),
        }
    }

    fn revert(&mut self, action: &ActionName, key: &Value, payload: &Value) {
        if action.name() != "transfer" {
            return;
        }
        let Some((from, to, amount)) = Bank::transfer_parts(key, payload) else {
            return;
        };
        let held = self.escrow.entry((from.clone(), to)).or_insert(0);
        if *held >= amount {
            *held -= amount;
            *self.accounts.entry(from).or_insert(0) += amount;
        }
    }

    fn finalize(&mut self, action: &ActionName, key: &Value, payload: &Value) {
        if action.name() != "transfer" {
            return;
        }
        let Some((from, to, amount)) = Bank::transfer_parts(key, payload) else {
            return;
        };
        let held = self.escrow.entry((from, to.clone())).or_insert(0);
        if *held >= amount {
            *held -= amount;
            *self.accounts.entry(to).or_insert(0) += amount;
        }
    }

    fn is_possible_reply(&self, action: &ActionName, _payload: &Value, reply: &Value) -> bool {
        match action.name() {
            "transfer" => reply
                .as_str()
                .is_some_and(|s| s == "rejected" || s.starts_with("ok:")),
            "deposit" => reply.as_int().is_some(),
            _ => false,
        }
    }
}

/// A key-value store with idempotent `put` and `get`.
///
/// `put` payload: `[("k", str), ("v", any)]`, output `nil`.
/// `get` payload: `[("k", str)]`, output the stored value or `nil`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<String, Value>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Direct lookup (for test assertions).
    pub fn get(&self, k: &str) -> Option<&Value> {
        self.map.get(k)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl BusinessLogic for KvStore {
    fn name(&self) -> &str {
        "kv"
    }

    fn actions(&self) -> Vec<ActionName> {
        vec![ActionName::idempotent("put"), ActionName::idempotent("get")]
    }

    fn apply(
        &mut self,
        action: &ActionName,
        _key: &Value,
        payload: &Value,
        _rng: &mut StdRng,
    ) -> Value {
        match action.name() {
            "put" => {
                if let (Some(k), Some(v)) = (str_field(payload, "k"), field(payload, "v")) {
                    self.map.insert(k, v.clone());
                }
                Value::Nil
            }
            "get" => str_field(payload, "k")
                .and_then(|k| self.map.get(&k).cloned())
                .unwrap_or(Value::Nil),
            _ => Value::Nil,
        }
    }
}

/// Issues fresh random tokens: idempotent *thanks to framework
/// deduplication*, non-deterministic across logical requests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenIssuer {
    issued: u64,
}

impl TokenIssuer {
    /// Creates an issuer.
    pub fn new() -> Self {
        TokenIssuer::default()
    }

    /// How many tokens were actually minted (deduplicated retries do not
    /// mint).
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl BusinessLogic for TokenIssuer {
    fn name(&self) -> &str {
        "tokens"
    }

    fn actions(&self) -> Vec<ActionName> {
        vec![ActionName::idempotent("issue")]
    }

    fn apply(
        &mut self,
        _action: &ActionName,
        _key: &Value,
        _payload: &Value,
        rng: &mut StdRng,
    ) -> Value {
        self.issued += 1;
        let token: u64 = rng.random_range(0..u64::MAX);
        Value::from(format!("tok-{token:016x}"))
    }

    fn is_possible_reply(&self, _action: &ActionName, _payload: &Value, reply: &Value) -> bool {
        reply.as_str().is_some_and(|s| s.starts_with("tok-"))
    }
}

/// A seat-reservation service with an undoable `reserve`.
///
/// `reserve` payload: `[("seats", int)]`; tentative effect holds the seats;
/// output `"held"` or `"rejected"` when not enough seats remain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservation {
    capacity: i64,
    held: BTreeMap<String, i64>,
    confirmed: i64,
}

impl Reservation {
    /// Creates a service with `capacity` seats.
    pub fn new(capacity: i64) -> Self {
        Reservation {
            capacity,
            held: BTreeMap::new(),
            confirmed: i64::default(),
        }
    }

    /// Seats still free (not held, not confirmed).
    pub fn free(&self) -> i64 {
        self.capacity - self.confirmed - self.held.values().sum::<i64>()
    }

    /// Seats confirmed.
    pub fn confirmed(&self) -> i64 {
        self.confirmed
    }

    fn hold_key(key: &Value) -> String {
        format!("{key}")
    }
}

impl BusinessLogic for Reservation {
    fn name(&self) -> &str {
        "reservation"
    }

    fn actions(&self) -> Vec<ActionName> {
        vec![ActionName::undoable("reserve")]
    }

    fn apply(
        &mut self,
        _action: &ActionName,
        key: &Value,
        payload: &Value,
        _rng: &mut StdRng,
    ) -> Value {
        let seats = int_field(payload, "seats").unwrap_or(1);
        if seats <= 0 || self.free() < seats {
            return Value::from("rejected");
        }
        self.held.insert(Reservation::hold_key(key), seats);
        Value::from("held")
    }

    fn revert(&mut self, _action: &ActionName, key: &Value, _payload: &Value) {
        self.held.remove(&Reservation::hold_key(key));
    }

    fn finalize(&mut self, _action: &ActionName, key: &Value, _payload: &Value) {
        if let Some(seats) = self.held.remove(&Reservation::hold_key(key)) {
            self.confirmed += seats;
        }
    }

    fn is_possible_reply(&self, _action: &ActionName, _payload: &Value, reply: &Value) -> bool {
        matches!(reply.as_str(), Some("held") | Some("rejected"))
    }
}

/// A counter whose `bump` is declared idempotent but is cumulatively
/// effectful. With framework deduplication it behaves; with `dedup: false`
/// it exposes duplicated side-effects under retries — the negative case.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NakedCounter {
    value: i64,
}

impl NakedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        NakedCounter::default()
    }

    /// The current count.
    pub fn value(&self) -> i64 {
        self.value
    }
}

impl BusinessLogic for NakedCounter {
    fn name(&self) -> &str {
        "counter"
    }

    fn actions(&self) -> Vec<ActionName> {
        vec![ActionName::idempotent("bump")]
    }

    fn apply(
        &mut self,
        _action: &ActionName,
        _key: &Value,
        payload: &Value,
        _rng: &mut StdRng,
    ) -> Value {
        let by = int_field(payload, "by").unwrap_or(1);
        self.value += by;
        Value::from(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn transfer_payload(from: &str, to: &str, amount: i64) -> Value {
        Value::list([
            Value::pair(Value::from("from"), Value::from(from)),
            Value::pair(Value::from("to"), Value::from(to)),
            Value::pair(Value::from("amount"), Value::from(amount)),
        ])
    }

    #[test]
    fn bank_transfer_holds_then_commits() {
        let mut bank = Bank::new([("a".into(), 100), ("b".into(), 0)]);
        let action = ActionName::undoable("transfer");
        let payload = transfer_payload("a", "b", 30);
        let key = Value::from("req1");
        let out = bank.apply(&action, &key, &payload, &mut rng());
        assert!(out.as_str().unwrap().starts_with("ok:"));
        assert_eq!(bank.balance("a"), 70);
        assert_eq!(bank.balance("b"), 0);
        assert_eq!(bank.escrowed(), 30);
        assert_eq!(bank.total(), 100);
        bank.finalize(&action, &key, &payload);
        assert_eq!(bank.balance("b"), 30);
        assert_eq!(bank.escrowed(), 0);
        assert_eq!(bank.total(), 100);
    }

    #[test]
    fn bank_transfer_revert_restores_funds() {
        let mut bank = Bank::new([("a".into(), 50)]);
        let action = ActionName::undoable("transfer");
        let payload = transfer_payload("a", "b", 50);
        let key = Value::from("r");
        bank.apply(&action, &key, &payload, &mut rng());
        assert_eq!(bank.balance("a"), 0);
        bank.revert(&action, &key, &payload);
        assert_eq!(bank.balance("a"), 50);
        assert_eq!(bank.total(), 50);
    }

    #[test]
    fn bank_rejects_insufficient_funds_as_output() {
        let mut bank = Bank::new([("a".into(), 10)]);
        let action = ActionName::undoable("transfer");
        let out = bank.apply(
            &action,
            &Value::from("r"),
            &transfer_payload("a", "b", 999),
            &mut rng(),
        );
        assert_eq!(out, Value::from("rejected"));
        assert_eq!(bank.total(), 10);
        assert!(bank.is_possible_reply(&action, &Value::Nil, &out));
    }

    #[test]
    fn bank_deposit_is_effectful_and_typed() {
        let mut bank = Bank::new([]);
        let action = ActionName::idempotent("deposit");
        let payload = Value::list([
            Value::pair(Value::from("to"), Value::from("c")),
            Value::pair(Value::from("amount"), Value::from(7)),
        ]);
        let out = bank.apply(&action, &Value::from("d1"), &payload, &mut rng());
        assert_eq!(out, Value::from(7));
        assert!(bank.is_possible_reply(&action, &payload, &out));
        assert!(!bank.is_possible_reply(&action, &payload, &Value::from("x")));
    }

    #[test]
    fn bank_transfer_receipts_are_non_deterministic() {
        let mut bank = Bank::new([("a".into(), 100)]);
        let action = ActionName::undoable("transfer");
        let p = transfer_payload("a", "b", 1);
        let o1 = bank.apply(&action, &Value::from("r1"), &p, &mut rng());
        let mut rng2 = StdRng::seed_from_u64(99);
        let o2 = bank.apply(&action, &Value::from("r2"), &p, &mut rng2);
        assert_ne!(o1, o2);
    }

    #[test]
    fn kv_put_get_roundtrip() {
        let mut kv = KvStore::new();
        let put = ActionName::idempotent("put");
        let get = ActionName::idempotent("get");
        let p = Value::list([
            Value::pair(Value::from("k"), Value::from("name")),
            Value::pair(Value::from("v"), Value::from("ada")),
        ]);
        assert_eq!(
            kv.apply(&put, &Value::from("w1"), &p, &mut rng()),
            Value::Nil
        );
        let g = Value::list([Value::pair(Value::from("k"), Value::from("name"))]);
        assert_eq!(
            kv.apply(&get, &Value::from("r1"), &g, &mut rng()),
            Value::from("ada")
        );
        assert_eq!(kv.len(), 1);
        assert!(!kv.is_empty());
        assert_eq!(kv.get("name"), Some(&Value::from("ada")));
    }

    #[test]
    fn kv_get_missing_is_nil() {
        let mut kv = KvStore::new();
        let get = ActionName::idempotent("get");
        let g = Value::list([Value::pair(Value::from("k"), Value::from("none"))]);
        assert_eq!(
            kv.apply(&get, &Value::from("r"), &g, &mut rng()),
            Value::Nil
        );
    }

    #[test]
    fn token_issuer_mints_distinct_tokens() {
        let mut t = TokenIssuer::new();
        let a = ActionName::idempotent("issue");
        let t1 = t.apply(&a, &Value::from("r1"), &Value::Nil, &mut rng());
        let mut rng2 = StdRng::seed_from_u64(5);
        let t2 = t.apply(&a, &Value::from("r2"), &Value::Nil, &mut rng2);
        assert_ne!(t1, t2);
        assert_eq!(t.issued(), 2);
        assert!(t.is_possible_reply(&a, &Value::Nil, &t1));
        assert!(!t.is_possible_reply(&a, &Value::Nil, &Value::from("nope")));
    }

    #[test]
    fn reservation_hold_commit_cancel() {
        let mut r = Reservation::new(10);
        let a = ActionName::undoable("reserve");
        let p = Value::list([Value::pair(Value::from("seats"), Value::from(4))]);
        let out = r.apply(&a, &Value::from("r1"), &p, &mut rng());
        assert_eq!(out, Value::from("held"));
        assert_eq!(r.free(), 6);
        r.finalize(&a, &Value::from("r1"), &p);
        assert_eq!(r.confirmed(), 4);
        assert_eq!(r.free(), 6);
        // A second hold that gets cancelled frees its seats.
        let out2 = r.apply(&a, &Value::from("r2"), &p, &mut rng());
        assert_eq!(out2, Value::from("held"));
        assert_eq!(r.free(), 2);
        r.revert(&a, &Value::from("r2"), &p);
        assert_eq!(r.free(), 6);
    }

    #[test]
    fn reservation_rejects_overbooking() {
        let mut r = Reservation::new(3);
        let a = ActionName::undoable("reserve");
        let p = Value::list([Value::pair(Value::from("seats"), Value::from(5))]);
        assert_eq!(
            r.apply(&a, &Value::from("r"), &p, &mut rng()),
            Value::from("rejected")
        );
        assert_eq!(r.free(), 3);
    }

    #[test]
    fn naked_counter_accumulates() {
        let mut c = NakedCounter::new();
        let a = ActionName::idempotent("bump");
        let p = Value::list([Value::pair(Value::from("by"), Value::from(2))]);
        assert_eq!(
            c.apply(&a, &Value::from("r"), &p, &mut rng()),
            Value::from(2)
        );
        assert_eq!(
            c.apply(&a, &Value::from("r"), &p, &mut rng()),
            Value::from(4)
        );
        assert_eq!(c.value(), 4);
    }
}
