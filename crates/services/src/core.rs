//! The service framework: request execution with idempotent / undoable
//! semantics, fault injection, and event recording.
//!
//! [`ServiceCore`] is the server side of the paper's "third-party entity":
//! replicas invoke it with [`ServiceRequest`]s and receive an
//! [`InvokeOutcome`]. The core
//!
//! * deduplicates idempotent actions by request key, answering retries with
//!   the originally stored reply (the realization of "idempotent action"
//!   that makes non-deterministic actions retryable, cf. e-transactions
//!   \[FG99\]);
//! * gives undoable actions transaction semantics per `(key, round)`:
//!   tentative effect on execute, revert on cancel, permanence on commit,
//!   and *poisoning* — a cancelled round rejects later execution attempts
//!   without producing any event (a rejected invocation has no side-effect,
//!   hence no start event, per the failure model of §2.2);
//! * injects transient failures (before or after the effect) so that
//!   `execute-until-success` (Fig. 7) has something to retry;
//! * records every observable event and effect in the shared
//!   [`crate::ledger::Ledger`].

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::RngExt;

use xability_core::{ActionId, ActionKind, ActionName, Event, Value};
use xability_sim::SimTime;

use crate::ledger::{EffectKind, SharedLedger};
use crate::logic::BusinessLogic;

/// What a replica asks a service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Execute the action (the paper's `S.execute(req)`).
    Execute,
    /// Execute the cancellation action `a⁻¹` for a round.
    Cancel,
    /// Execute the commit action `aᶜ` for a round.
    Commit,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Execute => "execute",
            OpKind::Cancel => "cancel",
            OpKind::Commit => "commit",
        };
        write!(f, "{s}")
    }
}

/// An invocation of an external service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRequest {
    /// Execute / cancel / commit.
    pub op: OpKind,
    /// The base action to operate on.
    pub action: ActionName,
    /// The logical request key (deduplication identity). The formal input
    /// value `iv` of the theory is this key.
    pub key: Value,
    /// The protocol round (undoable actions; 0 for idempotent actions).
    /// Cancel and commit are round-specific, per §5.4: "a cancellation
    /// action issued for round number n cannot cancel the action of round
    /// number n + 1".
    pub round: u64,
    /// Domain payload of the action.
    pub payload: Value,
}

impl ServiceRequest {
    /// Convenience constructor for an execute request.
    pub fn execute(action: ActionName, key: Value, round: u64, payload: Value) -> Self {
        ServiceRequest {
            op: OpKind::Execute,
            action,
            key,
            round,
            payload,
        }
    }

    /// The paper's `cancel(req)` primitive (Fig. 7): the request invoking
    /// this request's cancellation action.
    #[must_use]
    pub fn to_cancel(&self) -> ServiceRequest {
        ServiceRequest {
            op: OpKind::Cancel,
            ..self.clone()
        }
    }

    /// The paper's `commit(req)` primitive (Fig. 7).
    #[must_use]
    pub fn to_commit(&self) -> ServiceRequest {
        ServiceRequest {
            op: OpKind::Commit,
            ..self.clone()
        }
    }
}

/// The outcome of one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeOutcome {
    /// The action executed successfully and returned this value.
    Success(Value),
    /// The action failed.
    Failure {
        /// Why it failed.
        reason: String,
        /// `false` for transient faults (retrying may succeed), `true` for
        /// round-state conflicts that retrying can never fix (the round was
        /// cancelled / committed by someone else). A replica that sees a
        /// terminal failure must fall back to result coordination instead
        /// of retrying (cf. the discussion of poisoned rounds in the module
        /// docs).
        terminal: bool,
    },
}

impl InvokeOutcome {
    /// A transient failure.
    pub fn transient(reason: impl Into<String>) -> Self {
        InvokeOutcome::Failure {
            reason: reason.into(),
            terminal: false,
        }
    }

    /// A terminal (round-state) failure.
    pub fn terminal(reason: impl Into<String>) -> Self {
        InvokeOutcome::Failure {
            reason: reason.into(),
            terminal: true,
        }
    }

    /// Returns `true` for successes.
    pub fn is_success(&self) -> bool {
        matches!(self, InvokeOutcome::Success(_))
    }

    /// Returns `true` for terminal failures.
    pub fn is_terminal_failure(&self) -> bool {
        matches!(self, InvokeOutcome::Failure { terminal: true, .. })
    }

    /// The success value, if any.
    pub fn value(&self) -> Option<&Value> {
        match self {
            InvokeOutcome::Success(v) => Some(v),
            InvokeOutcome::Failure { .. } => None,
        }
    }
}

/// Fault-injection plan for a service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePlan {
    /// Probability that an invocation fails transiently.
    pub fail_prob: f64,
    /// Given a failure, probability that it happens *before* the effect
    /// (no event, no effect) as opposed to after the start (start event,
    /// effect possibly applied, reply lost).
    pub before_effect_ratio: f64,
    /// Deterministically fail the first `n` invocations (applied before the
    /// probabilistic rule; useful for reproducible unit tests).
    pub fail_first_n: u64,
}

impl Default for FailurePlan {
    fn default() -> Self {
        FailurePlan {
            fail_prob: 0.0,
            before_effect_ratio: 0.5,
            fail_first_n: 0,
        }
    }
}

impl FailurePlan {
    /// No failures ever.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Fail each invocation independently with probability `p`.
    pub fn probabilistic(p: f64) -> Self {
        FailurePlan {
            fail_prob: p,
            ..FailurePlan::default()
        }
    }

    /// Fail exactly the first `n` invocations.
    pub fn first_n(n: u64) -> Self {
        FailurePlan {
            fail_first_n: n,
            ..FailurePlan::default()
        }
    }
}

/// Configuration of a service instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Fault injection.
    pub failures: FailurePlan,
    /// Whether idempotent actions are deduplicated by request key. Disabling
    /// this models a service that *claims* idempotence but re-applies
    /// effects on retries — used by negative tests and baseline comparisons.
    pub dedup: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            failures: FailurePlan::none(),
            dedup: true,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum UndoState {
    Tentative(Value),
    Committed(Value),
    Cancelled,
}

/// The server side of an external service: framework semantics wrapped
/// around a [`BusinessLogic`].
pub struct ServiceCore {
    logic: Box<dyn BusinessLogic>,
    config: ServiceConfig,
    ledger: SharedLedger,
    /// Stored replies of idempotent actions, by (action, key).
    idem_replies: BTreeMap<(ActionName, Value), Value>,
    /// Undoable transaction state, by (action, key, round).
    undo_state: BTreeMap<(ActionName, Value, u64), UndoState>,
    /// Payloads remembered per undoable round (needed by revert/finalize).
    undo_payloads: BTreeMap<(ActionName, Value, u64), Value>,
    invocations: u64,
}

impl fmt::Debug for ServiceCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceCore")
            .field("service", &self.logic.name())
            .field("config", &self.config)
            .field("invocations", &self.invocations)
            .finish()
    }
}

impl ServiceCore {
    /// Creates a service from domain logic, a config, and the shared ledger.
    pub fn new(logic: Box<dyn BusinessLogic>, config: ServiceConfig, ledger: SharedLedger) -> Self {
        ServiceCore {
            logic,
            config,
            ledger,
            idem_replies: BTreeMap::new(),
            undo_state: BTreeMap::new(),
            undo_payloads: BTreeMap::new(),
            invocations: 0,
        }
    }

    /// The service's name (from its logic).
    pub fn name(&self) -> &str {
        self.logic.name()
    }

    /// The actions the service exports.
    pub fn actions(&self) -> Vec<ActionName> {
        self.logic.actions()
    }

    /// The kind of a named action, if exported.
    pub fn kind_of(&self, action: &str) -> Option<ActionKind> {
        self.logic
            .actions()
            .into_iter()
            .find(|a| a.name() == action)
            .map(|a| a.kind())
    }

    /// Total invocations processed (including failed ones).
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Read-only access to the domain logic (downcast with
    /// `as_any().downcast_ref`).
    pub fn logic(&self) -> &dyn BusinessLogic {
        self.logic.as_ref()
    }

    /// The R4 oracle: could `reply` be a reply of `action` on `payload`?
    pub fn is_possible_reply(&self, action: &ActionName, payload: &Value, reply: &Value) -> bool {
        self.logic.is_possible_reply(action, payload, reply)
    }

    /// Handles one invocation at simulated time `now`.
    ///
    /// This is the only entry point; it implements the semantics described
    /// in the module docs and records events/effects in the ledger.
    pub fn handle(
        &mut self,
        req: &ServiceRequest,
        now: SimTime,
        rng: &mut StdRng,
    ) -> InvokeOutcome {
        self.invocations += 1;
        let injected = self.sample_failure(rng);
        match req.op {
            OpKind::Execute => {
                if req.action.is_idempotent() {
                    self.execute_idempotent(req, now, rng, injected)
                } else {
                    self.execute_undoable(req, now, rng, injected)
                }
            }
            OpKind::Cancel => self.cancel(req, now, injected),
            OpKind::Commit => self.commit(req, now, injected),
        }
    }

    fn sample_failure(&mut self, rng: &mut StdRng) -> Option<bool> {
        // Returns Some(before_effect) when a transient failure is injected.
        if self.invocations <= self.config.failures.fail_first_n {
            return Some(self.invocations % 2 == 1);
        }
        if self.config.failures.fail_prob > 0.0 && rng.random_bool(self.config.failures.fail_prob) {
            let before = rng.random_bool(self.config.failures.before_effect_ratio);
            return Some(before);
        }
        None
    }

    fn record_event(&self, event: Event, now: SimTime) {
        self.ledger
            .borrow_mut()
            .record_event(event, now, self.logic.name());
    }

    fn execute_idempotent(
        &mut self,
        req: &ServiceRequest,
        now: SimTime,
        rng: &mut StdRng,
        injected: Option<bool>,
    ) -> InvokeOutcome {
        let action_id = ActionId::base(req.action.clone());
        if injected == Some(true) {
            // Failure before anything happened: no event, no effect.
            return InvokeOutcome::transient("injected fault (before effect)");
        }
        // Idempotent actions are round-agnostic: their formal input is the
        // plain request key.
        self.record_event(Event::start(action_id.clone(), req.key.clone()), now);

        let idem_key = (req.action.clone(), req.key.clone());
        let stored = if self.config.dedup {
            self.idem_replies.get(&idem_key).cloned()
        } else {
            None
        };
        let reply = match stored {
            Some(v) => v,
            None => {
                let v = self.logic.apply(&req.action, &req.key, &req.payload, rng);
                self.ledger.borrow_mut().record_effect(
                    req.action.clone(),
                    req.key.clone(),
                    0,
                    EffectKind::Applied,
                    now,
                );
                if self.config.dedup {
                    self.idem_replies.insert(idem_key, v.clone());
                }
                v
            }
        };
        if injected == Some(false) {
            // The effect happened (and the reply is stored), but the reply
            // is lost: the caller sees a failure and will retry.
            return InvokeOutcome::transient("injected fault (after effect)");
        }
        self.record_event(Event::complete(action_id, reply.clone()), now);
        InvokeOutcome::Success(reply)
    }

    /// The formal input value of a round-stamped undoable execution: the
    /// paper puts the round number among the action's parameters (§5.4), so
    /// the observable events of round r and round r+1 are distinct actions
    /// for the reduction rules — a stale cancellation of round r cannot be
    /// confused with (or block) the surviving execution of round r+1.
    fn stamped_input(req: &ServiceRequest) -> Value {
        Value::pair(req.key.clone(), Value::Int(req.round as i64))
    }

    fn execute_undoable(
        &mut self,
        req: &ServiceRequest,
        now: SimTime,
        rng: &mut StdRng,
        injected: Option<bool>,
    ) -> InvokeOutcome {
        let action_id = ActionId::base(req.action.clone());
        let formal_iv = Self::stamped_input(req);
        let key = (req.action.clone(), req.key.clone(), req.round);
        match self.undo_state.get(&key) {
            Some(UndoState::Cancelled) => {
                // Poisoned round: reject without any event — a rejected
                // invocation has no side-effect, hence no start event.
                return InvokeOutcome::terminal("round already cancelled");
            }
            Some(UndoState::Committed(v)) => {
                // Duplicate execution of a committed round: answer with the
                // stored value (and record the observation).
                self.ledger.borrow_mut().record_violation(format!(
                    "execute after commit on ({}, {}, round {})",
                    req.action, req.key, req.round
                ));
                let v = v.clone();
                self.record_event(Event::start(action_id.clone(), formal_iv.clone()), now);
                self.record_event(Event::complete(action_id, v.clone()), now);
                return InvokeOutcome::Success(v);
            }
            Some(UndoState::Tentative(v)) => {
                // Duplicate in-flight execution: same round, same
                // transaction — answer with the stored tentative value.
                let v = v.clone();
                self.record_event(Event::start(action_id.clone(), formal_iv.clone()), now);
                self.record_event(Event::complete(action_id, v.clone()), now);
                return InvokeOutcome::Success(v);
            }
            None => {}
        }
        if injected == Some(true) {
            return InvokeOutcome::transient("injected fault (before effect)");
        }
        self.record_event(Event::start(action_id.clone(), formal_iv), now);
        let value = self.logic.apply(&req.action, &req.key, &req.payload, rng);
        self.ledger.borrow_mut().record_effect(
            req.action.clone(),
            req.key.clone(),
            req.round,
            EffectKind::Tentative,
            now,
        );
        self.undo_state
            .insert(key.clone(), UndoState::Tentative(value.clone()));
        self.undo_payloads.insert(key, req.payload.clone());
        if injected == Some(false) {
            return InvokeOutcome::transient("injected fault (after effect)");
        }
        self.record_event(Event::complete(action_id, value.clone()), now);
        InvokeOutcome::Success(value)
    }

    fn cancel(
        &mut self,
        req: &ServiceRequest,
        now: SimTime,
        injected: Option<bool>,
    ) -> InvokeOutcome {
        let action_id = ActionId::Cancel(req.action.clone());
        let formal_iv = Self::stamped_input(req);
        if injected == Some(true) {
            return InvokeOutcome::transient("injected fault (before effect)");
        }
        let key = (req.action.clone(), req.key.clone(), req.round);
        match self.undo_state.get(&key).cloned() {
            Some(UndoState::Committed(_)) => {
                // Cannot cancel a committed transaction. Record the start
                // (the attempt is observable) but fail without completing.
                self.record_event(Event::start(action_id, formal_iv.clone()), now);
                self.ledger.borrow_mut().record_violation(format!(
                    "cancel after commit on ({}, {}, round {})",
                    req.action, req.key, req.round
                ));
                InvokeOutcome::terminal("cannot cancel a committed round")
            }
            Some(UndoState::Cancelled) => {
                // Idempotent duplicate cancellation.
                self.record_event(Event::start(action_id.clone(), formal_iv.clone()), now);
                if injected == Some(false) {
                    return InvokeOutcome::transient("injected fault (after effect)");
                }
                self.record_event(Event::complete(action_id, Value::Nil), now);
                InvokeOutcome::Success(Value::Nil)
            }
            Some(UndoState::Tentative(_)) => {
                self.record_event(Event::start(action_id.clone(), formal_iv.clone()), now);
                let payload = self.undo_payloads.get(&key).cloned().unwrap_or(Value::Nil);
                self.logic.revert(&req.action, &req.key, &payload);
                self.ledger.borrow_mut().record_effect(
                    req.action.clone(),
                    req.key.clone(),
                    req.round,
                    EffectKind::Reverted,
                    now,
                );
                self.undo_state.insert(key, UndoState::Cancelled);
                if injected == Some(false) {
                    return InvokeOutcome::transient("injected fault (after effect)");
                }
                self.record_event(Event::complete(action_id, Value::Nil), now);
                InvokeOutcome::Success(Value::Nil)
            }
            None => {
                // Cancelling a round that never executed *poisons* it: a
                // later execution attempt is rejected without effect.
                self.record_event(Event::start(action_id.clone(), formal_iv.clone()), now);
                self.undo_state.insert(key, UndoState::Cancelled);
                if injected == Some(false) {
                    return InvokeOutcome::transient("injected fault (after effect)");
                }
                self.record_event(Event::complete(action_id, Value::Nil), now);
                InvokeOutcome::Success(Value::Nil)
            }
        }
    }

    fn commit(
        &mut self,
        req: &ServiceRequest,
        now: SimTime,
        injected: Option<bool>,
    ) -> InvokeOutcome {
        let action_id = ActionId::Commit(req.action.clone());
        let formal_iv = Self::stamped_input(req);
        if injected == Some(true) {
            return InvokeOutcome::transient("injected fault (before effect)");
        }
        let key = (req.action.clone(), req.key.clone(), req.round);
        match self.undo_state.get(&key).cloned() {
            Some(UndoState::Cancelled) => {
                self.record_event(Event::start(action_id, formal_iv.clone()), now);
                self.ledger.borrow_mut().record_violation(format!(
                    "commit after cancel on ({}, {}, round {})",
                    req.action, req.key, req.round
                ));
                InvokeOutcome::terminal("cannot commit a cancelled round")
            }
            Some(UndoState::Committed(_)) => {
                // Idempotent duplicate commit.
                self.record_event(Event::start(action_id.clone(), formal_iv.clone()), now);
                if injected == Some(false) {
                    return InvokeOutcome::transient("injected fault (after effect)");
                }
                self.record_event(Event::complete(action_id, Value::Nil), now);
                InvokeOutcome::Success(Value::Nil)
            }
            Some(UndoState::Tentative(v)) => {
                self.record_event(Event::start(action_id.clone(), formal_iv.clone()), now);
                let payload = self.undo_payloads.get(&key).cloned().unwrap_or(Value::Nil);
                self.logic.finalize(&req.action, &req.key, &payload);
                self.ledger.borrow_mut().record_effect(
                    req.action.clone(),
                    req.key.clone(),
                    req.round,
                    EffectKind::Committed,
                    now,
                );
                self.undo_state.insert(key, UndoState::Committed(v));
                if injected == Some(false) {
                    return InvokeOutcome::transient("injected fault (after effect)");
                }
                self.record_event(Event::complete(action_id, Value::Nil), now);
                InvokeOutcome::Success(Value::Nil)
            }
            None => {
                self.record_event(Event::start(action_id, formal_iv.clone()), now);
                self.ledger.borrow_mut().record_violation(format!(
                    "commit of never-executed round ({}, {}, round {})",
                    req.action, req.key, req.round
                ));
                InvokeOutcome::terminal("cannot commit a round that never executed")
            }
        }
    }
}
