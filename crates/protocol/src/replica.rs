//! The x-able replica: Figures 6 and 7 of the paper as an event-driven
//! state machine.
//!
//! The paper's pseudo-code is written with blocking calls (`receive`,
//! `propose`, action execution). Our simulator is event-driven, so every
//! blocking point becomes an explicit continuation:
//!
//! | Paper (Fig. 6/7) | Here |
//! |---|---|
//! | `receive [Request,req]` main loop | [`XReplica::on_message`] on [`ProtoMsg::ClientRequest`] |
//! | `owner-agreement[round].propose(my-id,req,client)` | proposal with `Intent::OwnRound` (private); the continuation runs in `on_decision` |
//! | `execute-until-success(req)` | `Pending::Execute` + retry logic in `on_invoke_reply` |
//! | `result-coordination(req, res-val)` (execution mode) | proposals with `Intent::ExecResult` / `Intent::ExecOutcome` |
//! | `result-coordination(req, empty-result)` (cleaning mode) | proposals with `Intent::CleanResult` / `Intent::CleanOutcome` |
//! | `execute-until-success(cancel(req))` / `(commit(req))` | `Pending::Cancel` / `Pending::Commit` with retries |
//! | `cleaner()` loop | the cleaning scan in `on_timer` / `on_suspicion` |
//!
//! ## Deviations from the paper's pseudo-code (see DESIGN.md)
//!
//! 1. **Per-round result agreement.** `result-agreement` is indexed by
//!    `(request, round)` like `outcome-agreement`. With the per-request
//!    reading, a cleaning-mode `empty-result` would permanently prevent any
//!    round from fixing a result, starving the client (violating R2).
//!    Cross-round result consistency is guaranteed by the external
//!    service's request-keyed deduplication — which is also what makes the
//!    resulting event history reducible under rule 18 (equal outputs).
//! 2. **Cleaner delivery.** A cleaner that finds an already-agreed result
//!    delivers it to the client. Otherwise an owner crash between agreement
//!    and reply would starve the client.
//! 3. **Round-per-attempt for undoable actions.** An owner that sees a
//!    transient failure of an undoable action aborts its round (cancel +
//!    outcome agreement) and retries in a fresh round, rather than retrying
//!    inside the round. This is forced by *round poisoning* at the service:
//!    a cancellation must tombstone its round, or a delayed execution
//!    arriving after a cleaner's cancellation would leave a dangling
//!    tentative effect that no one ever cancels (an R3 violation the
//!    paper's pseudo-code does not address).
//!
//! The protocol's "asynchronous flavour" (§5.1) survives intact: in
//! suspicion-free runs a request is processed entirely by the replica that
//! received it (primary-backup flavour); under false suspicions several
//! replicas run rounds concurrently (active-replication flavour), with the
//! consensus objects arbitrating exactly-once semantics.

use std::collections::{BTreeMap, BTreeSet};

use xability_consensus::{ConsensusEngine, CtxNet, InstanceId};
use xability_core::Value;
use xability_obs::{Counter, Obs};
use xability_services::InvokeOutcome;
use xability_sim::{Actor, Context, ProcessId, SimDuration, TimerId};

use crate::messages::{
    outcome_instance, owner_instance, parse_instance, result_instance, Decision, LogicalRequest,
    ProtoMsg,
};

/// Counters describing one replica's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaMetrics {
    /// `execute` invocations sent to external services.
    pub executions: u64,
    /// `cancel` invocations sent.
    pub cancels: u64,
    /// `commit` invocations sent.
    pub commits: u64,
    /// Rounds this replica owned (won owner agreement for).
    pub rounds_owned: u64,
    /// Cleaning procedures initiated.
    pub cleanings: u64,
    /// Results sent to clients.
    pub replies_sent: u64,
    /// Transient invocation failures observed.
    pub transient_failures: u64,
    /// Terminal invocation failures observed (poisoned rounds).
    pub terminal_failures: u64,
    /// Invocations retransmitted after going unanswered (lost messages).
    pub invoke_retransmits: u64,
}

/// The replica's activity counters as registry instruments, keyed by the
/// replica id (`"r0"`). A fresh replica binds them against a private
/// registry so [`XReplica::metrics`] works standalone;
/// [`XReplica::attach_obs`] rebinds them to a shared registry before the
/// run starts, turning [`ReplicaMetrics`] into a view over that registry.
#[derive(Debug)]
struct ReplicaObs {
    obs: Obs,
    executions: Counter,
    cancels: Counter,
    commits: Counter,
    rounds_owned: Counter,
    cleanings: Counter,
    replies_sent: Counter,
    transient_failures: Counter,
    terminal_failures: Counter,
    invoke_retransmits: Counter,
}

impl ReplicaObs {
    fn bind(obs: Obs, me: ProcessId) -> Self {
        let key = format!("r{}", me.0);
        ReplicaObs {
            executions: obs.counter_keyed("replica.executions", &key),
            cancels: obs.counter_keyed("replica.cancels", &key),
            commits: obs.counter_keyed("replica.commits", &key),
            rounds_owned: obs.counter_keyed("replica.rounds_owned", &key),
            cleanings: obs.counter_keyed("replica.cleanings", &key),
            replies_sent: obs.counter_keyed("replica.replies_sent", &key),
            transient_failures: obs.counter_keyed("replica.transient_failures", &key),
            terminal_failures: obs.counter_keyed("replica.terminal_failures", &key),
            invoke_retransmits: obs.counter_keyed("replica.invoke_retransmits", &key),
            obs,
        }
    }
}

/// Per-request bookkeeping.
#[derive(Debug)]
struct RequestState {
    req: LogicalRequest,
    client: ProcessId,
    /// Every client incarnation that submitted this request to this
    /// replica; results are delivered to all of them (resubmitted requests
    /// come from fresh stubs — R1 makes this safe).
    extra_clients: BTreeSet<ProcessId>,
    /// Known owners per round (from owner-agreement decisions).
    rounds: BTreeMap<u64, ProcessId>,
    /// The agreed result, once known.
    result: Option<Value>,
    /// Rounds this replica initiated cleaning for.
    cleaning: BTreeSet<u64>,
    /// Rounds this replica owns and has started executing.
    owned: BTreeSet<u64>,
    /// Whether this replica already sent the result to the client.
    delivered_by_me: bool,
    /// Whether a client submitted this request directly to this replica
    /// (if so, this replica owes a reply once it learns the result).
    received_directly: bool,
}

/// What a consensus decision was proposed *for* (the continuation).
#[derive(Debug, Clone)]
enum Intent {
    /// `process-request`: proposed myself as owner of a round.
    OwnRound,
    /// Execution-mode result coordination (idempotent action).
    ExecResult { req_id: String, round: u64 },
    /// Execution-mode outcome coordination (undoable action, proposing
    /// commit).
    ExecOutcome { req_id: String, round: u64 },
    /// Owner-side abort after a failed execution (undoable action).
    AbortOutcome { req_id: String, round: u64 },
    /// Cleaning-mode result coordination (idempotent action).
    CleanResult { req_id: String, round: u64 },
    /// Cleaning-mode outcome coordination (undoable action, proposing
    /// abort).
    CleanOutcome { req_id: String, round: u64 },
}

/// One in-flight external invocation: the message (kept so it can be
/// retransmitted) plus its continuation.
#[derive(Debug, Clone)]
struct InFlight {
    service: ProcessId,
    sreq: xability_services::ServiceRequest,
    continuation: Pending,
    /// Ticks since the invocation was (re)sent.
    ticks_waiting: u32,
}

/// In-flight external invocations (the blocking points of Fig. 7).
#[derive(Debug, Clone)]
enum Pending {
    Execute {
        req_id: String,
        round: u64,
    },
    Cancel {
        req_id: String,
        round: u64,
    },
    Commit {
        req_id: String,
        round: u64,
        value: Value,
        deliver: bool,
    },
}

/// Configuration of an x-able replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XReplicaConfig {
    /// Periodic driver interval (consensus round timeouts, cleaning scan).
    pub tick: SimDuration,
    /// Consensus round timeout (passed to the engine).
    pub consensus_round_timeout: SimDuration,
    /// Ticks an external invocation may go unanswered before it is
    /// retransmitted. The paper assumes quasi-reliable channels, but the
    /// simulator's fault model can lose an `Invoke` or its reply outright;
    /// `execute-until-success` (Fig. 7) then requires retransmission, or a
    /// single lost message would strand the round forever. Must exceed the
    /// worst-case healthy round trip (two spiked message legs) so healthy
    /// runs never retransmit.
    pub invoke_retry_ticks: u32,
    /// **Test-only planted weakness**: when an outcome agreement decides
    /// *abort*, skip the cancellation invocation and proceed straight to
    /// the next round — the unsound "retry without cancel" rule that
    /// deviation 3 (round-per-attempt, forced by round poisoning) exists
    /// to rule out. A transient failure *after* the effect then leaves a
    /// dangling tentative effect that nothing ever erases: an R3
    /// violation (`NotXable`) and an exactly-once violation. Exists so
    /// the coverage-guided explorer (`harness::explore`) has a real,
    /// deterministically discoverable bug to find and shrink; never set
    /// outside tests.
    pub unsound_skip_abort_cancel: bool,
}

impl Default for XReplicaConfig {
    fn default() -> Self {
        XReplicaConfig {
            tick: SimDuration::from_millis(10),
            consensus_round_timeout: SimDuration::from_millis(80),
            // 600ms at the default 10ms tick: above the ~500ms worst-case
            // spiked round trip, so only genuinely lost messages retry.
            invoke_retry_ticks: 60,
            unsound_skip_abort_cancel: false,
        }
    }
}

/// A replica running the paper's general replication algorithm (§5).
#[derive(Debug)]
pub struct XReplica {
    me: ProcessId,
    engine: ConsensusEngine<Decision>,
    config: XReplicaConfig,
    requests: BTreeMap<String, RequestState>,
    intents: BTreeMap<InstanceId, Intent>,
    pending: BTreeMap<u64, InFlight>,
    /// Results learned before the request itself (decision reordering).
    orphan_results: BTreeMap<String, Value>,
    next_invocation: u64,
    obs: ReplicaObs,
}

impl XReplica {
    /// Creates a replica. `peers` are the replica processes (not clients or
    /// services), identical at every replica.
    pub fn new(me: ProcessId, peers: Vec<ProcessId>, config: XReplicaConfig) -> Self {
        XReplica {
            me,
            engine: ConsensusEngine::new(me, peers, config.consensus_round_timeout),
            config,
            requests: BTreeMap::new(),
            intents: BTreeMap::new(),
            pending: BTreeMap::new(),
            orphan_results: BTreeMap::new(),
            next_invocation: 0,
            obs: ReplicaObs::bind(Obs::new(), me),
        }
    }

    /// Rebinds this replica's counters (and round spans) to a shared
    /// metrics registry, keyed `"r<id>"`. Call before the run starts;
    /// counts recorded against the private default registry are not
    /// carried over.
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = ReplicaObs::bind(obs.clone(), self.me);
    }

    /// This replica's activity counters: a point-in-time view over the
    /// attached metrics registry.
    pub fn metrics(&self) -> ReplicaMetrics {
        ReplicaMetrics {
            executions: self.obs.executions.get(),
            cancels: self.obs.cancels.get(),
            commits: self.obs.commits.get(),
            rounds_owned: self.obs.rounds_owned.get(),
            cleanings: self.obs.cleanings.get(),
            replies_sent: self.obs.replies_sent.get(),
            transient_failures: self.obs.transient_failures.get(),
            terminal_failures: self.obs.terminal_failures.get(),
            invoke_retransmits: self.obs.invoke_retransmits.get(),
        }
    }

    /// The agreed result of a request, if known to this replica.
    pub fn request_result(&self, req_id: &str) -> Option<&Value> {
        self.requests.get(req_id)?.result.as_ref()
    }

    /// The highest round known for a request (0 if unknown).
    pub fn max_round(&self, req_id: &str) -> u64 {
        self.requests
            .get(req_id)
            .and_then(|st| st.rounds.keys().next_back().copied())
            .unwrap_or(0)
    }

    // ---- helpers ----

    fn ensure_request(&mut self, req: LogicalRequest, client: ProcessId) -> &mut RequestState {
        let id = req.id.clone();
        let orphan = self.orphan_results.remove(&id);
        let entry = self.requests.entry(id).or_insert_with(|| RequestState {
            req,
            client,
            extra_clients: BTreeSet::new(),
            rounds: BTreeMap::new(),
            result: None,
            cleaning: BTreeSet::new(),
            owned: BTreeSet::new(),
            delivered_by_me: false,
            received_directly: false,
        });
        if entry.result.is_none() {
            entry.result = orphan;
        }
        entry
    }

    /// Delivers a passively learned result to clients that submitted the
    /// request directly to this replica (the owner path replies on its own;
    /// this covers replicas the client contacted that did not win
    /// ownership).
    fn deliver_to_local_submitters(&mut self, ctx: &mut Context<'_, ProtoMsg>, req_id: &str) {
        let Some(st) = self.requests.get(req_id) else {
            return;
        };
        if !st.received_directly || st.delivered_by_me {
            return;
        }
        if let Some(v) = st.result.clone() {
            self.reply(ctx, req_id, v);
        }
    }

    fn record_result(&mut self, req_id: &str, value: Value) {
        match self.requests.get_mut(req_id) {
            Some(st) => {
                if st.result.is_none() {
                    st.result = Some(value);
                }
            }
            None => {
                self.orphan_results
                    .entry(req_id.to_owned())
                    .or_insert(value);
            }
        }
    }

    fn reply(&mut self, ctx: &mut Context<'_, ProtoMsg>, req_id: &str, value: Value) {
        self.record_result(req_id, value.clone());
        let Some(st) = self.requests.get_mut(req_id) else {
            return;
        };
        st.delivered_by_me = true;
        let mut clients = st.extra_clients.clone();
        clients.insert(st.client);
        for client in clients {
            self.obs.replies_sent.inc();
            ctx.send(
                client,
                ProtoMsg::ClientResult {
                    req_id: req_id.to_owned(),
                    result: value.clone(),
                },
            );
        }
    }

    fn propose_with_intent(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        inst: InstanceId,
        value: Decision,
        intent: Intent,
    ) {
        self.intents.insert(inst.clone(), intent);
        let decided = {
            let mut net = CtxNet::new(ctx, ProtoMsg::Consensus);
            self.engine.propose(&mut net, inst.clone(), value)
        };
        if let Some(d) = decided {
            self.on_decision(ctx, inst, d);
        }
    }

    fn invoke(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        service: ProcessId,
        sreq: xability_services::ServiceRequest,
        pending: Pending,
    ) {
        let invocation = self.next_invocation;
        self.next_invocation += 1;
        self.pending.insert(
            invocation,
            InFlight {
                service,
                sreq: sreq.clone(),
                continuation: pending,
                ticks_waiting: 0,
            },
        );
        ctx.send(service, ProtoMsg::Invoke { invocation, sreq });
    }

    /// Retransmits invocations that have gone unanswered for
    /// `invoke_retry_ticks` ticks (lost `Invoke` or lost reply). Safe
    /// against a merely slow original: the service deduplicates effects per
    /// request key and round, and a second reply finds no pending entry.
    fn retransmit_stale_invokes(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let mut retransmits = 0;
        for (&invocation, inflight) in self.pending.iter_mut() {
            inflight.ticks_waiting += 1;
            if inflight.ticks_waiting >= self.config.invoke_retry_ticks {
                inflight.ticks_waiting = 0;
                retransmits += 1;
                ctx.send(
                    inflight.service,
                    ProtoMsg::Invoke {
                        invocation,
                        sreq: inflight.sreq.clone(),
                    },
                );
            }
        }
        self.obs.invoke_retransmits.add(retransmits);
    }

    /// External invocations still awaiting a reply. A run is only
    /// *quiescent* — i.e. its recorded history is a complete execution
    /// rather than a mid-flight cut — when this is zero on every replica.
    pub fn pending_invocations(&self) -> usize {
        self.pending.len()
    }

    // ---- process-request (Fig. 6) ----

    /// Proposes this replica as owner of `round` for the request. The
    /// continuation (executing if we win) runs when owner agreement
    /// decides.
    fn process_request(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        req: LogicalRequest,
        client: ProcessId,
        round: u64,
    ) {
        let inst = owner_instance(&req.id, round);
        let proposal = Decision::Owner {
            owner: self.me,
            req: req.clone(),
            client,
        };
        self.ensure_request(req, client);
        self.propose_with_intent(ctx, inst, proposal, Intent::OwnRound);
    }

    fn start_execution(&mut self, ctx: &mut Context<'_, ProtoMsg>, req_id: &str, round: u64) {
        let Some(st) = self.requests.get_mut(req_id) else {
            return;
        };
        if st.result.is_some() || !st.owned.insert(round) {
            return;
        }
        let req = st.req.clone();
        self.obs.rounds_owned.inc();
        self.obs.executions.inc();
        self.obs
            .obs
            .span_start("replica.round", req_id, round, ctx.now().as_micros());
        self.invoke(
            ctx,
            req.service,
            req.service_request(round),
            Pending::Execute {
                req_id: req_id.to_owned(),
                round,
            },
        );
    }

    /// Closes the `replica.round` span for a round this replica owns
    /// (no-op for rounds executed elsewhere, so helping a commit or
    /// cleaning a foreign round never fabricates a span).
    fn end_round_span(&mut self, ctx: &Context<'_, ProtoMsg>, req_id: &str, round: u64) {
        if self
            .requests
            .get(req_id)
            .is_some_and(|st| st.owned.contains(&round))
        {
            self.obs
                .obs
                .span_end("replica.round", req_id, round, ctx.now().as_micros());
        }
    }

    fn start_next_round(&mut self, ctx: &mut Context<'_, ProtoMsg>, req_id: &str, next: u64) {
        let Some(st) = self.requests.get(req_id) else {
            return;
        };
        if st.result.is_some() || st.rounds.contains_key(&next) {
            return;
        }
        let (req, client) = (st.req.clone(), st.client);
        self.process_request(ctx, req, client, next);
    }

    // ---- the cleaner (Fig. 6, bottom) ----

    /// One pass of the cleaner: for every request whose highest-round owner
    /// is suspected, run cleaning-mode result coordination (or deliver the
    /// already-known result).
    fn cleaning_scan(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let candidates: Vec<(String, u64, ProcessId)> = self
            .requests
            .iter()
            .filter_map(|(id, st)| {
                let (&round, &owner) = st.rounds.iter().next_back()?;
                Some((id.clone(), round, owner))
            })
            .collect();
        for (req_id, round, owner) in candidates {
            if owner == self.me || !ctx.suspects(owner) {
                continue;
            }
            let st = self.requests.get(&req_id).expect("listed");
            let undoable = st.req.action.is_undoable();
            if let Some(v) = st.result.clone() {
                // Deviation 2: the owner may have crashed after agreement
                // but before replying; deliver the agreed result once.
                if !st.delivered_by_me {
                    self.reply(ctx, &req_id, v);
                }
                if !undoable {
                    continue;
                }
                // A known result does NOT mean the round is resolved: the
                // owner may have crashed after outcome agreement but
                // before its commit (or cancel) invocation landed,
                // leaving the round's tentative effect dangling (an R3
                // violation if never resolved). Fall through to the
                // cleaning-mode outcome coordination below — its
                // continuation helps the commit (idempotent, rule 20) or
                // cancels the round.
            }
            let st = self.requests.get_mut(&req_id).expect("listed");
            if !st.cleaning.insert(round) {
                continue;
            }
            self.obs.cleanings.inc();
            if undoable {
                self.propose_with_intent(
                    ctx,
                    outcome_instance(&req_id, round),
                    Decision::Outcome {
                        abort: true,
                        value: None,
                    },
                    Intent::CleanOutcome {
                        req_id: req_id.clone(),
                        round,
                    },
                );
            } else {
                self.propose_with_intent(
                    ctx,
                    result_instance(&req_id, round),
                    Decision::ResultAgreed(None),
                    Intent::CleanResult {
                        req_id: req_id.clone(),
                        round,
                    },
                );
            }
        }
    }

    // ---- decision continuations ----

    fn on_decisions(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        decided: Vec<(InstanceId, Decision)>,
    ) {
        for (inst, dec) in decided {
            self.on_decision(ctx, inst, dec);
        }
    }

    fn on_decision(&mut self, ctx: &mut Context<'_, ProtoMsg>, inst: InstanceId, dec: Decision) {
        let intent = self.intents.remove(&inst);

        // Causal waypoint: a decision landing for an instance this replica
        // proposed (one event per proposer, not one per learner).
        if intent.is_some() {
            if let Some((_, req_id, round)) = parse_instance(&inst) {
                self.obs
                    .obs
                    .span_event("consensus.decide", req_id, round, ctx.now().as_micros());
            }
        }

        // Passive learning: every replica tracks owners and results from
        // decisions regardless of who proposed.
        match (&dec, parse_instance(&inst)) {
            (Decision::Owner { owner, req, client }, Some(("owner", _, round))) => {
                let me = self.me;
                let owner = *owner;
                let client = *client;
                let req = req.clone();
                let req_id = req.id.clone();
                let st = self.ensure_request(req, client);
                st.rounds.insert(round, owner);
                if owner == me {
                    self.start_execution(ctx, &req_id, round);
                }
            }
            (Decision::ResultAgreed(Some(v)), Some(("result", req_id, _))) => {
                let (req_id, v) = (req_id.to_owned(), v.clone());
                self.record_result(&req_id, v);
                self.deliver_to_local_submitters(ctx, &req_id);
            }
            (
                Decision::Outcome {
                    abort: false,
                    value: Some(v),
                },
                Some(("outcome", req_id, _)),
            ) => {
                let (req_id, v) = (req_id.to_owned(), v.clone());
                self.record_result(&req_id, v);
                self.deliver_to_local_submitters(ctx, &req_id);
            }
            _ => {}
        }

        // Intent continuations (the blocked pseudo-code resuming).
        match intent {
            None | Some(Intent::OwnRound) => {}
            Some(Intent::ExecResult { req_id, round }) => {
                self.end_round_span(ctx, &req_id, round);
                match dec {
                    Decision::ResultAgreed(Some(v)) => self.reply(ctx, &req_id, v),
                    // A cleaner blocked this round's result; it drives the
                    // next round. We executed, but must not respond
                    // (res-val == empty-result in Fig. 6).
                    Decision::ResultAgreed(None) => {}
                    _ => {}
                }
            }
            Some(Intent::ExecOutcome { req_id, round })
            | Some(Intent::AbortOutcome { req_id, round }) => match dec {
                Decision::Outcome { abort: true, .. } => {
                    self.abort_round(ctx, &req_id, round);
                }
                Decision::Outcome {
                    abort: false,
                    value: Some(v),
                } => {
                    self.start_commit(ctx, &req_id, round, v, true);
                }
                _ => {}
            },
            Some(Intent::CleanResult { req_id, round }) => match dec {
                Decision::ResultAgreed(Some(v)) => self.reply(ctx, &req_id, v),
                Decision::ResultAgreed(None) => {
                    self.start_next_round(ctx, &req_id, round + 1);
                }
                _ => {}
            },
            Some(Intent::CleanOutcome { req_id, round }) => match dec {
                Decision::Outcome { abort: true, .. } => {
                    self.abort_round(ctx, &req_id, round);
                }
                Decision::Outcome {
                    abort: false,
                    value: Some(v),
                } => {
                    // The owner committed; help the commit and deliver.
                    self.start_commit(ctx, &req_id, round, v, true);
                }
                _ => {}
            },
        }
    }

    // ---- execute-until-success / cancel / commit (Fig. 7) ----

    /// An outcome agreement decided abort: cancel the round, then (on
    /// cancel success) retry in a fresh round. With the test-only
    /// [`XReplicaConfig::unsound_skip_abort_cancel`] weakness planted, the
    /// cancel is skipped and its success continuation runs directly —
    /// leaving any post-effect tentative state dangling forever.
    fn abort_round(&mut self, ctx: &mut Context<'_, ProtoMsg>, req_id: &str, round: u64) {
        if self.config.unsound_skip_abort_cancel {
            self.start_next_round(ctx, req_id, round + 1);
        } else {
            self.start_cancel(ctx, req_id, round);
        }
    }

    fn start_cancel(&mut self, ctx: &mut Context<'_, ProtoMsg>, req_id: &str, round: u64) {
        let Some(st) = self.requests.get(req_id) else {
            return;
        };
        let req = st.req.clone();
        self.obs.cancels.inc();
        self.invoke(
            ctx,
            req.service,
            req.service_request(round).to_cancel(),
            Pending::Cancel {
                req_id: req_id.to_owned(),
                round,
            },
        );
    }

    fn start_commit(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        req_id: &str,
        round: u64,
        value: Value,
        deliver: bool,
    ) {
        let Some(st) = self.requests.get(req_id) else {
            return;
        };
        let req = st.req.clone();
        self.obs.commits.inc();
        self.invoke(
            ctx,
            req.service,
            req.service_request(round).to_commit(),
            Pending::Commit {
                req_id: req_id.to_owned(),
                round,
                value,
                deliver,
            },
        );
    }

    fn on_invoke_reply(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        invocation: u64,
        outcome: InvokeOutcome,
    ) {
        let Some(inflight) = self.pending.remove(&invocation) else {
            return;
        };
        match inflight.continuation {
            Pending::Execute { req_id, round } => match outcome {
                InvokeOutcome::Success(v) => {
                    let undoable = self
                        .requests
                        .get(&req_id)
                        .map(|st| st.req.action.is_undoable())
                        .unwrap_or(false);
                    if undoable {
                        self.propose_with_intent(
                            ctx,
                            outcome_instance(&req_id, round),
                            Decision::Outcome {
                                abort: false,
                                value: Some(v),
                            },
                            Intent::ExecOutcome { req_id, round },
                        );
                    } else {
                        self.propose_with_intent(
                            ctx,
                            result_instance(&req_id, round),
                            Decision::ResultAgreed(Some(v)),
                            Intent::ExecResult { req_id, round },
                        );
                    }
                }
                InvokeOutcome::Failure { terminal, .. } => {
                    if terminal {
                        self.obs.terminal_failures.inc();
                    } else {
                        self.obs.transient_failures.inc();
                    }
                    let undoable = self
                        .requests
                        .get(&req_id)
                        .map(|st| st.req.action.is_undoable())
                        .unwrap_or(false);
                    if undoable {
                        // Deviation 3: abort this round and retry in a fresh
                        // one (round poisoning makes within-round retry
                        // unsound).
                        self.propose_with_intent(
                            ctx,
                            outcome_instance(&req_id, round),
                            Decision::Outcome {
                                abort: true,
                                value: None,
                            },
                            Intent::AbortOutcome { req_id, round },
                        );
                    } else {
                        // Idempotent action: plain retry (Fig. 7).
                        let Some(st) = self.requests.get(&req_id) else {
                            return;
                        };
                        let req = st.req.clone();
                        self.obs.executions.inc();
                        self.invoke(
                            ctx,
                            req.service,
                            req.service_request(round),
                            Pending::Execute { req_id, round },
                        );
                    }
                }
            },
            Pending::Cancel { req_id, round } => match outcome {
                InvokeOutcome::Success(_) => {
                    self.end_round_span(ctx, &req_id, round);
                    self.start_next_round(ctx, &req_id, round + 1);
                }
                InvokeOutcome::Failure {
                    terminal: false, ..
                } => {
                    self.obs.transient_failures.inc();
                    self.start_cancel(ctx, &req_id, round);
                }
                InvokeOutcome::Failure { terminal: true, .. } => {
                    // Cancel conflicts with an existing commit: impossible
                    // when outcome agreement decided abort (agreement), so
                    // this indicates a logic error; drop the flow.
                    self.obs.terminal_failures.inc();
                }
            },
            Pending::Commit {
                req_id,
                round,
                value,
                deliver,
            } => match outcome {
                InvokeOutcome::Success(_) => {
                    self.end_round_span(ctx, &req_id, round);
                    if deliver {
                        self.reply(ctx, &req_id, value);
                    } else {
                        self.record_result(&req_id, value);
                    }
                }
                InvokeOutcome::Failure {
                    terminal: false, ..
                } => {
                    self.obs.transient_failures.inc();
                    self.start_commit(ctx, &req_id, round, value, deliver);
                }
                InvokeOutcome::Failure { terminal: true, .. } => {
                    self.obs.terminal_failures.inc();
                }
            },
        }
    }
}

impl Actor<ProtoMsg> for XReplica {
    fn on_start(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        ctx.set_timer(self.config.tick);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: ProcessId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::ClientRequest { req } => {
                // Fig. 6 main loop: req.round := 1; process-request.
                if let Some(st) = self.requests.get_mut(&req.id) {
                    // Remember this (possibly new) client incarnation.
                    st.received_directly = true;
                    if st.client != from {
                        st.extra_clients.insert(from);
                    }
                    if let Some(v) = st.result.clone() {
                        // Resubmission of a completed request: submit is
                        // idempotent (R1) — answer with the agreed result.
                        self.obs.replies_sent.inc();
                        ctx.send(
                            from,
                            ProtoMsg::ClientResult {
                                req_id: req.id.clone(),
                                result: v,
                            },
                        );
                        return;
                    }
                    // Known and in progress: the owner/cleaner machinery is
                    // already responsible for it.
                    return;
                }
                let req_id = req.id.clone();
                self.process_request(ctx, req, from, 1);
                if let Some(st) = self.requests.get_mut(&req_id) {
                    st.received_directly = true;
                }
            }
            ProtoMsg::Consensus(cm) => {
                let decided = {
                    let mut net = CtxNet::new(ctx, ProtoMsg::Consensus);
                    self.engine.on_message(&mut net, from, cm)
                };
                self.on_decisions(ctx, decided);
            }
            ProtoMsg::InvokeReply {
                invocation,
                outcome,
            } => {
                self.on_invoke_reply(ctx, invocation, outcome);
            }
            // Not part of this protocol (baseline traffic / client-bound).
            ProtoMsg::ClientResult { .. } | ProtoMsg::Invoke { .. } | ProtoMsg::Forward { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, _timer: TimerId) {
        let decided = {
            let mut net = CtxNet::new(ctx, ProtoMsg::Consensus);
            self.engine.on_tick(&mut net)
        };
        self.on_decisions(ctx, decided);
        self.cleaning_scan(ctx);
        self.retransmit_stale_invokes(ctx);
        ctx.set_timer(self.config.tick);
    }

    fn on_suspicion(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        _subject: ProcessId,
        suspected: bool,
    ) {
        if suspected {
            self.cleaning_scan(ctx);
        }
    }
}
