//! Adapter exposing a [`ServiceCore`] as a simulated process.

use std::collections::BTreeMap;

use xability_services::{InvokeOutcome, ServiceCore};
use xability_sim::{Actor, Context, ProcessId};

use crate::messages::ProtoMsg;

/// A third-party external service as a simulated process: answers
/// [`ProtoMsg::Invoke`] with [`ProtoMsg::InvokeReply`].
///
/// Services are assumed correct (they are the environment, not the
/// replicated system); transient invocation failures are injected by the
/// core's [`xability_services::FailurePlan`].
///
/// The paper assumes quasi-reliable replica↔service channels — no
/// duplication. The simulator's fault model *can* duplicate messages (and
/// replicas retransmit unanswered invocations), so the actor restores
/// at-most-once invocation semantics itself: each `(caller, invocation)`
/// is executed once and its recorded outcome replayed for every later
/// copy. Without this filter a duplicated *undoable* execution would
/// re-run inside its round, and the resulting double event pair is
/// irreducible — rules 18/20 only deduplicate idempotent, cancellation,
/// and commit actions, not undoable bases.
#[derive(Debug)]
pub struct ServiceActor {
    core: ServiceCore,
    answered: BTreeMap<(ProcessId, u64), InvokeOutcome>,
}

impl ServiceActor {
    /// Wraps a service core.
    pub fn new(core: ServiceCore) -> Self {
        ServiceActor {
            core,
            answered: BTreeMap::new(),
        }
    }

    /// Access to the core (for post-run inspection).
    pub fn core(&self) -> &ServiceCore {
        &self.core
    }
}

impl Actor<ProtoMsg> for ServiceActor {
    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: ProcessId, msg: ProtoMsg) {
        let ProtoMsg::Invoke { invocation, sreq } = msg else {
            return;
        };
        let outcome = match self.answered.get(&(from, invocation)) {
            // Duplicate delivery (network dup or retransmission): replay
            // the recorded outcome without re-executing.
            Some(outcome) => outcome.clone(),
            None => {
                let now = ctx.now();
                let outcome = self.core.handle(&sreq, now, ctx.rng());
                self.answered.insert((from, invocation), outcome.clone());
                outcome
            }
        };
        ctx.send(
            from,
            ProtoMsg::InvokeReply {
                invocation,
                outcome,
            },
        );
    }
}
