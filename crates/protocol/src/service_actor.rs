//! Adapter exposing a [`ServiceCore`] as a simulated process.

use xability_services::ServiceCore;
use xability_sim::{Actor, Context, ProcessId};

use crate::messages::ProtoMsg;

/// A third-party external service as a simulated process: answers
/// [`ProtoMsg::Invoke`] with [`ProtoMsg::InvokeReply`].
///
/// Services are assumed correct (they are the environment, not the
/// replicated system); transient invocation failures are injected by the
/// core's [`xability_services::FailurePlan`].
#[derive(Debug)]
pub struct ServiceActor {
    core: ServiceCore,
}

impl ServiceActor {
    /// Wraps a service core.
    pub fn new(core: ServiceCore) -> Self {
        ServiceActor { core }
    }

    /// Access to the core (for post-run inspection).
    pub fn core(&self) -> &ServiceCore {
        &self.core
    }
}

impl Actor<ProtoMsg> for ServiceActor {
    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: ProcessId, msg: ProtoMsg) {
        let ProtoMsg::Invoke { invocation, sreq } = msg else {
            return;
        };
        let now = ctx.now();
        let outcome = self.core.handle(&sreq, now, ctx.rng());
        ctx.send(
            from,
            ProtoMsg::InvokeReply {
                invocation,
                outcome,
            },
        );
    }
}
