//! Baseline replication schemes the paper positions itself against (§1,
//! §5.1, §6): primary-backup \[BMST93\] and active replication \[Sch93\].
//!
//! Both are implemented *honestly* over the same simulator, client and
//! external services as the x-able protocol, so that the experiments can
//! measure — rather than assume — how they violate exactly-once semantics
//! for actions with external side-effects:
//!
//! * **Primary-backup** ([`PbReplica`]): the primary logs the request to
//!   the backups, executes it against the external service (committing
//!   undoable actions immediately), and replies. A backup that believes
//!   every lower-ranked replica has failed takes over and re-executes
//!   incomplete logged requests. Under crashes (effect applied, reply
//!   lost) or false suspicions, two replicas execute the same request in
//!   different transactions — a duplicated external side-effect.
//! * **Active replication** ([`ActiveReplica`]): the contacted replica
//!   broadcasts the request; *every* replica executes it independently and
//!   replies (the client takes the first reply). With a single sequential
//!   client, total-order broadcast degenerates to plain broadcast, so no
//!   consensus is needed. Every undoable action is committed once per
//!   replica: n-fold duplication by design — the scheme is only correct
//!   for deterministic actions without external side-effects, exactly as
//!   the paper argues.

use std::collections::BTreeMap;

use xability_core::Value;
use xability_services::InvokeOutcome;
use xability_sim::{Actor, Context, ProcessId, SimDuration, TimerId};

use crate::messages::{LogicalRequest, ProtoMsg};

/// Counters shared by both baselines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineMetrics {
    /// `execute` invocations sent.
    pub executions: u64,
    /// `commit` invocations sent.
    pub commits: u64,
    /// Results sent to clients.
    pub replies_sent: u64,
    /// Takeovers (primary-backup only).
    pub takeovers: u64,
}

#[derive(Debug, Clone)]
enum ReqPhase {
    Logged,
    Executing,
    Committing,
    Done,
}

#[derive(Debug)]
struct ReqEntry {
    req: LogicalRequest,
    client: ProcessId,
    phase: ReqPhase,
    attempt: u64,
}

#[derive(Debug, Clone)]
enum PendingKind {
    Execute,
    Commit(Value),
}

#[derive(Debug)]
struct PendingInvoke {
    req_id: String,
    kind: PendingKind,
}

/// Common machinery: execute a request against its service (with retries),
/// committing undoable actions immediately after success, then reply.
#[derive(Debug)]
struct ExecCore {
    rank: usize,
    requests: BTreeMap<String, ReqEntry>,
    pending: BTreeMap<u64, PendingInvoke>,
    next_invocation: u64,
    metrics: BaselineMetrics,
}

impl ExecCore {
    fn new(rank: usize) -> Self {
        ExecCore {
            rank,
            requests: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_invocation: 0,
            metrics: BaselineMetrics::default(),
        }
    }

    fn log(&mut self, req: LogicalRequest, client: ProcessId) {
        self.requests.entry(req.id.clone()).or_insert(ReqEntry {
            req,
            client,
            phase: ReqPhase::Logged,
            attempt: 0,
        });
    }

    /// Rounds are disjoint across replicas (and attempts), so re-execution
    /// after failover lands in a fresh transaction — the duplication the
    /// baseline measurement is about.
    fn round_for(rank: usize, attempt: u64) -> u64 {
        1 + rank as u64 * 1_000 + attempt
    }

    fn start_execute(&mut self, ctx: &mut Context<'_, ProtoMsg>, req_id: &str) {
        let rank = self.rank;
        let rank_round = {
            let Some(entry) = self.requests.get_mut(req_id) else {
                return;
            };
            if !matches!(entry.phase, ReqPhase::Logged) {
                return;
            }
            entry.phase = ReqPhase::Executing;
            Self::round_for(rank, entry.attempt)
        };
        self.send_execute(ctx, req_id, rank_round);
    }

    fn send_execute(&mut self, ctx: &mut Context<'_, ProtoMsg>, req_id: &str, round: u64) {
        let Some(entry) = self.requests.get(req_id) else {
            return;
        };
        let sreq = entry.req.service_request(round);
        let service = entry.req.service;
        let invocation = self.next_invocation;
        self.next_invocation += 1;
        self.metrics.executions += 1;
        self.pending.insert(
            invocation,
            PendingInvoke {
                req_id: req_id.to_owned(),
                kind: PendingKind::Execute,
            },
        );
        ctx.send(service, ProtoMsg::Invoke { invocation, sreq });
    }

    fn send_commit(&mut self, ctx: &mut Context<'_, ProtoMsg>, req_id: &str, value: Value) {
        let rank = self.rank;
        let (service, sreq) = {
            let Some(entry) = self.requests.get_mut(req_id) else {
                return;
            };
            entry.phase = ReqPhase::Committing;
            let round = Self::round_for(rank, entry.attempt);
            (
                entry.req.service,
                entry.req.service_request(round).to_commit(),
            )
        };
        let invocation = self.next_invocation;
        self.next_invocation += 1;
        self.metrics.commits += 1;
        self.pending.insert(
            invocation,
            PendingInvoke {
                req_id: req_id.to_owned(),
                kind: PendingKind::Commit(value),
            },
        );
        ctx.send(service, ProtoMsg::Invoke { invocation, sreq });
    }

    fn finish(&mut self, ctx: &mut Context<'_, ProtoMsg>, req_id: &str, value: Value) {
        let Some(entry) = self.requests.get_mut(req_id) else {
            return;
        };
        entry.phase = ReqPhase::Done;
        let client = entry.client;
        self.metrics.replies_sent += 1;
        ctx.send(
            client,
            ProtoMsg::ClientResult {
                req_id: req_id.to_owned(),
                result: value,
            },
        );
    }

    fn on_invoke_reply(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        invocation: u64,
        outcome: InvokeOutcome,
    ) {
        let Some(pending) = self.pending.remove(&invocation) else {
            return;
        };
        let req_id = pending.req_id;
        match pending.kind {
            PendingKind::Execute => match outcome {
                InvokeOutcome::Success(v) => {
                    let undoable = self
                        .requests
                        .get(&req_id)
                        .map(|e| e.req.action.is_undoable())
                        .unwrap_or(false);
                    if undoable {
                        self.send_commit(ctx, &req_id, v);
                    } else {
                        self.finish(ctx, &req_id, v);
                    }
                }
                InvokeOutcome::Failure { .. } => {
                    // Retry in a fresh attempt (fresh transaction).
                    let rank = self.rank;
                    let round = {
                        let Some(entry) = self.requests.get_mut(&req_id) else {
                            return;
                        };
                        entry.attempt += 1;
                        Self::round_for(rank, entry.attempt)
                    };
                    self.send_execute(ctx, &req_id, round);
                }
            },
            PendingKind::Commit(v) => match outcome {
                InvokeOutcome::Success(_) => self.finish(ctx, &req_id, v),
                InvokeOutcome::Failure {
                    terminal: false, ..
                } => {
                    self.send_commit(ctx, &req_id, v);
                }
                InvokeOutcome::Failure { terminal: true, .. } => {}
            },
        }
    }
}

/// A primary-backup replica \[BMST93\] with external side-effects.
#[derive(Debug)]
pub struct PbReplica {
    me: ProcessId,
    peers: Vec<ProcessId>,
    core: ExecCore,
    was_primary: bool,
    tick: SimDuration,
}

impl PbReplica {
    /// Creates a replica; `peers[rank]` must equal `me`, and `peers[0]` is
    /// the initial primary.
    pub fn new(me: ProcessId, peers: Vec<ProcessId>) -> Self {
        let rank = peers
            .iter()
            .position(|&p| p == me)
            .expect("peers must include me");
        PbReplica {
            me,
            peers,
            core: ExecCore::new(rank),
            was_primary: rank == 0,
            tick: SimDuration::from_millis(10),
        }
    }

    /// This replica's counters.
    pub fn metrics(&self) -> &BaselineMetrics {
        &self.core.metrics
    }

    /// Do I currently believe I am the primary (every lower rank
    /// suspected)?
    fn believes_primary(&self, ctx: &Context<'_, ProtoMsg>) -> bool {
        self.peers[..self.core.rank]
            .iter()
            .all(|&p| ctx.suspects(p))
    }

    /// The replica this one currently believes to be primary.
    fn believed_primary(&self, ctx: &Context<'_, ProtoMsg>) -> ProcessId {
        for &p in &self.peers {
            if p == self.me || !ctx.suspects(p) {
                return p;
            }
        }
        self.me
    }

    fn maybe_take_over(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        if !self.believes_primary(ctx) {
            self.was_primary = false;
            return;
        }
        if !self.was_primary {
            self.was_primary = true;
            self.core.metrics.takeovers += 1;
        }
        // Execute every logged request that I have not completed myself.
        let ids: Vec<String> = self
            .core
            .requests
            .iter()
            .filter(|(_, e)| matches!(e.phase, ReqPhase::Logged))
            .map(|(id, _)| id.clone())
            .collect();
        for id in ids {
            self.core.start_execute(ctx, &id);
        }
    }
}

impl Actor<ProtoMsg> for PbReplica {
    fn on_start(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        ctx.set_timer(self.tick);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: ProcessId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::ClientRequest { req } => {
                if self.believes_primary(ctx) {
                    // Log to backups, then execute.
                    for &p in &self.peers.clone() {
                        if p != self.me {
                            ctx.send(
                                p,
                                ProtoMsg::Forward {
                                    req: req.clone(),
                                    client: from,
                                },
                            );
                        }
                    }
                    let id = req.id.clone();
                    self.core.log(req, from);
                    self.core.start_execute(ctx, &id);
                } else {
                    // Route to the believed primary.
                    let primary = self.believed_primary(ctx);
                    ctx.send(primary, ProtoMsg::ClientRequest { req });
                }
            }
            ProtoMsg::Forward { req, client } => {
                self.core.log(req, client);
            }
            ProtoMsg::InvokeReply {
                invocation,
                outcome,
            } => {
                self.core.on_invoke_reply(ctx, invocation, outcome);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, _timer: TimerId) {
        self.maybe_take_over(ctx);
        ctx.set_timer(self.tick);
    }

    fn on_suspicion(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        _subject: ProcessId,
        suspected: bool,
    ) {
        if suspected {
            self.maybe_take_over(ctx);
        }
    }
}

/// An active-replication replica \[Sch93\] with external side-effects.
#[derive(Debug)]
pub struct ActiveReplica {
    me: ProcessId,
    peers: Vec<ProcessId>,
    core: ExecCore,
}

impl ActiveReplica {
    /// Creates a replica; `peers` must include `me`.
    pub fn new(me: ProcessId, peers: Vec<ProcessId>) -> Self {
        let rank = peers
            .iter()
            .position(|&p| p == me)
            .expect("peers must include me");
        ActiveReplica {
            me,
            peers,
            core: ExecCore::new(rank),
        }
    }

    /// This replica's counters.
    pub fn metrics(&self) -> &BaselineMetrics {
        &self.core.metrics
    }
}

impl Actor<ProtoMsg> for ActiveReplica {
    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: ProcessId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::ClientRequest { req } => {
                // Broadcast; every replica (including me) executes.
                for &p in &self.peers.clone() {
                    if p != self.me {
                        ctx.send(
                            p,
                            ProtoMsg::Forward {
                                req: req.clone(),
                                client: from,
                            },
                        );
                    }
                }
                let id = req.id.clone();
                self.core.log(req, from);
                self.core.start_execute(ctx, &id);
            }
            ProtoMsg::Forward { req, client } => {
                let id = req.id.clone();
                self.core.log(req, client);
                self.core.start_execute(ctx, &id);
            }
            ProtoMsg::InvokeReply {
                invocation,
                outcome,
            } => {
                self.core.on_invoke_reply(ctx, invocation, outcome);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "peers must include me")]
    fn pb_requires_membership() {
        let _ = PbReplica::new(ProcessId(5), vec![ProcessId(0)]);
    }

    #[test]
    #[should_panic(expected = "peers must include me")]
    fn active_requires_membership() {
        let _ = ActiveReplica::new(ProcessId(5), vec![ProcessId(0)]);
    }

    #[test]
    fn rounds_are_disjoint_across_replicas_and_attempts() {
        assert_ne!(ExecCore::round_for(0, 0), ExecCore::round_for(1, 0));
        assert_ne!(ExecCore::round_for(0, 0), ExecCore::round_for(0, 1));
        // Attempt space never collides with the next rank.
        assert!(ExecCore::round_for(0, 999) < ExecCore::round_for(1, 0));
    }
}
