//! The client-side algorithm (Fig. 5) plus the retry driver that realizes
//! requirements R1/R2.
//!
//! Fig. 5's `submit` sends the request to one replica and waits until it
//! either receives a result or suspects the replica, in which case it
//! advances to the next replica and returns `failure`. Because `submit` is
//! idempotent (R1) and must eventually succeed (R2), the natural client is
//! a loop that re-invokes `submit` until it returns a result — that loop is
//! implemented here, and the number of failed `submit` invocations is
//! recorded for the experiments.

use std::collections::BTreeMap;

use xability_core::Value;
use xability_sim::{Actor, Context, ProcessId, SimDuration, SimTime, TimerId};

use crate::messages::{LogicalRequest, ProtoMsg};

/// Client-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientMetrics {
    /// `submit` invocations (initial sends plus resubmissions).
    pub submissions: u64,
    /// `submit` invocations that returned failure (suspicion of the
    /// contacted replica).
    pub failures: u64,
}

/// A client submitting a sequence of requests, one after another (§4's
/// model: `Rᵢ₊₁` is submitted only after `Rᵢ` succeeded).
#[derive(Debug)]
pub struct Client {
    replicas: Vec<ProcessId>,
    plan: Vec<LogicalRequest>,
    current: usize,
    cursor: usize,
    waiting_on: Option<ProcessId>,
    results: BTreeMap<String, Value>,
    latencies: Vec<(String, SimDuration)>,
    submitted_at: SimTime,
    metrics: ClientMetrics,
    tick: SimDuration,
    obs: xability_obs::Obs,
    /// Whether the current request's `request` span is open (resubmissions
    /// extend the same span; only the first submit opens it).
    span_open: bool,
}

/// Error returned by [`Client::try_new`] for an invalid configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfigError(String);

impl std::fmt::Display for ClientConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid client configuration: {}", self.0)
    }
}

impl std::error::Error for ClientConfigError {}

impl Client {
    /// Creates a client that will submit `plan` against `replicas`,
    /// validating the configuration.
    ///
    /// # Errors
    ///
    /// Fails when `replicas` is empty (Fig. 5's failover loop needs at
    /// least one replica to contact).
    pub fn try_new(
        replicas: Vec<ProcessId>,
        plan: Vec<LogicalRequest>,
    ) -> Result<Self, ClientConfigError> {
        if replicas.is_empty() {
            return Err(ClientConfigError("need at least one replica".to_owned()));
        }
        Ok(Client {
            replicas,
            plan,
            current: 0,
            cursor: 0,
            waiting_on: None,
            results: BTreeMap::new(),
            latencies: Vec::new(),
            submitted_at: SimTime::ZERO,
            metrics: ClientMetrics::default(),
            tick: SimDuration::from_millis(15),
            obs: xability_obs::Obs::noop(),
            span_open: false,
        })
    }

    /// Attaches a metrics registry: the client then records one `request`
    /// span per planned request, from first submit to accepted result.
    pub fn attach_obs(&mut self, obs: &xability_obs::Obs) {
        self.obs = obs.clone();
    }

    /// Creates a client that will submit `plan` against `replicas`.
    ///
    /// # Panics
    ///
    /// Panics when `replicas` is empty; use [`Client::try_new`] for a
    /// fallible variant.
    pub fn new(replicas: Vec<ProcessId>, plan: Vec<LogicalRequest>) -> Self {
        match Client::try_new(replicas, plan) {
            Ok(client) => client,
            Err(e) => panic!("{e}"),
        }
    }

    /// Returns `true` once every planned request has a result.
    pub fn is_done(&self) -> bool {
        self.current >= self.plan.len()
    }

    /// The result of a request, if received.
    pub fn result_of(&self, req_id: &str) -> Option<&Value> {
        self.results.get(req_id)
    }

    /// All results received, in request order.
    pub fn results(&self) -> &BTreeMap<String, Value> {
        &self.results
    }

    /// Per-request submit-to-result latencies, in completion order.
    pub fn latencies(&self) -> &[(String, SimDuration)] {
        &self.latencies
    }

    /// Client counters.
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    /// The requests that completed so far (prefix of the plan).
    pub fn completed_requests(&self) -> &[LogicalRequest] {
        &self.plan[..self.current]
    }

    /// The full plan.
    pub fn plan(&self) -> &[LogicalRequest] {
        &self.plan
    }

    /// Fig. 5's `submit`: send to `replicas[i]`. The await is event-driven:
    /// a result arrives in `on_message`, a suspicion in
    /// `on_suspicion`/`on_timer`.
    fn submit(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let Some(req) = self.plan.get(self.current) else {
            self.waiting_on = None;
            return;
        };
        // Skip replicas we already suspect (a suspicion *change* event
        // would never fire for them).
        for _ in 0..self.replicas.len() {
            if ctx.suspects(self.replicas[self.cursor]) {
                self.cursor = (self.cursor + 1) % self.replicas.len();
                self.metrics.failures += 1;
            } else {
                break;
            }
        }
        let target = self.replicas[self.cursor];
        self.metrics.submissions += 1;
        if !self.span_open {
            self.obs
                .span_start("request", &req.id, 0, ctx.now().as_micros());
            self.span_open = true;
        }
        self.submitted_at = ctx.now();
        self.waiting_on = Some(target);
        ctx.send(target, ProtoMsg::ClientRequest { req: req.clone() });
    }

    fn resubmit_to_next(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        self.metrics.failures += 1;
        self.cursor = (self.cursor + 1) % self.replicas.len();
        self.submit(ctx);
    }
}

impl Actor<ProtoMsg> for Client {
    fn on_start(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        self.submit(ctx);
        ctx.set_timer(self.tick);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, _from: ProcessId, msg: ProtoMsg) {
        let ProtoMsg::ClientResult { req_id, result } = msg else {
            return;
        };
        let Some(req) = self.plan.get(self.current) else {
            return; // duplicate result after completion
        };
        if req.id != req_id {
            return; // duplicate result for an earlier request
        }
        let elapsed = ctx.now().since(self.submitted_at);
        self.latencies.push((req_id.clone(), elapsed));
        if self.span_open {
            self.obs
                .span_end("request", &req_id, 0, ctx.now().as_micros());
            self.span_open = false;
        }
        self.results.insert(req_id, result);
        self.current += 1;
        self.waiting_on = None;
        self.submit(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, _timer: TimerId) {
        // The await of Fig. 5: if the contacted replica became suspected
        // while we were waiting, submit returns failure and the driver
        // retries against the next replica.
        if let Some(target) = self.waiting_on {
            if ctx.suspects(target) {
                self.resubmit_to_next(ctx);
            }
        }
        ctx.set_timer(self.tick);
    }

    fn on_suspicion(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        subject: ProcessId,
        suspected: bool,
    ) {
        if suspected && self.waiting_on == Some(subject) {
            self.resubmit_to_next(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xability_core::ActionName;

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn client_needs_replicas() {
        let _ = Client::new(vec![], vec![]);
    }

    #[test]
    fn try_new_reports_the_configuration_error() {
        let err = Client::try_new(vec![], vec![]).unwrap_err();
        assert!(err.to_string().contains("at least one replica"));
        assert!(Client::try_new(vec![ProcessId(0)], vec![]).is_ok());
    }

    #[test]
    fn accessors_before_running() {
        let client = Client::new(
            vec![ProcessId(0)],
            vec![LogicalRequest::new(
                "r1",
                ActionName::idempotent("get"),
                Value::Nil,
                ProcessId(1),
            )],
        );
        assert!(!client.is_done());
        assert_eq!(client.result_of("r1"), None);
        assert!(client.results().is_empty());
        assert!(client.latencies().is_empty());
        assert_eq!(client.metrics().submissions, 0);
        assert_eq!(client.completed_requests().len(), 0);
        assert_eq!(client.plan().len(), 1);
    }

    #[test]
    fn empty_plan_is_immediately_done() {
        let client = Client::new(vec![ProcessId(0)], vec![]);
        assert!(client.is_done());
    }
}
