//! The wire protocol: one message enum shared by clients, replicas and
//! external services, plus the consensus decision values.

use std::fmt;

use xability_consensus::{ConsensusMsg, InstanceId};
use xability_core::{ActionName, Value};
use xability_services::{InvokeOutcome, ServiceRequest};
use xability_sim::ProcessId;

/// A logical client request: the paper's `(a, v)` pair plus routing
/// metadata.
///
/// `id` is the unique request identity (the formal input value `iv` of the
/// theory and the deduplication key at the external service). It must not
/// contain `/` (instance names are `kind/id/round`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalRequest {
    /// Unique request id.
    pub id: String,
    /// The action to execute.
    pub action: ActionName,
    /// Domain payload.
    pub payload: Value,
    /// The external service hosting the action.
    pub service: ProcessId,
}

impl LogicalRequest {
    /// Creates a request; panics if `id` contains `/`.
    pub fn new(
        id: impl Into<String>,
        action: ActionName,
        payload: Value,
        service: ProcessId,
    ) -> Self {
        let id = id.into();
        assert!(!id.contains('/'), "request ids must not contain '/'");
        LogicalRequest {
            id,
            action,
            payload,
            service,
        }
    }

    /// The request id as a [`Value`] (the formal input value).
    pub fn key(&self) -> Value {
        Value::from(self.id.clone())
    }

    /// The service invocation executing this request in `round`.
    pub fn service_request(&self, round: u64) -> ServiceRequest {
        ServiceRequest::execute(self.action.clone(), self.key(), round, self.payload.clone())
    }
}

impl fmt::Display for LogicalRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.action, self.id)
    }
}

/// Values decided by the consensus instances of §5.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// `owner-agreement[round]`: who owns a round of a request.
    Owner {
        /// The owning replica.
        owner: ProcessId,
        /// The request (carried so every replica learns it).
        req: LogicalRequest,
        /// The client to answer.
        client: ProcessId,
    },
    /// `result-agreement[req, round]`: the agreed result of an idempotent
    /// action, or `None` (= the paper's `empty-result`) if a cleaner won.
    ResultAgreed(Option<Value>),
    /// `outcome-agreement[req, round]`: commit/abort of an undoable action
    /// round, with the committed value when not aborted.
    Outcome {
        /// `true` = abort, `false` = commit.
        abort: bool,
        /// The result value (present on commit).
        value: Option<Value>,
    },
}

/// Builds the instance id of `owner-agreement[req, round]`.
pub fn owner_instance(req_id: &str, round: u64) -> InstanceId {
    InstanceId::new(format!("owner/{req_id}/{round}"))
}

/// Builds the instance id of `result-agreement[req, round]`.
///
/// The paper indexes `result-agreement` by request only; we index per round
/// so that a cleaning-mode `empty-result` blocks exactly the suspected
/// round's reply without poisoning later rounds (see DESIGN.md §5 for why
/// the per-request reading starves the client).
pub fn result_instance(req_id: &str, round: u64) -> InstanceId {
    InstanceId::new(format!("result/{req_id}/{round}"))
}

/// Builds the instance id of `outcome-agreement[req, round]`.
pub fn outcome_instance(req_id: &str, round: u64) -> InstanceId {
    InstanceId::new(format!("outcome/{req_id}/{round}"))
}

/// Parses an instance id back into `(kind, request id, round)`.
pub fn parse_instance(id: &InstanceId) -> Option<(&str, &str, u64)> {
    let mut parts = id.name().splitn(3, '/');
    let kind = parts.next()?;
    let req = parts.next()?;
    let round = parts.next()?.parse().ok()?;
    Some((kind, req, round))
}

/// The system-wide message type.
#[derive(Debug, Clone)]
pub enum ProtoMsg {
    /// Client → replica: submit a request (Fig. 5's `[Request, req]`).
    ClientRequest {
        /// The request.
        req: LogicalRequest,
    },
    /// Replica → client: the result (Fig. 5's `[Result, res]`), tagged with
    /// the request id for correlation.
    ClientResult {
        /// Which request this answers.
        req_id: String,
        /// The result value.
        result: Value,
    },
    /// Replica ↔ replica: consensus traffic.
    Consensus(ConsensusMsg<Decision>),
    /// Replica → service: invoke an action (execute / cancel / commit).
    Invoke {
        /// Correlation token chosen by the caller.
        invocation: u64,
        /// The service request.
        sreq: ServiceRequest,
    },
    /// Service → replica: the outcome of an invocation.
    InvokeReply {
        /// Correlation token of the invocation.
        invocation: u64,
        /// Success or failure.
        outcome: InvokeOutcome,
    },
    /// Replica → replica (baselines only): forward a client request for
    /// active-replication style execution.
    Forward {
        /// The request.
        req: LogicalRequest,
        /// The client to answer.
        client: ProcessId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_round_trip() {
        let id = owner_instance("req-1", 3);
        assert_eq!(parse_instance(&id), Some(("owner", "req-1", 3)));
        let id = result_instance("r", 1);
        assert_eq!(parse_instance(&id), Some(("result", "r", 1)));
        let id = outcome_instance("r", 9);
        assert_eq!(parse_instance(&id), Some(("outcome", "r", 9)));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(parse_instance(&InstanceId::new("garbage")), None);
        assert_eq!(parse_instance(&InstanceId::new("owner/x/notanumber")), None);
    }

    #[test]
    #[should_panic(expected = "must not contain")]
    fn request_ids_must_not_contain_slash() {
        let _ = LogicalRequest::new("a/b", ActionName::idempotent("x"), Value::Nil, ProcessId(0));
    }

    #[test]
    fn request_key_and_service_request() {
        let req = LogicalRequest::new(
            "r1",
            ActionName::undoable("transfer"),
            Value::from(5),
            ProcessId(9),
        );
        assert_eq!(req.key(), Value::from("r1"));
        let sreq = req.service_request(4);
        assert_eq!(sreq.round, 4);
        assert_eq!(sreq.key, Value::from("r1"));
        assert_eq!(format!("{req}"), "transferᵘ(r1)");
    }
}
