//! # xability-protocol — the general asynchronous replication algorithm
//!
//! The replication protocol of *X-Ability: A Theory of Replication* (§5):
//! a client stub ([`Client`], Fig. 5) and replica processes ([`XReplica`],
//! Figs. 6–7) that coordinate through consensus objects
//! (`xability-consensus`) to execute actions with external side-effects
//! (`xability-services`) exactly once, despite crashes, unreliable failure
//! detection and non-determinism.
//!
//! The protocol is *asynchronous* in the paper's sense: in suspicion-free
//! runs it behaves like primary-backup (the contacted replica does all the
//! work); under false suspicions it slides toward active replication
//! (several replicas execute rounds concurrently), with consensus
//! arbitrating so that the environment still observes exactly-once
//! behaviour. The [`baselines`] module implements genuine primary-backup
//! and active replication over the same infrastructure so experiments can
//! measure what the x-able protocol buys.
//!
//! See the module docs of [`replica`] for the precise mapping from the
//! paper's pseudo-code, and DESIGN.md for the three documented deviations
//! (per-round result agreement, cleaner delivery, round-per-attempt).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baselines;
pub mod client;
pub mod messages;
pub mod replica;
pub mod service_actor;

pub use baselines::{ActiveReplica, BaselineMetrics, PbReplica};
pub use client::{Client, ClientConfigError, ClientMetrics};
pub use messages::{Decision, LogicalRequest, ProtoMsg};
pub use replica::{ReplicaMetrics, XReplica, XReplicaConfig};
pub use service_actor::ServiceActor;
