//! The multiplexed consensus engine.
//!
//! One [`ConsensusEngine`] lives inside each participant process and manages
//! every consensus *instance* the process takes part in. Each instance runs
//! an independent Chandra–Toueg rotating-coordinator consensus:
//!
//! 1. On entering round `r`, every participant sends its current estimate
//!    (value + timestamp) to all peers; the round's coordinator is
//!    `peers[r mod n]`.
//! 2. The coordinator, upon gathering estimates from a majority, selects the
//!    estimate with the highest timestamp and proposes it.
//! 3. Participants acknowledge the proposal (adopting it with timestamp `r`)
//!    — or, upon suspecting the coordinator or timing out, send a negative
//!    acknowledgement and move to round `r + 1`.
//! 4. A coordinator with a majority of positive acknowledgements decides and
//!    reliably broadcasts the decision; receivers re-broadcast it once.
//!
//! The standard locking argument gives agreement: a value acknowledged by a
//! majority in round `r` has timestamp `r` at a majority, so every later
//! coordinator — which intersects that majority — picks it. Termination
//! holds with a majority of correct processes once the failure detector
//! stops making mistakes (eventually-perfect ◇P suffices for the paper's
//! ◇S requirement). Validity holds because estimates only ever hold
//! proposed values.
//!
//! Estimates are broadcast to *all* peers (not only the coordinator) so that
//! processes which never proposed a value for an instance still join it and
//! contribute to majorities — in the replication protocol of §5, typically
//! only one or two replicas propose to a given instance.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use xability_sim::{ProcessId, SimDuration, SimTime};

/// Names one consensus instance (one logical consensus object of §5.2,
/// e.g. `owner-agreement[4]` or `result-agreement[req]`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(Arc<str>);

impl InstanceId {
    /// Creates an instance id from a name. Equal names denote the same
    /// consensus object across all processes.
    pub fn new(name: impl AsRef<str>) -> Self {
        InstanceId(Arc::from(name.as_ref()))
    }

    /// The instance name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}⟩", self.0)
    }
}

/// Messages exchanged by the consensus engines. The embedding actor wraps
/// these into its own message type and routes incoming ones to
/// [`ConsensusEngine::on_message`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsensusMsg<V> {
    /// A participant's current estimate for a round (phase 1).
    Estimate {
        /// Target instance.
        instance: InstanceId,
        /// Round number.
        round: u64,
        /// The estimate value.
        value: V,
        /// The round in which the estimate was last adopted (0 = initial).
        ts: u64,
    },
    /// The coordinator's proposal for a round (phase 2).
    Propose {
        /// Target instance.
        instance: InstanceId,
        /// Round number.
        round: u64,
        /// The proposed value.
        value: V,
    },
    /// Positive acknowledgement of a proposal (phase 3).
    Ack {
        /// Target instance.
        instance: InstanceId,
        /// Round number.
        round: u64,
    },
    /// Negative acknowledgement: the sender moved past this round.
    Nack {
        /// Target instance.
        instance: InstanceId,
        /// Round number.
        round: u64,
    },
    /// Reliable broadcast of a decision (phase 4).
    Decide {
        /// Target instance.
        instance: InstanceId,
        /// The decided value.
        value: V,
    },
}

impl<V> ConsensusMsg<V> {
    /// The instance this message belongs to.
    pub fn instance(&self) -> &InstanceId {
        match self {
            ConsensusMsg::Estimate { instance, .. }
            | ConsensusMsg::Propose { instance, .. }
            | ConsensusMsg::Ack { instance, .. }
            | ConsensusMsg::Nack { instance, .. }
            | ConsensusMsg::Decide { instance, .. } => instance,
        }
    }
}

/// The network/oracle interface the engine needs from its embedding actor.
///
/// Implementations wrap a [`xability_sim::Context`], translating
/// [`ConsensusMsg`] into the actor's own message type.
pub trait ConsensusNet<V> {
    /// Sends a consensus message to a peer.
    fn send(&mut self, to: ProcessId, msg: ConsensusMsg<V>);
    /// The current time.
    fn now(&self) -> SimTime;
    /// The failure-detector query `suspect(p)`.
    fn suspects(&self, p: ProcessId) -> bool;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the coordinator's proposal (or, as coordinator, for a
    /// majority of estimates).
    Estimating,
    /// Acknowledged the proposal; waiting for the decision.
    Acked,
}

#[derive(Debug)]
struct Instance<V> {
    estimate: Option<(V, u64)>,
    round: u64,
    phase: Phase,
    round_started_at: SimTime,
    /// Coordinator state: estimates gathered for the current round.
    estimates: BTreeMap<ProcessId, (V, u64)>,
    /// Coordinator state: positive acks for the current round.
    acks: BTreeSet<ProcessId>,
    /// Coordinator state: whether this round's proposal went out.
    proposed: bool,
    decided: Option<V>,
    /// Whether this process broadcast the decision already.
    decision_relayed: bool,
    participating: bool,
}

impl<V> Instance<V> {
    fn new(now: SimTime) -> Self {
        Instance {
            estimate: None,
            round: 0,
            phase: Phase::Estimating,
            round_started_at: now,
            estimates: BTreeMap::new(),
            acks: BTreeSet::new(),
            proposed: false,
            decided: None,
            decision_relayed: false,
            participating: false,
        }
    }
}

/// A multiplexed set of consensus objects for one participant process.
///
/// The engine is transport-agnostic: the embedding actor forwards incoming
/// [`ConsensusMsg`]s to [`ConsensusEngine::on_message`], calls
/// [`ConsensusEngine::on_tick`] periodically (a few times per failure
/// detector timeout), and collects newly decided `(instance, value)` pairs
/// from both calls.
#[derive(Debug)]
pub struct ConsensusEngine<V> {
    me: ProcessId,
    peers: Vec<ProcessId>,
    round_timeout: SimDuration,
    instances: BTreeMap<InstanceId, Instance<V>>,
    /// Decisions reached inside nested calls (e.g. a coordinator whose own
    /// implicit ack already forms a majority); drained by the public entry
    /// points so callers observe every decision exactly once.
    undrained: Vec<(InstanceId, V)>,
}

impl<V: Clone + Eq + fmt::Debug> ConsensusEngine<V> {
    /// Creates an engine for participant `me` among `peers` (which must
    /// include `me` and be identical at every participant).
    ///
    /// `round_timeout` bounds how long a participant waits in a round before
    /// nacking an unresponsive coordinator even without a suspicion; it
    /// provides progress when the coordinator is slow rather than crashed.
    ///
    /// # Panics
    ///
    /// Panics if `peers` does not contain `me`.
    pub fn new(me: ProcessId, peers: Vec<ProcessId>, round_timeout: SimDuration) -> Self {
        assert!(peers.contains(&me), "peers must include the local process");
        ConsensusEngine {
            me,
            peers,
            round_timeout,
            instances: BTreeMap::new(),
            undrained: Vec::new(),
        }
    }

    /// The majority threshold.
    fn majority(&self) -> usize {
        self.peers.len() / 2 + 1
    }

    fn coordinator(&self, round: u64) -> ProcessId {
        self.peers[(round as usize) % self.peers.len()]
    }

    /// The paper's `propose()` (§5.2): proposes `value` for `instance`.
    ///
    /// If the decision is already known locally it is returned immediately;
    /// otherwise the proposal enters the protocol and the decision will be
    /// reported by a later [`ConsensusEngine::on_message`] /
    /// [`ConsensusEngine::on_tick`] call.
    pub fn propose(
        &mut self,
        net: &mut dyn ConsensusNet<V>,
        instance: InstanceId,
        value: V,
    ) -> Option<V> {
        let now = net.now();
        let inst = self
            .instances
            .entry(instance.clone())
            .or_insert_with(|| Instance::new(now));
        if let Some(d) = &inst.decided {
            return Some(d.clone());
        }
        if inst.estimate.is_none() {
            inst.estimate = Some((value, 0));
        }
        if !inst.participating {
            inst.participating = true;
            inst.round_started_at = now;
            self.broadcast_estimate(net, &instance);
        }
        // A coordinator alone in a singleton group decides synchronously.
        self.undrained.retain(|(id, _)| id != &instance);
        self.instances[&instance].decided.clone()
    }

    /// The paper's `read()` (§5.2): the locally known decision, if any.
    ///
    /// `None` means "no decision known here" — the instance may already be
    /// decided elsewhere; proposing then returns that decision.
    pub fn read(&self, instance: &InstanceId) -> Option<&V> {
        self.instances.get(instance)?.decided.as_ref()
    }

    /// All instances with locally known decisions, in instance order.
    pub fn decided_instances(&self) -> impl Iterator<Item = (&InstanceId, &V)> {
        self.instances
            .iter()
            .filter_map(|(id, inst)| inst.decided.as_ref().map(|v| (id, v)))
    }

    /// Handles an incoming consensus message, returning newly decided
    /// `(instance, value)` pairs (at most one).
    pub fn on_message(
        &mut self,
        net: &mut dyn ConsensusNet<V>,
        from: ProcessId,
        msg: ConsensusMsg<V>,
    ) -> Vec<(InstanceId, V)> {
        let instance = msg.instance().clone();
        let now = net.now();
        let me = self.me;
        let majority = self.majority();
        {
            let inst = self
                .instances
                .entry(instance.clone())
                .or_insert_with(|| Instance::new(now));
            if let Some(decided) = inst.decided.clone() {
                // Help late peers: re-send the decision to the sender.
                if !matches!(msg, ConsensusMsg::Decide { .. }) {
                    net.send(
                        from,
                        ConsensusMsg::Decide {
                            instance: instance.clone(),
                            value: decided,
                        },
                    );
                }
                return Vec::new();
            }
        }

        match msg {
            ConsensusMsg::Decide { value, .. } => {
                return self.decide(net, &instance, value);
            }
            ConsensusMsg::Estimate {
                round, value, ts, ..
            } => {
                let coord = self.coordinator(round);
                {
                    // Adopt a value if we have none (lets non-proposers join).
                    let inst = self.instances.get_mut(&instance).expect("created above");
                    if inst.estimate.is_none() {
                        inst.estimate = Some((value.clone(), 0));
                    }
                }
                self.join(net, &instance);
                let current = self.instances[&instance].round;
                if round > current {
                    self.advance_to(net, &instance, round);
                }
                let inst = self.instances.get_mut(&instance).expect("created above");
                if round == inst.round && me == coord {
                    inst.estimates.insert(from, (value, ts));
                    self.maybe_propose(net, &instance);
                }
            }
            ConsensusMsg::Propose { round, value, .. } => {
                {
                    let inst = self.instances.get_mut(&instance).expect("created above");
                    if inst.estimate.is_none() {
                        inst.estimate = Some((value.clone(), 0));
                    }
                }
                self.join(net, &instance);
                let current = self.instances[&instance].round;
                if round > current {
                    self.advance_to(net, &instance, round);
                }
                let inst = self.instances.get_mut(&instance).expect("created above");
                if round == inst.round && inst.phase == Phase::Estimating {
                    // Adopt the coordinator's value with timestamp = round.
                    inst.estimate = Some((value, round));
                    inst.phase = Phase::Acked;
                    net.send(from, ConsensusMsg::Ack { instance, round });
                }
            }
            ConsensusMsg::Ack { round, .. } => {
                let coord = self.coordinator(round);
                let inst = self.instances.get_mut(&instance).expect("created above");
                if round == inst.round && me == coord {
                    inst.acks.insert(from);
                    if inst.acks.len() + 1 >= majority {
                        // +1: the coordinator implicitly acks its own proposal.
                        let value = inst
                            .estimate
                            .clone()
                            .map(|(v, _)| v)
                            .expect("coordinator proposed, so it has an estimate");
                        return self.decide(net, &instance, value);
                    }
                }
            }
            ConsensusMsg::Nack { round, .. } => {
                let current = self.instances[&instance].round;
                if round == current {
                    self.advance_to(net, &instance, round + 1);
                }
            }
        }
        std::mem::take(&mut self.undrained)
    }

    /// Periodic driver: applies round timeouts and failure-detector
    /// suspicions, returning newly decided pairs (always empty today, but
    /// kept symmetric with [`ConsensusEngine::on_message`] so embedders can
    /// treat both uniformly).
    pub fn on_tick(&mut self, net: &mut dyn ConsensusNet<V>) -> Vec<(InstanceId, V)> {
        let ids: Vec<InstanceId> = self
            .instances
            .iter()
            .filter(|(_, i)| i.decided.is_none() && i.participating)
            .map(|(id, _)| id.clone())
            .collect();
        for id in ids {
            let inst = self.instances.get(&id).expect("listed");
            let coord = self.coordinator(inst.round);
            let timed_out = net.now().since(inst.round_started_at) > self.round_timeout;
            let suspected = coord != self.me && net.suspects(coord);
            if timed_out || suspected {
                let round = inst.round;
                net.send(
                    coord,
                    ConsensusMsg::Nack {
                        instance: id.clone(),
                        round,
                    },
                );
                self.advance_to(net, &id, round + 1);
            }
        }
        std::mem::take(&mut self.undrained)
    }

    /// Marks the instance as participating and sends the current-round
    /// estimate if not already done.
    fn join(&mut self, net: &mut dyn ConsensusNet<V>, id: &InstanceId) {
        let inst = self.instances.get_mut(id).expect("caller created");
        if inst.participating {
            return;
        }
        inst.participating = true;
        inst.round_started_at = net.now();
        self.broadcast_estimate(net, id);
    }

    fn broadcast_estimate(&mut self, net: &mut dyn ConsensusNet<V>, id: &InstanceId) {
        let me = self.me;
        let (value, ts, round) = {
            let inst = self.instances.get_mut(id).expect("exists");
            let Some((value, ts)) = inst.estimate.clone() else {
                return;
            };
            (value, ts, inst.round)
        };
        // Record our own estimate if we coordinate this round.
        if self.coordinator(round) == me {
            let inst = self.instances.get_mut(id).expect("exists");
            inst.estimates.insert(me, (value.clone(), ts));
        }
        for &p in &self.peers {
            if p != me {
                net.send(
                    p,
                    ConsensusMsg::Estimate {
                        instance: id.clone(),
                        round,
                        value: value.clone(),
                        ts,
                    },
                );
            }
        }
        self.maybe_propose(net, id);
    }

    /// Coordinator: propose once a majority of estimates is gathered.
    fn maybe_propose(&mut self, net: &mut dyn ConsensusNet<V>, id: &InstanceId) {
        let majority = self.majority();
        let me = self.me;
        let round = self.instances[id].round;
        if self.coordinator(round) != me {
            return;
        }
        let inst = self.instances.get_mut(id).expect("exists");
        if inst.proposed || inst.estimates.len() < majority {
            return;
        }
        let (value, _) = inst
            .estimates
            .values()
            .max_by_key(|(_, ts)| *ts)
            .cloned()
            .expect("majority gathered");
        inst.proposed = true;
        inst.estimate = Some((value.clone(), inst.round));
        inst.phase = Phase::Acked;
        let round = inst.round;
        for &p in &self.peers {
            if p != me {
                net.send(
                    p,
                    ConsensusMsg::Propose {
                        instance: id.clone(),
                        round,
                        value: value.clone(),
                    },
                );
            }
        }
        // The coordinator implicitly acks its own proposal; in a singleton
        // group that already is a majority.
        if 1 >= majority {
            let decided = self.decide(net, id, value);
            self.undrained.extend(decided);
        }
    }

    fn advance_to(&mut self, net: &mut dyn ConsensusNet<V>, id: &InstanceId, round: u64) {
        let inst = self.instances.get_mut(id).expect("exists");
        if round <= inst.round || inst.decided.is_some() {
            return;
        }
        inst.round = round;
        inst.phase = Phase::Estimating;
        inst.estimates.clear();
        inst.acks.clear();
        inst.proposed = false;
        inst.round_started_at = net.now();
        if inst.participating {
            self.broadcast_estimate(net, id);
        }
    }

    fn decide(
        &mut self,
        net: &mut dyn ConsensusNet<V>,
        id: &InstanceId,
        value: V,
    ) -> Vec<(InstanceId, V)> {
        let me = self.me;
        let inst = self.instances.get_mut(id).expect("exists");
        if inst.decided.is_some() {
            return Vec::new();
        }
        inst.decided = Some(value.clone());
        if !inst.decision_relayed {
            inst.decision_relayed = true;
            for &p in &self.peers {
                if p != me {
                    net.send(
                        p,
                        ConsensusMsg::Decide {
                            instance: id.clone(),
                            value: value.clone(),
                        },
                    );
                }
            }
        }
        vec![(id.clone(), value)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_id_semantics() {
        let a = InstanceId::new("owner/1");
        let b = InstanceId::new("owner/1");
        let c = InstanceId::new("owner/2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "owner/1");
        assert_eq!(format!("{a}"), "⟨owner/1⟩");
    }

    #[test]
    fn message_instance_accessor() {
        let id = InstanceId::new("x");
        let msgs: Vec<ConsensusMsg<u32>> = vec![
            ConsensusMsg::Estimate {
                instance: id.clone(),
                round: 0,
                value: 1,
                ts: 0,
            },
            ConsensusMsg::Propose {
                instance: id.clone(),
                round: 0,
                value: 1,
            },
            ConsensusMsg::Ack {
                instance: id.clone(),
                round: 0,
            },
            ConsensusMsg::Nack {
                instance: id.clone(),
                round: 0,
            },
            ConsensusMsg::Decide {
                instance: id.clone(),
                value: 1,
            },
        ];
        for m in msgs {
            assert_eq!(m.instance(), &id);
        }
    }

    #[test]
    #[should_panic(expected = "peers must include")]
    fn engine_requires_membership() {
        let _ = ConsensusEngine::<u32>::new(
            ProcessId(9),
            vec![ProcessId(0), ProcessId(1)],
            SimDuration::from_millis(50),
        );
    }
}
