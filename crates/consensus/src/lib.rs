//! # xability-consensus — the consensus objects of §5.2
//!
//! The replication algorithm of *X-Ability: A Theory of Replication* (§5)
//! "simply assumes" consensus objects offering two primitives:
//!
//! * `propose(v)` — proposes `v`, returns the decided value;
//! * `read()` — returns the decided value, or ⊥ if none is known.
//!
//! This crate *builds* that abstraction instead of assuming it: a
//! [`ConsensusEngine`] multiplexes any number of named instances
//! ([`InstanceId`]) over an asynchronous network, running Chandra–Toueg
//! rotating-coordinator consensus per instance. It tolerates a minority of
//! crash failures and relies only on the eventually-perfect failure detector
//! provided by `xability-sim` (a ◇S detector suffices for safety+liveness;
//! ◇P is what the simulator provides and what the paper assumes among
//! replicas).
//!
//! `read()` answers from *locally learned* decisions — ⊥ means "no decision
//! known here", a permitted weakening of §5.2 (the protocol only uses
//! `read` as a hint in the cleaner; `propose` on a decided instance always
//! returns the decided value, which is what safety rests on).
//!
//! ## Embedding
//!
//! The engine is transport-agnostic. An actor embeds it by
//!
//! 1. wrapping [`ConsensusMsg`] in its own message enum,
//! 2. implementing [`ConsensusNet`] over its [`xability_sim::Context`]
//!    (see [`CtxNet`]),
//! 3. forwarding consensus messages to [`ConsensusEngine::on_message`] and
//!    calling [`ConsensusEngine::on_tick`] on a periodic timer,
//! 4. reacting to the `(instance, value)` decisions both calls return.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;

pub use engine::{ConsensusEngine, ConsensusMsg, ConsensusNet, InstanceId};

use xability_sim::{Context, ProcessId, SimTime};

/// A ready-made [`ConsensusNet`] over a simulator [`Context`], for actors
/// whose message type embeds [`ConsensusMsg`].
///
/// `wrap` converts a consensus message into the actor's message type.
#[derive(Debug)]
pub struct CtxNet<'a, 'b, M, V, F>
where
    F: Fn(ConsensusMsg<V>) -> M,
{
    ctx: &'a mut Context<'b, M>,
    wrap: F,
    _marker: std::marker::PhantomData<V>,
}

impl<'a, 'b, M, V, F> CtxNet<'a, 'b, M, V, F>
where
    F: Fn(ConsensusMsg<V>) -> M,
{
    /// Wraps a context.
    pub fn new(ctx: &'a mut Context<'b, M>, wrap: F) -> Self {
        CtxNet {
            ctx,
            wrap,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, V, F> ConsensusNet<V> for CtxNet<'_, '_, M, V, F>
where
    F: Fn(ConsensusMsg<V>) -> M,
{
    fn send(&mut self, to: ProcessId, msg: ConsensusMsg<V>) {
        let wrapped = (self.wrap)(msg);
        self.ctx.send(to, wrapped);
    }

    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn suspects(&self, p: ProcessId) -> bool {
        self.ctx.suspects(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xability_sim::{Actor, LatencyModel, SimConfig, SimDuration, TimerId, World};

    /// Test message type: just the consensus traffic.
    type Msg = ConsensusMsg<u64>;

    /// A participant that proposes a fixed value to a set of instances at
    /// start, and records decisions.
    struct Participant {
        engine: ConsensusEngine<u64>,
        proposals: Vec<(InstanceId, u64)>,
        decided: Vec<(InstanceId, u64)>,
        tick: SimDuration,
    }

    impl Participant {
        fn new(me: ProcessId, peers: Vec<ProcessId>, proposals: Vec<(InstanceId, u64)>) -> Self {
            Participant {
                engine: ConsensusEngine::new(me, peers, SimDuration::from_millis(60)),
                proposals,
                decided: Vec::new(),
                tick: SimDuration::from_millis(10),
            }
        }
    }

    impl Actor<Msg> for Participant {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            let mut net = CtxNet::new(ctx, |m| m);
            for (inst, v) in self.proposals.clone() {
                if let Some(d) = self.engine.propose(&mut net, inst.clone(), v) {
                    self.decided.push((inst, d));
                }
            }
            ctx.set_timer(self.tick);
        }

        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
            let mut net = CtxNet::new(ctx, |m| m);
            let newly = self.engine.on_message(&mut net, from, msg);
            self.decided.extend(newly);
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _timer: TimerId) {
            let mut net = CtxNet::new(ctx, |m| m);
            let newly = self.engine.on_tick(&mut net);
            self.decided.extend(newly);
            ctx.set_timer(self.tick);
        }
    }

    fn build(
        n: usize,
        proposals: impl Fn(usize) -> Vec<(InstanceId, u64)>,
        config: SimConfig,
    ) -> (World<Msg>, Vec<ProcessId>) {
        let mut world = World::new(config);
        let ids: Vec<ProcessId> = (0..n).map(ProcessId).collect();
        for (i, &id) in ids.iter().enumerate() {
            let actor = Participant::new(id, ids.clone(), proposals(i));
            let got = world.add_process(format!("part{i}"), Box::new(actor));
            assert_eq!(got, id);
        }
        (world, ids)
    }

    fn decisions_of(world: &World<Msg>, p: ProcessId, inst: &InstanceId) -> Option<u64> {
        let part: &Participant = world.actor_as(p).unwrap();
        part.engine.read(inst).copied()
    }

    #[test]
    fn all_correct_processes_decide_the_same_value() {
        let inst = InstanceId::new("i1");
        let (mut world, ids) = build(
            3,
            |i| vec![(inst.clone(), 100 + i as u64)],
            SimConfig::with_seed(1),
        );
        world.run_until(SimTime::from_secs(2));
        let d0 = decisions_of(&world, ids[0], &inst).expect("p0 decided");
        for &p in &ids {
            assert_eq!(decisions_of(&world, p, &inst), Some(d0));
        }
        // Validity: the decision is one of the proposals.
        assert!((100..103).contains(&d0));
    }

    #[test]
    fn decides_with_single_proposer() {
        let inst = InstanceId::new("solo");
        let (mut world, ids) = build(
            5,
            |i| {
                if i == 2 {
                    vec![(inst.clone(), 777)]
                } else {
                    vec![]
                }
            },
            SimConfig::with_seed(2),
        );
        world.run_until(SimTime::from_secs(2));
        for &p in &ids {
            assert_eq!(
                decisions_of(&world, p, &inst),
                Some(777),
                "{p} missing decision"
            );
        }
    }

    #[test]
    fn survives_coordinator_crash() {
        let inst = InstanceId::new("crash");
        // Round 0's coordinator is p0; crash it immediately so another
        // coordinator must finish the instance.
        let (mut world, ids) = build(
            3,
            |i| vec![(inst.clone(), 10 + i as u64)],
            SimConfig::with_seed(3),
        );
        world.schedule_crash(ids[0], SimTime::from_millis(1));
        world.run_until(SimTime::from_secs(3));
        let d1 = decisions_of(&world, ids[1], &inst).expect("p1 decided");
        let d2 = decisions_of(&world, ids[2], &inst).expect("p2 decided");
        assert_eq!(d1, d2);
    }

    #[test]
    fn agreement_under_partial_synchrony() {
        let inst = InstanceId::new("ps");
        let mut config = SimConfig::with_seed(4);
        config.latency = LatencyModel::partially_synchronous(0.3, SimTime::from_millis(500));
        let (mut world, ids) = build(5, |i| vec![(inst.clone(), i as u64)], config);
        world.run_until(SimTime::from_secs(5));
        let d: Vec<Option<u64>> = ids
            .iter()
            .map(|&p| decisions_of(&world, p, &inst))
            .collect();
        let first = d[0].expect("decided despite false suspicions");
        for v in &d {
            assert_eq!(*v, Some(first));
        }
    }

    #[test]
    fn many_concurrent_instances() {
        let instances: Vec<InstanceId> =
            (0..20).map(|k| InstanceId::new(format!("m{k}"))).collect();
        let insts = instances.clone();
        let (mut world, ids) = build(
            3,
            move |i| {
                insts
                    .iter()
                    .map(|inst| (inst.clone(), (i * 1000) as u64))
                    .collect()
            },
            SimConfig::with_seed(5),
        );
        world.run_until(SimTime::from_secs(5));
        for inst in &instances {
            let d0 = decisions_of(&world, ids[0], inst).expect("decided");
            for &p in &ids {
                assert_eq!(decisions_of(&world, p, inst), Some(d0));
            }
        }
    }

    #[test]
    fn propose_after_decision_returns_decided_value() {
        let inst = InstanceId::new("late");
        let (mut world, ids) = build(
            3,
            |i| {
                if i == 0 {
                    vec![(inst.clone(), 42)]
                } else {
                    vec![]
                }
            },
            SimConfig::with_seed(6),
        );
        world.run_until(SimTime::from_secs(2));
        assert_eq!(decisions_of(&world, ids[1], &inst), Some(42));
        // A late proposal must observe the existing decision, not override it.
        let part: &mut Participant = world.actor_as_mut(ids[1]).unwrap();
        // Direct engine access: a decided instance answers immediately.
        struct NullNet;
        impl ConsensusNet<u64> for NullNet {
            fn send(&mut self, _: ProcessId, _: ConsensusMsg<u64>) {
                panic!("decided instance must not send");
            }
            fn now(&self) -> SimTime {
                SimTime::ZERO
            }
            fn suspects(&self, _: ProcessId) -> bool {
                false
            }
        }
        let got = part.engine.propose(&mut NullNet, inst.clone(), 9999);
        assert_eq!(got, Some(42));
    }

    #[test]
    fn read_returns_none_before_any_decision() {
        let (world, ids) = build(3, |_| vec![], SimConfig::with_seed(7));
        assert_eq!(
            decisions_of(&world, ids[0], &InstanceId::new("never")),
            None
        );
    }

    #[test]
    fn decided_instances_are_enumerable() {
        let inst = InstanceId::new("enum");
        let (mut world, ids) = build(3, |_| vec![(inst.clone(), 5)], SimConfig::with_seed(8));
        world.run_until(SimTime::from_secs(2));
        let part: &Participant = world.actor_as(ids[0]).unwrap();
        let all: Vec<_> = part.engine.decided_instances().collect();
        assert_eq!(all, vec![(&inst, &5)]);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = |seed| {
            let inst = InstanceId::new("det");
            let (mut world, ids) = build(
                4,
                |i| vec![(inst.clone(), i as u64 * 7)],
                SimConfig::with_seed(seed),
            );
            world.run_until(SimTime::from_secs(2));
            decisions_of(&world, ids[3], &inst)
        };
        assert_eq!(run(9), run(9));
    }
}
