//! Consensus safety under adversity: agreement and validity must hold for
//! every seed, crash pattern and asynchrony level (termination requires a
//! correct majority and eventual accuracy, which the configs below grant).

use xability_consensus::{ConsensusEngine, ConsensusMsg, CtxNet, InstanceId};
use xability_sim::{
    Actor, Context, LatencyModel, ProcessId, SimConfig, SimDuration, SimTime, TimerId, World,
};

type Msg = ConsensusMsg<u64>;

struct Participant {
    engine: ConsensusEngine<u64>,
    proposals: Vec<(InstanceId, u64)>,
}

impl Participant {
    fn new(me: ProcessId, peers: Vec<ProcessId>, proposals: Vec<(InstanceId, u64)>) -> Self {
        Participant {
            engine: ConsensusEngine::new(me, peers, SimDuration::from_millis(60)),
            proposals,
        }
    }
}

impl Actor<Msg> for Participant {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        let mut net = CtxNet::new(ctx, |m| m);
        for (inst, v) in self.proposals.clone() {
            let _ = self.engine.propose(&mut net, inst, v);
        }
        ctx.set_timer(SimDuration::from_millis(10));
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcessId, msg: Msg) {
        let mut net = CtxNet::new(ctx, |m| m);
        let _ = self.engine.on_message(&mut net, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _timer: TimerId) {
        let mut net = CtxNet::new(ctx, |m| m);
        let _ = self.engine.on_tick(&mut net);
        ctx.set_timer(SimDuration::from_millis(10));
    }
}

/// Runs `n` participants proposing distinct values to `instances` consensus
/// instances, with up to a minority of crashes, and checks agreement +
/// validity + (for the correct majority) termination.
fn check(seed: u64, n: usize, instances: usize, crash_first: bool, spike: f64) {
    let mut config = SimConfig::with_seed(seed);
    config.latency = LatencyModel::partially_synchronous(spike, SimTime::from_millis(400));
    let mut world: World<Msg> = World::new(config);
    let ids: Vec<ProcessId> = (0..n).map(ProcessId).collect();
    let insts: Vec<InstanceId> = (0..instances)
        .map(|k| InstanceId::new(format!("i{k}")))
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let proposals: Vec<(InstanceId, u64)> = insts
            .iter()
            .map(|inst| (inst.clone(), (i * 100 + 1) as u64))
            .collect();
        world.add_process(
            format!("p{i}"),
            Box::new(Participant::new(id, ids.clone(), proposals)),
        );
    }
    if crash_first {
        world.schedule_crash(ids[0], SimTime::from_millis(3));
    }
    world.run_until(SimTime::from_secs(6));

    for inst in &insts {
        let mut decided: Vec<u64> = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            if crash_first && i == 0 {
                continue;
            }
            let p = world.actor_as::<Participant>(id).unwrap();
            let d = p.engine.read(inst).copied();
            let v = d.unwrap_or_else(|| {
                panic!("seed {seed}, {inst}: correct process p{i} never decided")
            });
            decided.push(v);
        }
        // Agreement.
        assert!(
            decided.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}, {inst}: disagreement {decided:?}"
        );
        // Validity: the decision is one of the proposals.
        let v = decided[0];
        assert!(
            v % 100 == 1 && (v / 100) < n as u64,
            "seed {seed}, {inst}: decided non-proposed value {v}"
        );
    }
}

#[test]
fn agreement_across_seeds_synchronous() {
    for seed in 0..8 {
        check(seed, 3, 4, false, 0.0);
    }
}

#[test]
fn agreement_with_crashed_coordinator() {
    for seed in 0..8 {
        check(seed, 5, 3, true, 0.0);
    }
}

#[test]
fn agreement_under_partial_synchrony() {
    for seed in 0..6 {
        check(seed, 3, 3, false, 0.3);
    }
}

#[test]
fn agreement_with_crash_and_asynchrony() {
    for seed in 0..6 {
        check(seed, 5, 2, true, 0.25);
    }
}
